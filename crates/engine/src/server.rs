//! HTTP/1.1 JSON API over `std::net::TcpListener` — no async runtime.
//!
//! Routes:
//!
//! | route               | body                                           |
//! |---------------------|------------------------------------------------|
//! | `POST /rank`        | `{"algorithm","scores",["groups"],…params}`    |
//! | `POST /aggregate`   | `{"method","votes",["groups"],…params}`        |
//! | `POST /pipeline`    | `{"votes","groups",["method","post"],…params}` |
//! | `POST /jobs`        | `{"chunks":[{["route"],…chunk body},…]}`       |
//! | `GET /jobs/{id}`    | — (status + per-chunk results when finished)   |
//! | `DELETE /jobs/{id}` | — (cooperative cancellation)                   |
//! | `GET /healthz`      | — (liveness; 200 even while draining)          |
//! | `GET /readyz`       | — (readiness; 503 once draining)               |
//! | `GET /stats`        | — (JSON counters)                              |
//! | `GET /metrics`      | — (Prometheus text exposition format)          |
//! | `GET /debug/traces` | — (flight recorder; `?route=`, `?algorithm=`)  |
//!
//! Every parsed request is assigned a trace ID (echoed in the
//! `x-trace-id` response header and the access log's `trace` field)
//! and its span breakdown — parse, cache lookup, queue wait, run,
//! serialize, write — is recorded into the engine's
//! [`FlightRecorder`](crate::trace::FlightRecorder), which
//! `GET /debug/traces` serves as JSON.
//!
//! Shared params: `theta`, `samples`, `tolerance`, `noise_sd`, `k`,
//! `seed`, `protected`, `proportion`, `alpha` — same names and
//! defaults as the `fairrank` CLI flags.
//!
//! Error mapping: malformed request → `400`, unknown algorithm or job
//! id → `404`, algorithm failure → `422`, full job queue or job store
//! → `503`, full pending-connection queue → `503` with `Retry-After`
//! before the socket is dropped. `POST /jobs` answers `202 Accepted`
//! with the job id to poll.
//!
//! # Concurrency model: a keep-alive I/O reactor
//!
//! The accept loop pushes accepted sockets onto a bounded channel
//! drained by a fixed pool of I/O worker threads
//! ([`ServerConfig::io_threads`], default one per CPU). Each worker
//! owns a connection for its whole lifetime and serves **sequential
//! HTTP/1.1 keep-alive requests** on it — honoring `Connection: close`,
//! an idle read timeout, and a max-requests-per-connection cap — so a
//! client issuing many small requests pays for one TCP handshake and
//! zero thread spawns. Jobs still funnel into the engine's bounded
//! worker pool, which is where admission control happens.
//!
//! Each I/O worker owns a [`ConnScratch`]: reusable input, body,
//! JSON-arena, and response buffers. After warm-up, a request performs
//! **zero heap allocations in the HTTP layer** (head parse, JSON parse
//! via [`JsonArena`], response serialization via
//! [`RankResult::write_json`](crate::job::RankResult::write_json) and
//! [`write_response_into`]); only the
//! job layer (the owned `RankJob` handed to the engine) still
//! allocates. `crates/engine/tests/alloc_audit.rs` pins this with a
//! counting global allocator.
//!
//! The pre-reactor thread-per-connection model is retained behind
//! [`ServerConfig::thread_per_conn`] as the benchmark baseline
//! (`crates/bench/benches/http_throughput.rs` reports the before/after
//! requests-per-second ratio).

use crate::job::{JobInput, JobParams, RankJob};
use crate::json::{Json, JsonArena, ValueRef};
use crate::registry::AlgorithmKind;
use crate::stats::{EngineStats, JobOrigin, RouteClass};
use crate::trace::{SpanRecorder, Trace, TraceHandle, TraceStr};
use crate::{duration_us, Engine, EngineError};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum accepted request-body size (16 MiB).
const MAX_BODY: usize = 16 << 20;
/// Maximum accepted header-block size (16 KiB).
const MAX_HEADER: usize = 16 << 10;
/// Maximum accepted header count per request — with the byte cap this
/// bounds both dimensions a slow-header client could grow.
const MAX_HEADER_LINES: usize = 128;
/// Socket-write timeout (a stalled reader must not pin a worker).
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);
/// Read timeout once a request has started arriving — slow senders get
/// this much per read, independent of the (typically much shorter)
/// keep-alive idle timeout that governs waiting *between* requests.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Scratch buffers above this size are shrunk after the request so one
/// huge body does not pin megabytes per worker forever.
const SCRATCH_TRIM: usize = 1 << 20;

/// Serving-layer knobs (engine sizing lives in
/// [`EngineConfig`](crate::EngineConfig)).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// I/O worker threads owning connections (0 = one per CPU).
    pub io_threads: usize,
    /// Keep-alive cap: a connection is closed after serving this many
    /// requests (minimum 1).
    pub max_requests_per_conn: usize,
    /// Idle read timeout: a keep-alive connection with no next request
    /// within this window is closed.
    pub idle_timeout: Duration,
    /// Bounded accept → worker queue; connections beyond it are shed
    /// with `503` + `Retry-After`.
    pub pending_connections: usize,
    /// Legacy pre-reactor model: one OS thread and one request per
    /// connection. Kept as the measurable baseline for the
    /// `http_throughput` bench.
    pub thread_per_conn: bool,
    /// Optional structured access log: one JSON line per request
    /// (connection id, request sequence, method, path, route, status,
    /// body bytes, service µs). `None` disables logging entirely.
    pub access_log: Option<AccessLog>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            io_threads: 0,
            max_requests_per_conn: 1024,
            idle_timeout: Duration::from_secs(5),
            pending_connections: 1024,
            thread_per_conn: false,
            access_log: None,
        }
    }
}

/// Shared line-oriented sink for the structured access log. Cloning is
/// cheap (the writer is behind one mutex shared by every I/O worker);
/// each request appends exactly one `\n`-terminated JSON line.
#[derive(Clone)]
pub struct AccessLog {
    sink: Arc<Mutex<LogSink>>,
}

/// The writer behind an [`AccessLog`]. Files are kept as files (not
/// type-erased) so [`AccessLog::sync`] can `fsync` them on drain.
enum LogSink {
    File(std::fs::File),
    Writer(Box<dyn Write + Send>),
}

impl LogSink {
    fn writer(&mut self) -> &mut dyn Write {
        match self {
            LogSink::File(file) => file,
            LogSink::Writer(writer) => writer,
        }
    }
}

impl AccessLog {
    /// Log to any writer (tests pass an in-memory buffer).
    pub fn to_writer(writer: Box<dyn Write + Send>) -> AccessLog {
        AccessLog {
            sink: Arc::new(Mutex::new(LogSink::Writer(writer))),
        }
    }

    /// Append to a log file, creating it if needed.
    pub fn create(path: &str) -> std::io::Result<AccessLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(AccessLog {
            sink: Arc::new(Mutex::new(LogSink::File(file))),
        })
    }

    /// Log to standard error.
    pub fn stderr() -> AccessLog {
        AccessLog::to_writer(Box::new(std::io::stderr()))
    }

    /// Write one pre-formatted line (must include its `\n`). Errors
    /// are swallowed: a full disk must not take down serving.
    fn write_line(&self, line: &str) {
        if let Ok(mut sink) = self.sink.lock() {
            let writer = sink.writer();
            let _ = writer.write_all(line.as_bytes());
            let _ = writer.flush();
        }
    }

    /// Flush the sink and, for file sinks, `fsync` it to disk. The
    /// drain path calls this so the final log lines of a terminating
    /// process survive the exit (a buffered line lost to SIGTERM is a
    /// request that never happened as far as the operator can tell).
    pub fn sync(&self) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.writer().flush();
            if let LogSink::File(file) = &*sink {
                let _ = file.sync_all();
            }
        }
    }
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AccessLog(..)")
    }
}

/// Monotonic connection ids for the access log.
static CONN_SEQ: AtomicU64 = AtomicU64::new(1);

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    /// Resolved at bind time so [`Server::local_addr`] is infallible.
    addr: SocketAddr,
    engine: Arc<Engine>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    control: DrainControl,
    thread: JoinHandle<()>,
}

/// Starts a graceful drain from any thread — the CLI's SIGTERM watcher
/// and the drain tests hold one of these.
///
/// `begin_drain` flips the engine into draining (readiness 503, new
/// batch jobs rejected, queued batches cancelled) and tells the accept
/// loop to stop feeding workers: in-flight keep-alive requests finish
/// and then close with `Connection: close`, new connections are shed
/// with `503` until the workers have wound down, and running batch
/// jobs keep executing (wait on
/// [`Engine::wait_batches_idle`](crate::Engine::wait_batches_idle)
/// after the HTTP side returns).
#[derive(Clone)]
pub struct DrainControl {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    engine: Arc<Engine>,
}

impl DrainControl {
    /// Begin the graceful drain (idempotent).
    pub fn begin_drain(&self) {
        self.engine.begin_drain();
        if !self.stop.swap(true, Ordering::SeqCst) {
            // kick the blocking accept() so it observes the flag
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// the default [`ServerConfig`].
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        Server::bind_with(addr, engine, ServerConfig::default())
    }

    /// Bind with explicit serving-layer knobs.
    pub fn bind_with(
        addr: &str,
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            engine,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can start a graceful drain while the server runs
    /// (grab it before [`Server::run`] consumes the server).
    pub fn drain_control(&self) -> DrainControl {
        DrainControl {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
            engine: Arc::clone(&self.engine),
        }
    }

    /// Begin a graceful drain (see [`DrainControl::begin_drain`]).
    pub fn begin_drain(&self) {
        self.drain_control().begin_drain();
    }

    /// Serve on the current thread; returns once a drain completes
    /// (all I/O workers wound down — batch runners may still be
    /// finishing, see [`Engine::wait_batches_idle`](crate::Engine::wait_batches_idle)).
    pub fn run(self) {
        let stop = Arc::clone(&self.stop);
        self.serve(&stop);
    }

    /// Serve on a background thread; the handle shuts it down. Errors
    /// when the accept thread cannot be spawned (thread exhaustion).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let control = self.drain_control();
        let stop = Arc::clone(&self.stop);
        let thread = std::thread::Builder::new()
            .name("fairrank-accept".to_string())
            .spawn(move || self.serve(&stop))?;
        Ok(ServerHandle { control, thread })
    }

    fn serve(self, stop: &Arc<AtomicBool>) {
        if self.config.thread_per_conn {
            return self.serve_thread_per_conn(stop);
        }
        let io_threads = if self.config.io_threads == 0 {
            crate::tables::available_parallelism()
        } else {
            self.config.io_threads
        };
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.config.pending_connections.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..io_threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&self.engine);
                let config = self.config.clone();
                let stop = Arc::clone(stop);
                std::thread::Builder::new()
                    .name(format!("fairrank-io-{i}"))
                    .spawn(move || io_worker(&rx, &engine, &config, &stop))
            })
            .filter_map(Result::ok)
            .collect();
        // thread exhaustion left us with zero I/O workers: serve
        // connections serially on the accept thread rather than
        // queueing them into a channel nobody drains
        let mut inline_scratch = ConnScratch::default();
        for connection in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = connection else {
                // accept() fails in a tight loop under fd exhaustion —
                // back off instead of spinning at 100% CPU while the
                // worker threads drain
                std::thread::sleep(Duration::from_millis(20));
                continue;
            };
            EngineStats::bump(&self.engine.stats().connections);
            if workers.is_empty() {
                let _ = handle_connection(
                    stream,
                    &self.engine,
                    &mut inline_scratch,
                    &self.config,
                    stop,
                );
                continue;
            }
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(stream)) => {
                    // every worker is busy and the backlog is full:
                    // tell the client to come back instead of silently
                    // hanging up on it
                    shed_connection(stream, &self.engine, OVERLOADED_BODY, Some(1));
                }
                Err(mpsc::TrySendError::Disconnected(_)) => break,
            }
        }
        // disconnect the channel so idle workers observe shutdown;
        // connections already queued are still served (their first
        // response says `Connection: close`)
        drop(tx);
        // drain tail: keep answering brand-new connections with an
        // explicit 503 (instead of a hung or reset socket) until every
        // worker has finished its in-flight connections
        let _ = self.listener.set_nonblocking(true);
        while workers.iter().any(|worker| !worker.is_finished()) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    EngineStats::bump(&self.engine.stats().connections);
                    shed_connection(stream, &self.engine, DRAINING_BODY, None);
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        // every request that will ever be logged has been logged: make
        // the tail durable before the process exits
        if let Some(log) = &self.config.access_log {
            log.sync();
        }
    }

    /// The legacy model: spawn a thread per connection, serve exactly
    /// one request, always close.
    fn serve_thread_per_conn(self, stop: &Arc<AtomicBool>) {
        let mut config = self.config.clone();
        config.max_requests_per_conn = 1;
        for connection in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = connection else {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            };
            EngineStats::bump(&self.engine.stats().connections);
            // hand the worker thread a dup of the socket so that on
            // spawn failure we still own a handle to answer 503 on
            let spawned = stream.try_clone().and_then(|worker_stream| {
                let engine = Arc::clone(&self.engine);
                let config = config.clone();
                let stop = Arc::clone(stop);
                std::thread::Builder::new()
                    .name("fairrank-conn".to_string())
                    .spawn(move || {
                        let mut scratch = ConnScratch::default();
                        let _ =
                            handle_connection(worker_stream, &engine, &mut scratch, &config, &stop);
                    })
            });
            if spawned.is_err() {
                // resource exhaustion: shed load loudly
                shed_connection(stream, &self.engine, OVERLOADED_BODY, Some(1));
            }
        }
        if let Some(log) = &self.config.access_log {
            log.sync();
        }
    }
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.control.addr
    }

    /// Begin a graceful drain without waiting for it to finish (see
    /// [`DrainControl::begin_drain`]); `shutdown` joins afterwards.
    pub fn begin_drain(&self) {
        self.control.begin_drain();
    }

    /// A cloneable handle that can start the drain from another thread.
    pub fn drain_control(&self) -> DrainControl {
        self.control.clone()
    }

    /// Gracefully drain and join the accept thread (which in turn
    /// joins the I/O workers once their in-flight connections finish).
    pub fn shutdown(self) {
        self.control.begin_drain();
        let _ = self.thread.join();
        // let running batch jobs finish before tearing the engine down
        self.control.engine.wait_batches_idle();
    }
}

fn io_worker(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    engine: &Arc<Engine>,
    config: &ServerConfig,
    stop: &AtomicBool,
) {
    let mut scratch = ConnScratch::default();
    loop {
        // holding the lock while blocked in recv() is the standard
        // shared-receiver pattern: exactly one idle worker waits on the
        // channel, the rest queue on the mutex
        let stream = {
            let receiver = crate::lock_recover(rx);
            receiver.recv()
        };
        match stream {
            Ok(stream) => {
                let _ = handle_connection(stream, engine, &mut scratch, config, stop);
            }
            // accept loop dropped the sender: shutdown
            Err(_) => return,
        }
    }
}

/// Per-I/O-worker reusable buffers. A warm request (buffers at
/// capacity from earlier requests) performs zero heap allocations in
/// the HTTP layer.
#[derive(Default)]
struct ConnScratch {
    /// Raw bytes read from the socket and not yet consumed (with
    /// keep-alive pipelining, bytes of the next request may already be
    /// here).
    buf: Vec<u8>,
    /// The current request's body.
    body: Vec<u8>,
    /// The current request's method and path (copied out of `buf` so
    /// the buffer can be reused while routing).
    method: String,
    path: String,
    /// The connection must close after the current request (explicit
    /// `Connection: close`, or an HTTP/1.0 client that did not opt into
    /// keep-alive).
    close_requested: bool,
    /// The read timeout was switched to [`REQUEST_READ_TIMEOUT`]
    /// mid-request and must be reset to the idle timeout before
    /// waiting for the next request.
    long_timeout_active: bool,
    /// JSON parse arena for request bodies.
    arena: JsonArena,
    /// Response body under construction.
    body_out: String,
    /// Fully framed response bytes (headers + body), written in one
    /// syscall.
    out: Vec<u8>,
    /// Access-log line under construction (reused per request).
    log_line: String,
    /// Per-request trace scratch (the span recorder `Arc` is pooled
    /// here so a warm traced request allocates nothing).
    trace: TraceScratch,
}

/// The pieces of a request's trace that the routing layer fills in:
/// HTTP-thread spans plus the engine-side [`SpanRecorder`] handed into
/// [`Engine::submit_traced`]. Reset at the start of every request.
#[derive(Default)]
struct TraceScratch {
    /// Engine-side span cells (cache lookup, queue wait, run),
    /// shared with the worker executing the job.
    spans: Arc<SpanRecorder>,
    /// Algorithm name for submit routes; empty otherwise.
    algorithm: TraceStr,
    /// Body JSON → job parse time.
    parse_us: u64,
    /// Result-JSON serialization time.
    serialize_us: u64,
}

impl TraceScratch {
    fn reset(&mut self) {
        self.spans.reset();
        self.algorithm = TraceStr::default();
        self.parse_us = 0;
        self.serialize_us = 0;
    }
}

impl ConnScratch {
    /// Shrink oversized buffers so one huge request does not pin its
    /// high-water mark per worker forever.
    fn trim(&mut self) {
        if self.buf.capacity() > SCRATCH_TRIM {
            self.buf.shrink_to(SCRATCH_TRIM);
        }
        if self.body.capacity() > SCRATCH_TRIM {
            self.body.shrink_to(SCRATCH_TRIM);
        }
        if self.body_out.capacity() > SCRATCH_TRIM {
            self.body_out.shrink_to(SCRATCH_TRIM);
        }
        if self.out.capacity() > SCRATCH_TRIM {
            self.out.shrink_to(SCRATCH_TRIM);
        }
        self.arena.shrink_to(SCRATCH_TRIM);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    scratch: &mut ConnScratch,
    config: &ServerConfig,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(config.idle_timeout))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    // sequential request/response on one connection: coalescing delays
    // hurt and there is nothing to batch
    let _ = stream.set_nodelay(true);
    scratch.buf.clear();
    scratch.long_timeout_active = false;
    let stats = engine.stats();
    let conn_id = CONN_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut served = 0usize;
    loop {
        if scratch.long_timeout_active {
            // the previous request trickled in slowly; restore the
            // (shorter) keep-alive idle timeout for the wait ahead
            stream.set_read_timeout(Some(config.idle_timeout))?;
            scratch.long_timeout_active = false;
        }
        match read_request(&mut stream, scratch) {
            // clean end of a keep-alive connection (EOF or idle
            // timeout at a request boundary)
            Ok(ReadOutcome::CleanEof) | Err(ReadError::Closed) => return Ok(()),
            Err(ReadError::Malformed(message)) => {
                // framing is no longer trustworthy: answer and close
                EngineStats::bump(&stats.http_requests);
                EngineStats::bump(&stats.http_errors);
                scratch.body_out.clear();
                write_error(&mut scratch.body_out, &message);
                write_response_into(&mut scratch.out, 400, &scratch.body_out, false, None);
                let _ = stream.write_all(&scratch.out);
                if let Some(log) = &config.access_log {
                    // read_request failed before (re)filling method/
                    // path; clear them so the log line cannot carry a
                    // previous request's route
                    scratch.method.clear();
                    scratch.path.clear();
                    write_access_line(
                        scratch,
                        &AccessRecord {
                            conn: conn_id,
                            seq: served + 1,
                            route: RouteClass::Other,
                            status: 400,
                            micros: 0,
                            trace: None,
                        },
                        log,
                    );
                }
                graceful_close(&mut stream, Duration::from_millis(250), 64);
                return Ok(());
            }
            Ok(ReadOutcome::Request) => {}
        }
        let started = Instant::now();
        EngineStats::bump(&stats.http_requests);
        served += 1;
        let trace_id = engine.flight_recorder().next_id();
        scratch.trace.reset();
        let (status, route) = route_request(engine, scratch, trace_id);
        // the stop check comes AFTER routing: a drain that began while
        // this request executed must close the connection right after
        // answering it, not one request later
        let keep_alive = !scratch.close_requested
            && served < config.max_requests_per_conn.max(1)
            && !stop.load(Ordering::Relaxed);
        if status >= 400 {
            EngineStats::bump(&stats.http_errors);
        }
        let content_type = if route == RouteClass::Metrics && status == 200 {
            METRICS_CONTENT_TYPE
        } else {
            JSON_CONTENT_TYPE
        };
        write_response_traced_into(
            &mut scratch.out,
            status,
            &scratch.body_out,
            keep_alive,
            None,
            content_type,
            Some(trace_id),
        );
        let write_started = Instant::now();
        stream.write_all(&scratch.out)?;
        let write_us = duration_us(write_started.elapsed());
        let elapsed = started.elapsed();
        stats.latency.record(elapsed);
        stats.route_latency(route).record(elapsed);
        let spans = &scratch.trace.spans;
        engine.flight_recorder().record(&Trace {
            id: trace_id,
            conn: conn_id,
            seq: served as u64,
            status,
            cache_hit: spans.cache_hit.load(Ordering::Relaxed),
            route: route.as_str(),
            algorithm: scratch.trace.algorithm,
            parse_us: scratch.trace.parse_us,
            cache_us: spans.cache_us.load(Ordering::Relaxed),
            queue_us: spans.queue_us.load(Ordering::Relaxed),
            run_us: spans.run_us.load(Ordering::Relaxed),
            serialize_us: scratch.trace.serialize_us,
            write_us,
            total_us: duration_us(elapsed),
            end_us: engine.flight_recorder().now_us(),
            ..Trace::default()
        });
        if let Some(log) = &config.access_log {
            let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
            write_access_line(
                scratch,
                &AccessRecord {
                    conn: conn_id,
                    seq: served,
                    route,
                    status,
                    micros,
                    trace: Some(trace_id),
                },
                log,
            );
        }
        scratch.trim();
        if !keep_alive {
            return Ok(());
        }
    }
}

/// The scalar fields of one access-log line (method, path and body
/// size come from the scratch).
struct AccessRecord {
    conn: u64,
    seq: usize,
    route: RouteClass,
    status: u16,
    micros: u64,
    /// Trace ID joining the line to `GET /debug/traces`; `None` for
    /// requests rejected before a trace was assigned (malformed head).
    trace: Option<u64>,
}

/// Format and emit one structured access-log line:
/// `{"conn":…,"seq":…,"method":…,"path":…,"route":…,"status":…,"bytes":…,"us":…,"trace":…}`.
fn write_access_line(scratch: &mut ConnScratch, record: &AccessRecord, log: &AccessLog) {
    let line = &mut scratch.log_line;
    line.clear();
    let _ = write!(
        line,
        "{{\"conn\":{},\"seq\":{},\"method\":",
        record.conn, record.seq
    );
    crate::json::write_string(&scratch.method, line);
    line.push_str(",\"path\":");
    crate::json::write_string(&scratch.path, line);
    let _ = write!(
        line,
        ",\"route\":\"{}\",\"status\":{},\"bytes\":{},\"us\":{}",
        record.route.as_str(),
        record.status,
        scratch.body_out.len(),
        record.micros,
    );
    if let Some(trace) = record.trace {
        let _ = write!(line, ",\"trace\":{trace}");
    }
    line.push('}');
    line.push('\n');
    log.write_line(line);
}

/// Half-close the write side, then briefly drain remaining input, so
/// the error response reaches a client that still has unread request
/// bytes in flight (closing with data pending in the receive queue
/// turns into an RST that destroys the response). `read_timeout` and
/// `max_reads` bound how long a dribbling client can hold the caller.
fn graceful_close(stream: &mut TcpStream, read_timeout: Duration, max_reads: usize) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut sink = [0u8; 4096];
    for _ in 0..max_reads {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Overload-shedding response body (`Retry-After` applies).
const OVERLOADED_BODY: &str = "{\"error\":\"server overloaded, retry later\"}";
/// Drain-shedding response body (no retry hint — this instance is
/// going away; clients should fail over).
const DRAINING_BODY: &str = "{\"error\":\"server draining\"}";

/// Best-effort `503` for a connection the reactor will not serve
/// (overload backlog full, or draining), counted in
/// `rejected_connections`.
fn shed_connection(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    body: &str,
    retry_after_secs: Option<u32>,
) {
    EngineStats::bump(&engine.stats().rejected_connections);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut out = Vec::with_capacity(256);
    write_response_into(&mut out, 503, body, false, retry_after_secs);
    let _ = stream.write_all(&out);
    // the client has usually already sent its request; closing with
    // those bytes unread would RST away the 503 we just wrote — but
    // this runs on the accept loop, so the drain budget is tight
    graceful_close(&mut stream, Duration::from_millis(100), 4);
}

enum ReadOutcome {
    /// A complete request was parsed into the scratch.
    Request,
    /// The connection ended cleanly at a request boundary.
    CleanEof,
}

enum ReadError {
    /// The connection died mid-stream (reset, timeout inside a
    /// request): close without a response.
    Closed,
    /// The request violates the protocol or a size cap: answer `400`
    /// and close.
    Malformed(String),
}

/// Read one request into the scratch: head into `method`/`path`/
/// `close_requested`, body into `body`. Bytes past the request (the
/// next pipelined request) stay buffered in `buf`.
fn read_request(stream: &mut TcpStream, s: &mut ConnScratch) -> Result<ReadOutcome, ReadError> {
    // 1. buffer socket bytes until the whole head ("\r\n\r\n") is in
    let head_end = loop {
        if let Some(end) = find_head_end(&s.buf) {
            break end;
        }
        if s.buf.len() > MAX_HEADER {
            return Err(ReadError::Malformed(if s.buf.contains(&b'\n') {
                "header block too large".to_string()
            } else {
                "header line too long".to_string()
            }));
        }
        if !s.buf.is_empty() && !s.long_timeout_active {
            // a request has started arriving but is incomplete: give
            // the slow sender the longer in-request read budget (the
            // caller restores the idle timeout before the next wait)
            let _ = stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
            s.long_timeout_active = true;
        }
        match fill(stream, &mut s.buf) {
            // EOF or idle timeout before any byte of a next request is
            // a clean keep-alive close; mid-head it is a dead peer
            Ok(0) | Err(_) => {
                return if s.buf.is_empty() {
                    Ok(ReadOutcome::CleanEof)
                } else {
                    Err(ReadError::Closed)
                };
            }
            Ok(_) => {}
        }
    };

    // 2. parse the head in place (no allocation: `method`/`path` are
    // copied into reusable buffers, everything else is scalar)
    let head = std::str::from_utf8(&s.buf[..head_end])
        .map_err(|_| ReadError::Malformed("header is not utf-8".to_string()))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ReadError::Malformed("malformed request line".to_string()));
    };
    // keep-alive is the HTTP/1.1 default; HTTP/1.0 (and anything
    // older) defaults to close unless the client opts in
    let http11 = parts.next() == Some("HTTP/1.1");
    let mut content_length: Option<usize> = None;
    let mut close_token = false;
    let mut keep_alive_token = false;
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator line
        }
        header_count += 1;
        if header_count > MAX_HEADER_LINES {
            return Err(ReadError::Malformed(format!(
                "more than {MAX_HEADER_LINES} headers"
            )));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("invalid content-length".to_string()))?;
                // repeated identical values are tolerated (RFC 9110
                // allows folding them); *conflicting* duplicates mean
                // the framing is ambiguous — request smuggling
                // territory — so reject and close
                if content_length.is_some_and(|previous| previous != parsed) {
                    return Err(ReadError::Malformed(
                        "conflicting duplicate content-length headers".to_string(),
                    ));
                }
                content_length = Some(parsed);
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close_token = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive_token = true;
                    }
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // chunked bodies are not implemented; accepting the
                // request would desync keep-alive framing (the chunk
                // stream would be parsed as the next request), so
                // reject it outright — whether alone or combined with
                // content-length — the 400 path closes the connection
                return Err(ReadError::Malformed(
                    "transfer-encoding is not supported; send a content-length body".to_string(),
                ));
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    s.method.clear();
    s.method.push_str(method);
    s.path.clear();
    s.path.push_str(path);
    s.close_requested = close_token || (!http11 && !keep_alive_token);
    if content_length > MAX_BODY {
        return Err(ReadError::Malformed(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY} limit"
        )));
    }

    // 3. assemble the body: whatever is already buffered, then exact
    // reads for the rest
    s.body.clear();
    let buffered = (s.buf.len() - head_end).min(content_length);
    s.body
        .extend_from_slice(&s.buf[head_end..head_end + buffered]);
    s.buf.drain(..head_end + buffered);
    if s.body.len() < content_length {
        if !s.long_timeout_active {
            let _ = stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
            s.long_timeout_active = true;
        }
        let already = s.body.len();
        s.body.resize(content_length, 0);
        stream
            .read_exact(&mut s.body[already..])
            .map_err(|e| ReadError::Malformed(format!("cannot read body: {e}")))?;
    }
    Ok(ReadOutcome::Request)
}

/// Position just past the head terminator (`\r\n\r\n`, tolerating bare
/// `\n\n`), or `None` while incomplete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Append up to 4 KiB of socket bytes to `buf` (via a stack chunk, so
/// a warm `buf` never reallocates for small requests).
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    let mut chunk = [0u8; 4096];
    let n = stream.read(&mut chunk)?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n)
}

/// `content-type` of every JSON response.
const JSON_CONTENT_TYPE: &str = "application/json";
/// `content-type` of the Prometheus text exposition format.
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Serialize a complete HTTP/1.1 JSON response (status line, headers,
/// body) into `out`, clearing it first and reusing its capacity — the
/// zero-allocation response framer shared by the workers, the
/// rejection path, and the allocation audit.
pub fn write_response_into(
    out: &mut Vec<u8>,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u32>,
) {
    write_response_with_type_into(
        out,
        status,
        body,
        keep_alive,
        retry_after_secs,
        JSON_CONTENT_TYPE,
    );
}

/// [`write_response_into`] with an explicit `content-type` (the
/// `/metrics` route serves Prometheus text, not JSON).
pub fn write_response_with_type_into(
    out: &mut Vec<u8>,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u32>,
    content_type: &str,
) {
    write_response_traced_into(
        out,
        status,
        body,
        keep_alive,
        retry_after_secs,
        content_type,
        None,
    );
}

/// The full response framer: [`write_response_with_type_into`] plus an
/// optional `x-trace-id` header joining the response to its
/// `GET /debug/traces` entry and access-log line. Still allocation-free
/// on a warm `out` buffer.
pub fn write_response_traced_into(
    out: &mut Vec<u8>,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u32>,
    content_type: &str,
    trace_id: Option<u64>,
) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    out.clear();
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    if let Some(secs) = retry_after_secs {
        let _ = write!(out, "retry-after: {secs}\r\n");
    }
    if let Some(id) = trace_id {
        let _ = write!(out, "x-trace-id: {id}\r\n");
    }
    out.extend_from_slice(if keep_alive {
        b"connection: keep-alive\r\n\r\n"
    } else {
        b"connection: close\r\n\r\n"
    });
    out.extend_from_slice(body.as_bytes());
}

fn write_error(out: &mut String, message: &str) {
    out.push_str("{\"error\":");
    crate::json::write_string(message, out);
    out.push('}');
}

/// Dispatch the request in the scratch, writing the response body into
/// `scratch.body_out` and returning the status code plus the
/// [`RouteClass`] the request was accounted to. `trace_id` is the
/// request's already-assigned trace ID; the submit routes thread it
/// (and the scratch's span recorder) into the engine.
fn route_request(
    engine: &Arc<Engine>,
    scratch: &mut ConnScratch,
    trace_id: u64,
) -> (u16, RouteClass) {
    let ConnScratch {
        method,
        path,
        body,
        arena,
        body_out,
        trace,
        ..
    } = scratch;
    body_out.clear();
    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            // liveness: answers 200 for as long as the process serves,
            // draining included (readiness is `/readyz`)
            let json = Json::object(vec![
                ("status", Json::String("ok".to_string())),
                (
                    "algorithms",
                    Json::Array(
                        engine
                            .registry()
                            .names()
                            .into_iter()
                            .map(|n| Json::String(n.to_string()))
                            .collect(),
                    ),
                ),
            ]);
            json.write_into(body_out);
            (200, RouteClass::Healthz)
        }
        ("GET", "/readyz") => {
            // readiness: flips to 503 the moment a drain begins, so
            // load balancers stop routing here before the listener
            // actually goes away. The body carries the batch-job queue
            // depth so a cluster router can reason about how much work
            // is still parked on a draining replica.
            let (queued, running, ..) = engine.job_store().counters();
            let draining = engine.is_draining();
            let status = if draining { "draining" } else { "ready" };
            let _ = write!(
                body_out,
                "{{\"status\":\"{status}\",\"draining\":{draining},\"jobs_queued\":{queued},\"jobs_running\":{running}}}"
            );
            (if draining { 503 } else { 200 }, RouteClass::Readyz)
        }
        ("GET", "/stats") => {
            engine.stats_json().write_into(body_out);
            (200, RouteClass::Stats)
        }
        ("GET", "/metrics") => {
            engine.render_metrics(body_out);
            (200, RouteClass::Metrics)
        }
        ("GET", path) if debug_traces_query(path).is_some() => {
            let query = debug_traces_query(path).unwrap_or("");
            let (route_filter, algorithm_filter) = parse_trace_filters(query);
            engine
                .flight_recorder()
                .write_json(body_out, route_filter, algorithm_filter);
            (200, RouteClass::DebugTraces)
        }
        ("POST", "/rank") => (
            submit_route(engine, Route::Rank, body, arena, body_out, trace_id, trace),
            RouteClass::Rank,
        ),
        ("POST", "/aggregate") => (
            submit_route(
                engine,
                Route::Aggregate,
                body,
                arena,
                body_out,
                trace_id,
                trace,
            ),
            RouteClass::Aggregate,
        ),
        ("POST", "/pipeline") => (
            submit_route(
                engine,
                Route::Pipeline,
                body,
                arena,
                body_out,
                trace_id,
                trace,
            ),
            RouteClass::Pipeline,
        ),
        ("POST", "/jobs") => (
            jobs_submit(engine, body, arena, body_out, trace_id, trace),
            RouteClass::JobsSubmit,
        ),
        ("GET", path) if path.strip_prefix("/jobs/").is_some() => (
            jobs_status(engine, &path["/jobs/".len()..], body_out),
            RouteClass::JobsGet,
        ),
        ("DELETE", path) if path.strip_prefix("/jobs/").is_some() => (
            jobs_cancel(engine, &path["/jobs/".len()..], body_out),
            RouteClass::JobsCancel,
        ),
        ("POST", _) | ("GET", _) | ("DELETE", _) => {
            write_error(body_out, "no such route");
            (404, RouteClass::Other)
        }
        _ => {
            write_error(body_out, "method not allowed");
            (405, RouteClass::Other)
        }
    }
}

/// The query string of a `/debug/traces` request, or `None` when
/// `path` is a different route entirely.
fn debug_traces_query(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/debug/traces")?;
    if rest.is_empty() {
        Some("")
    } else {
        rest.strip_prefix('?')
    }
}

/// Parse `route=…&algorithm=…` filters for `GET /debug/traces`.
/// Unknown keys are ignored; values are matched exactly (labels are
/// plain identifiers, so no percent-decoding is needed).
fn parse_trace_filters(query: &str) -> (Option<&str>, Option<&str>) {
    let mut route = None;
    let mut algorithm = None;
    for pair in query.split('&') {
        match pair.split_once('=') {
            Some(("route", value)) if !value.is_empty() => route = Some(value),
            Some(("algorithm", value)) if !value.is_empty() => algorithm = Some(value),
            _ => {}
        }
    }
    (route, algorithm)
}

/// `POST /jobs`: parse `{"chunks":[…]}` (each chunk the body of a
/// sync route, plus an optional `"route"` discriminator defaulting to
/// `rank`), submit the batch, answer `202` with the id to poll. The
/// request's trace ID becomes the batch's parent trace so every chunk
/// trace links back to the submission that created it.
fn jobs_submit(
    engine: &Arc<Engine>,
    body: &[u8],
    arena: &mut JsonArena,
    out: &mut String,
    trace_id: u64,
    trace: &mut TraceScratch,
) -> u16 {
    let parse_started = Instant::now();
    let parsed = parse_jobs_body(body, arena);
    trace.parse_us = duration_us(parse_started.elapsed());
    let spec = match parsed {
        Ok(spec) => spec,
        Err(message) => {
            write_error(out, &message);
            return 400;
        }
    };
    match engine.submit_batch_traced(spec, trace_id) {
        Ok(job) => {
            let serialize_started = Instant::now();
            job.write_status_json(out);
            trace.serialize_us = duration_us(serialize_started.elapsed());
            202
        }
        Err(e) => {
            let status = match &e {
                EngineError::UnknownAlgorithm(_) => 404,
                EngineError::InvalidJob(_) => 400,
                EngineError::Algorithm(_) => 422,
                EngineError::Overloaded | EngineError::ShuttingDown => 503,
            };
            write_error(out, &e.to_string());
            status
        }
    }
}

/// Decode a `POST /jobs` body into a [`BatchSpec`](crate::batch::BatchSpec)
/// (UTF-8 check, JSON parse, spec extraction — every failure is a 400).
fn parse_jobs_body(body: &[u8], arena: &mut JsonArena) -> Result<crate::batch::BatchSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let doc = arena.parse(text).map_err(|e| e.to_string())?;
    parse_batch_spec(doc)
}

/// Cluster placement key for a request to `path` with `body`: the same
/// algorithm+input digest the result cache is keyed by, so a
/// consistent-hash router lands a request on the replica that already
/// holds its cached result. `None` when the route does not take a
/// rankable body or the body does not parse — the router then falls
/// back to a raw-byte hash and forwards anyway, letting the backend
/// produce its canonical 400.
pub fn ring_key(path: &str, body: &[u8], arena: &mut JsonArena) -> Option<u64> {
    let route = match path {
        "/rank" => Route::Rank,
        "/aggregate" => Route::Aggregate,
        "/pipeline" => Route::Pipeline,
        "/jobs" => return parse_jobs_body(body, arena).ok().map(|spec| spec.digest()),
        _ => return None,
    };
    parse_submit_body(body, arena, route)
        .ok()
        .map(|job| job.digest())
}

/// `GET /jobs/{id}`: status snapshot, with per-chunk results once the
/// job is terminal.
fn jobs_status(engine: &Arc<Engine>, id: &str, out: &mut String) -> u16 {
    let Some(job) = id.parse().ok().and_then(|id| engine.batch_job(id)) else {
        write_error(out, "no such job");
        return 404;
    };
    job.write_status_json(out);
    200
}

/// `DELETE /jobs/{id}`: request cooperative cancellation and return
/// the (possibly already terminal) status.
fn jobs_cancel(engine: &Arc<Engine>, id: &str, out: &mut String) -> u16 {
    let Some(job) = id.parse().ok().and_then(|id| engine.cancel_batch_job(id)) else {
        write_error(out, "no such job");
        return 404;
    };
    job.write_status_json(out);
    200
}

/// Parse the `POST /jobs` body into a [`BatchSpec`].
fn parse_batch_spec(doc: ValueRef<'_>) -> Result<crate::batch::BatchSpec, String> {
    if !doc.is_object() {
        return Err("request body must be a JSON object".to_string());
    }
    let chunks_value = doc
        .get("chunks")
        .ok_or("`chunks` (array of chunk objects) is required")?;
    let chunk_docs = chunks_value.as_array().ok_or("`chunks` must be an array")?;
    let mut chunks = Vec::with_capacity(chunks_value.len());
    for (index, chunk_doc) in chunk_docs.enumerate() {
        let route = match chunk_doc.get("route").map(|r| r.as_str()) {
            None => Route::Rank,
            Some(Some("rank")) => Route::Rank,
            Some(Some("aggregate")) => Route::Aggregate,
            Some(Some("pipeline")) => Route::Pipeline,
            Some(_) => {
                return Err(format!(
                    "chunk {index}: `route` must be `rank`, `aggregate` or `pipeline`"
                ))
            }
        };
        let job =
            parse_job(chunk_doc, route).map_err(|message| format!("chunk {index}: {message}"))?;
        chunks.push(job);
    }
    Ok(crate::batch::BatchSpec { chunks })
}

#[derive(Clone, Copy, PartialEq)]
enum Route {
    Rank,
    Aggregate,
    Pipeline,
}

fn submit_route(
    engine: &Arc<Engine>,
    route: Route,
    body: &[u8],
    arena: &mut JsonArena,
    out: &mut String,
    trace_id: u64,
    trace: &mut TraceScratch,
) -> u16 {
    let parse_started = Instant::now();
    let parsed = parse_submit_body(body, arena, route);
    trace.parse_us = duration_us(parse_started.elapsed());
    let job = match parsed {
        Ok(job) => job,
        Err(message) => {
            write_error(out, &message);
            return 400;
        }
    };
    trace.algorithm = TraceStr::new(&job.algorithm);
    // each route only accepts algorithms of its kind, so `POST /rank`
    // cannot invoke an aggregator and vice versa
    if let Some(algorithm) = engine.registry().get(&job.algorithm) {
        let expected = match route {
            Route::Rank => AlgorithmKind::PostProcessor,
            Route::Aggregate => AlgorithmKind::Aggregator,
            Route::Pipeline => AlgorithmKind::Pipeline,
        };
        if algorithm.kind() != expected {
            write_error(
                out,
                &format!("algorithm `{}` cannot be used on this route", job.algorithm),
            );
            return 400;
        }
    }
    let origin = match route {
        Route::Rank => JobOrigin::Rank,
        Route::Aggregate => JobOrigin::Aggregate,
        Route::Pipeline => JobOrigin::Pipeline,
    };
    let handle = TraceHandle {
        id: trace_id,
        spans: Arc::clone(&trace.spans),
    };
    match engine.submit_traced(job, origin, Some(&handle)) {
        Ok(result) => {
            let serialize_started = Instant::now();
            result.write_json(out);
            trace.serialize_us = duration_us(serialize_started.elapsed());
            200
        }
        Err(e) => {
            let status = match &e {
                EngineError::UnknownAlgorithm(_) => 404,
                EngineError::InvalidJob(_) => 400,
                EngineError::Algorithm(_) => 422,
                EngineError::Overloaded | EngineError::ShuttingDown => 503,
            };
            write_error(out, &e.to_string());
            status
        }
    }
}

/// Decode a sync-route body into a [`RankJob`] (UTF-8 check, JSON
/// parse, job extraction — every failure is a 400).
fn parse_submit_body(body: &[u8], arena: &mut JsonArena, route: Route) -> Result<RankJob, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let doc = arena.parse(text).map_err(|e| e.to_string())?;
    parse_job(doc, route)
}

fn parse_job(doc: ValueRef<'_>, route: Route) -> Result<RankJob, String> {
    if !doc.is_object() {
        return Err("request body must be a JSON object".to_string());
    }
    let params = parse_params(doc)?;

    let groups: Vec<usize> = match doc.get("groups") {
        None => Vec::new(),
        Some(value) => value
            .as_array()
            .ok_or("`groups` must be an array")?
            .map(|g| {
                g.as_usize()
                    .ok_or("`groups` entries must be non-negative integers")
            })
            .collect::<Result<_, _>>()?,
    };

    match route {
        Route::Rank => {
            let algorithm = doc
                .get("algorithm")
                .and_then(|v| v.as_str())
                .ok_or("`algorithm` (string) is required")?
                .to_string();
            let scores: Vec<f64> = doc
                .get("scores")
                .and_then(|v| v.as_array())
                .ok_or("`scores` (array of numbers) is required")?
                .map(|s| s.as_f64().ok_or("`scores` entries must be numbers"))
                .collect::<Result<_, _>>()?;
            Ok(RankJob {
                algorithm,
                input: JobInput::Scores { scores, groups },
                params,
            })
        }
        Route::Aggregate | Route::Pipeline => {
            let votes: Vec<Vec<usize>> = doc
                .get("votes")
                .and_then(|v| v.as_array())
                .ok_or("`votes` (array of rankings) is required")?
                .map(|vote| {
                    vote.as_array()
                        .ok_or("each vote must be an array")?
                        .map(|i| {
                            i.as_usize()
                                .ok_or("vote entries must be non-negative integers")
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?;
            let algorithm = if route == Route::Pipeline {
                "pipeline".to_string()
            } else {
                doc.get("method")
                    .or_else(|| doc.get("algorithm"))
                    .and_then(|v| v.as_str())
                    .ok_or("`method` (string) is required")?
                    .to_string()
            };
            Ok(RankJob {
                algorithm,
                input: JobInput::Votes { votes, groups },
                params,
            })
        }
    }
}

fn parse_params(doc: ValueRef<'_>) -> Result<JobParams, String> {
    let mut params = JobParams::default();
    if let Some(v) = doc.get("theta") {
        params.theta = v.as_f64().ok_or("`theta` must be a number")?;
    }
    if let Some(v) = doc.get("samples") {
        params.samples = v
            .as_usize()
            .ok_or("`samples` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("tolerance") {
        params.tolerance = v.as_f64().ok_or("`tolerance` must be a number")?;
    }
    if let Some(v) = doc.get("noise_sd") {
        params.noise_sd = v.as_f64().ok_or("`noise_sd` must be a number")?;
    }
    if let Some(v) = doc.get("k") {
        params.k = Some(v.as_usize().ok_or("`k` must be a non-negative integer")?);
    }
    if let Some(v) = doc.get("seed") {
        params.seed = v.as_u64().ok_or("`seed` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("method") {
        params.method = v.as_str().ok_or("`method` must be a string")?.to_string();
    }
    if let Some(v) = doc.get("post") {
        params.post = v.as_str().ok_or("`post` must be a string")?.to_string();
    }
    if let Some(v) = doc.get("protected") {
        params.protected = v
            .as_usize()
            .ok_or("`protected` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("proportion") {
        params.proportion = Some(v.as_f64().ok_or("`proportion` must be a number")?);
    }
    if let Some(v) = doc.get("alpha") {
        params.alpha = v.as_f64().ok_or("`alpha` must be a number")?;
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn start() -> ServerHandle {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 32,
            table_cache_capacity: 16,
            cache_shards: 0,
            ..EngineConfig::default()
        });
        Server::bind("127.0.0.1:0", engine)
            .unwrap()
            .spawn()
            .unwrap()
    }

    /// Minimal HTTP client for the tests: one request per connection,
    /// `connection: close` so `read_to_string` terminates.
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: fairrank\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn healthz_lists_algorithms() {
        let server = start();
        let (status, body) = http(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"mallows\""), "{body}");
        assert!(body.contains("\"borda\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn rank_round_trip() {
        let server = start();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"weakly-fair","scores":[0.9,0.8,0.4,0.3],"groups":[0,0,1,1],"tolerance":0.2}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ranking\":["), "{body}");
        assert!(body.contains("ndcg_within_selection"), "{body}");
        server.shutdown();
    }

    #[test]
    fn aggregate_round_trip() {
        let server = start();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/aggregate",
            r#"{"method":"borda","votes":[[0,1,2],[0,1,2],[1,0,2]]}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ranking\":[0,1,2]"), "{body}");
        server.shutdown();
    }

    #[test]
    fn stats_reports_cache_hits() {
        let server = start();
        let body = r#"{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":7}"#;
        let (s1, _) = http(server.addr(), "POST", "/rank", body);
        let (s2, _) = http(server.addr(), "POST", "/rank", body);
        assert_eq!((s1, s2), (200, 200));
        let (status, stats) = http(server.addr(), "GET", "/stats", "");
        assert_eq!(status, 200);
        assert!(stats.contains("\"cache_hits\":1"), "{stats}");
        assert!(stats.contains("\"cache_misses\":1"), "{stats}");
        assert!(stats.contains("\"latency_p50_us\":"), "{stats}");
        assert!(stats.contains("\"latency_p99_us\":"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn stats_reports_sampler_table_hits() {
        let server = start();
        // two mallows jobs with the same (n, θ) but different seeds:
        // distinct result-cache entries, one shared sampler table
        for seed in [1, 2] {
            let body = format!(
                r#"{{"algorithm":"mallows","scores":[0.9,0.7,0.5,0.3],"groups":[0,0,1,1],"samples":5,"seed":{seed}}}"#
            );
            let (status, response) = http(server.addr(), "POST", "/rank", &body);
            assert_eq!(status, 200, "{response}");
        }
        let (status, stats) = http(server.addr(), "GET", "/stats", "");
        assert_eq!(status, 200);
        assert!(stats.contains("\"sampler_table_hits\":1"), "{stats}");
        assert!(stats.contains("\"sampler_table_misses\":1"), "{stats}");
        assert!(stats.contains("\"sampler_table_entries\":1"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn error_statuses() {
        let server = start();
        // malformed JSON → 400
        let (status, _) = http(server.addr(), "POST", "/rank", "{nope");
        assert_eq!(status, 400);
        // unknown algorithm → 404
        let (status, _) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"psychic","scores":[1.0]}"#,
        );
        assert_eq!(status, 404);
        // wrong route for the algorithm's kind → 400
        let (status, _) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"borda","scores":[1.0]}"#,
        );
        assert_eq!(status, 400);
        // algorithm failure (3 groups into gr-binary) → 422
        let (status, _) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"gr-binary","scores":[1.0,0.5,0.2],"groups":[0,1,2]}"#,
        );
        assert_eq!(status, 422);
        // unknown route → 404
        let (status, _) = http(server.addr(), "GET", "/nope", "");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn oversized_unterminated_header_is_rejected_not_buffered() {
        let server = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // a request line that never ends: the server must cut it off at
        // the header cap instead of buffering it forever (write just
        // past the cap, then stop, so the 400 isn't lost to a reset)
        let chunk = vec![b'A'; 20 << 10]; // 20 KiB > 16 KiB cap, no newline
        stream.write_all(b"GET /").unwrap();
        stream.write_all(&chunk).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("header line too long"), "{response}");
        server.shutdown();
    }

    #[test]
    fn pipeline_round_trip_contains_both_rankings() {
        let server = start();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/pipeline",
            r#"{"votes":[[0,1,2,3],[0,1,3,2],[1,0,2,3]],"groups":[0,0,1,1],"method":"borda","post":"mallows","theta":1.0,"samples":15,"tolerance":0.2,"seed":11}"#,
        );
        assert_eq!(status, 200, "{body}");
        for key in [
            "\"consensus\":[",
            "\"fair_ranking\":[",
            "consensus_total_kt",
            "fair_total_kt",
            "consensus_infeasible",
            "fair_infeasible",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        server.shutdown();
    }

    #[test]
    fn legacy_thread_per_conn_mode_still_serves() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 32,
            table_cache_capacity: 16,
            cache_shards: 0,
            ..EngineConfig::default()
        });
        let server = Server::bind_with(
            "127.0.0.1:0",
            engine,
            ServerConfig {
                thread_per_conn: true,
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let (status, body) = http(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn trace_header_joins_debug_traces_entry() {
        let server = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = r#"{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1]}"#;
        let request = format!(
            "POST /rank HTTP/1.1\r\nhost: fairrank\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let trace_id: u64 = response
            .split("x-trace-id: ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|id| id.parse().ok())
            .expect("x-trace-id header");

        let (status, traces) = http(server.addr(), "GET", "/debug/traces?route=rank", "");
        assert_eq!(status, 200, "{traces}");
        assert!(traces.contains(&format!("\"id\":{trace_id}")), "{traces}");
        assert!(traces.contains("\"algorithm\":\"weakly-fair\""), "{traces}");
        assert!(traces.contains("\"run_us\":"), "{traces}");

        // a filter that matches nothing leaves both tracks empty
        let (status, filtered) = http(
            server.addr(),
            "GET",
            "/debug/traces?route=rank&algorithm=nope",
            "",
        );
        assert_eq!(status, 200);
        assert!(filtered.contains("\"recent\":[]"), "{filtered}");
        server.shutdown();
    }

    #[test]
    fn access_log_line_carries_trace_id() {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let lines = Arc::new(Mutex::new(Vec::new()));
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 32,
            table_cache_capacity: 16,
            cache_shards: 0,
            ..EngineConfig::default()
        });
        let server = Server::bind_with(
            "127.0.0.1:0",
            engine,
            ServerConfig {
                access_log: Some(AccessLog::to_writer(Box::new(SharedBuf(Arc::clone(
                    &lines,
                ))))),
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let (status, _) = http(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        server.shutdown();
        let logged = String::from_utf8(lines.lock().unwrap().clone()).unwrap();
        let line = logged
            .lines()
            .find(|l| l.contains("\"path\":\"/healthz\""))
            .expect("healthz access-log line");
        assert!(line.contains("\"trace\":"), "{line}");
    }

    #[test]
    fn response_framer_writes_expected_bytes() {
        let mut out = Vec::new();
        write_response_into(&mut out, 503, "{}", false, Some(2));
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        // reuse clears previous content
        write_response_into(&mut out, 200, "[1]", true, None);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("retry-after"), "{text}");
        assert!(text.ends_with("\r\n\r\n[1]"), "{text}");
    }

    #[test]
    fn find_head_end_handles_crlf_and_bare_lf() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }
}
