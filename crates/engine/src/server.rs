//! HTTP/1.1 JSON API over `std::net::TcpListener` — no async runtime.
//!
//! Routes:
//!
//! | route             | body                                           |
//! |-------------------|------------------------------------------------|
//! | `POST /rank`      | `{"algorithm","scores",["groups"],…params}`    |
//! | `POST /aggregate` | `{"method","votes",["groups"],…params}`        |
//! | `POST /pipeline`  | `{"votes","groups",["method","post"],…params}` |
//! | `GET /healthz`    | —                                              |
//! | `GET /stats`      | —                                              |
//!
//! Shared params: `theta`, `samples`, `tolerance`, `k`, `seed`,
//! `protected`, `proportion`, `alpha` — same names and defaults as the
//! `fairrank` CLI flags.
//!
//! Error mapping: malformed request → `400`, unknown algorithm → `404`,
//! algorithm failure → `422`, full job queue → `503`.
//!
//! Concurrency model: one OS thread per connection (connections are
//! short-lived; `Connection: close` is always sent), all of them
//! funnelling into the engine's bounded worker pool, which is where
//! admission control happens.

use crate::job::{JobInput, JobParams, RankJob};
use crate::json::Json;
use crate::registry::AlgorithmKind;
use crate::stats::EngineStats;
use crate::{Engine, EngineError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maximum accepted request-body size (16 MiB).
const MAX_BODY: usize = 16 << 20;
/// Maximum accepted header-block size (16 KiB).
const MAX_HEADER: usize = 16 << 10;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Serve forever on the current thread.
    pub fn run(self) {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop);
    }

    /// Serve on a background thread; the handle shuts it down.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_loop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fairrank-accept".to_string())
            .spawn(move || self.accept_loop(&stop_for_loop))
            .expect("spawning the accept thread");
        ServerHandle { addr, stop, thread }
    }

    fn accept_loop(self, stop: &AtomicBool) {
        for connection in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match connection {
                Ok(stream) => stream,
                Err(_) => {
                    // accept() fails in a tight loop under fd
                    // exhaustion — back off instead of spinning at
                    // 100% CPU while the worker threads drain
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    continue;
                }
            };
            let engine = Arc::clone(&self.engine);
            let spawned = std::thread::Builder::new()
                .name("fairrank-conn".to_string())
                .spawn(move || {
                    let _ = handle_connection(stream, &engine);
                });
            if let Err(_e) = spawned {
                // thread spawn failed (resource exhaustion): the moved
                // stream is gone with the failed closure, so the client
                // sees a closed connection; pause before accepting more
                EngineStats::bump(&self.engine.stats().http_errors);
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // kick the blocking accept() so it observes the flag
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

fn handle_connection(stream: TcpStream, engine: &Arc<Engine>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
    EngineStats::bump(&engine.stats().http_requests);
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(message) => {
            let mut stream = reader.into_inner();
            EngineStats::bump(&engine.stats().http_errors);
            return write_response(&mut stream, 400, &error_body(&message));
        }
    };
    let (status, body) = route(&request, engine);
    if status >= 400 {
        EngineStats::bump(&engine.stats().http_errors);
    }
    let mut stream = reader.into_inner();
    write_response(&mut stream, status, &body)
}

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Read one `\n`-terminated line, buffering at most `max` bytes — a
/// client streaming an endless unterminated line must not grow memory
/// past the cap (plain `read_line` only checks limits after the whole
/// line has been buffered).
fn read_line_limited(reader: &mut BufReader<TcpStream>, max: usize) -> Result<String, String> {
    let mut line = Vec::new();
    (&mut *reader)
        .take(max as u64 + 1)
        .read_until(b'\n', &mut line)
        .map_err(|e| format!("cannot read line: {e}"))?;
    if line.len() > max {
        return Err("header line too long".to_string());
    }
    String::from_utf8(line).map_err(|_| "header is not utf-8".to_string())
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let request_line = read_line_limited(reader, MAX_HEADER)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".to_string());
    }

    let mut content_length = 0usize;
    let mut header_bytes = request_line.len();
    loop {
        let line = read_line_limited(reader, MAX_HEADER)?;
        header_bytes += line.len();
        if header_bytes > MAX_HEADER {
            return Err("header block too large".to_string());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "invalid content-length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY} limit"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("cannot read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    Ok(Request { method, path, body })
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn error_body(message: &str) -> String {
    Json::object(vec![("error", Json::String(message.to_string()))]).to_string()
}

fn route(request: &Request, engine: &Arc<Engine>) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = Json::object(vec![
                ("status", Json::String("ok".to_string())),
                (
                    "algorithms",
                    Json::Array(
                        engine
                            .registry()
                            .names()
                            .into_iter()
                            .map(|n| Json::String(n.to_string()))
                            .collect(),
                    ),
                ),
            ]);
            (200, body.to_string())
        }
        ("GET", "/stats") => (200, engine.stats_json().to_string()),
        ("POST", "/rank") => submit_route(request, engine, Route::Rank),
        ("POST", "/aggregate") => submit_route(request, engine, Route::Aggregate),
        ("POST", "/pipeline") => submit_route(request, engine, Route::Pipeline),
        ("POST", _) | ("GET", _) => (404, error_body("no such route")),
        _ => (405, error_body("method not allowed")),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Route {
    Rank,
    Aggregate,
    Pipeline,
}

fn submit_route(request: &Request, engine: &Arc<Engine>, route: Route) -> (u16, String) {
    let job = match parse_job(&request.body, route) {
        Ok(job) => job,
        Err(message) => return (400, error_body(&message)),
    };
    // each route only accepts algorithms of its kind, so `POST /rank`
    // cannot invoke an aggregator and vice versa
    if let Some(algorithm) = engine.registry().get(&job.algorithm) {
        let expected = match route {
            Route::Rank => AlgorithmKind::PostProcessor,
            Route::Aggregate => AlgorithmKind::Aggregator,
            Route::Pipeline => AlgorithmKind::Pipeline,
        };
        if algorithm.kind() != expected {
            return (
                400,
                error_body(&format!(
                    "algorithm `{}` cannot be used on this route",
                    job.algorithm
                )),
            );
        }
    }
    match engine.submit(job) {
        Ok(result) => (200, result.to_json().to_string()),
        Err(e @ EngineError::UnknownAlgorithm(_)) => (404, error_body(&e.to_string())),
        Err(e @ EngineError::InvalidJob(_)) => (400, error_body(&e.to_string())),
        Err(e @ EngineError::Algorithm(_)) => (422, error_body(&e.to_string())),
        Err(e @ EngineError::Overloaded) => (503, error_body(&e.to_string())),
        Err(e @ EngineError::ShuttingDown) => (503, error_body(&e.to_string())),
    }
}

fn parse_job(body: &str, route: Route) -> Result<RankJob, String> {
    let doc = Json::parse(body).map_err(|e| e.to_string())?;
    if !matches!(doc, Json::Object(_)) {
        return Err("request body must be a JSON object".to_string());
    }
    let params = parse_params(&doc)?;

    let groups: Vec<usize> = match doc.get("groups") {
        None => Vec::new(),
        Some(value) => value
            .as_array()
            .ok_or("`groups` must be an array")?
            .iter()
            .map(|g| {
                g.as_usize()
                    .ok_or("`groups` entries must be non-negative integers")
            })
            .collect::<Result<_, _>>()?,
    };

    match route {
        Route::Rank => {
            let algorithm = doc
                .get("algorithm")
                .and_then(Json::as_str)
                .ok_or("`algorithm` (string) is required")?
                .to_string();
            let scores: Vec<f64> = doc
                .get("scores")
                .and_then(Json::as_array)
                .ok_or("`scores` (array of numbers) is required")?
                .iter()
                .map(|s| s.as_f64().ok_or("`scores` entries must be numbers"))
                .collect::<Result<_, _>>()?;
            Ok(RankJob {
                algorithm,
                input: JobInput::Scores { scores, groups },
                params,
            })
        }
        Route::Aggregate | Route::Pipeline => {
            let votes: Vec<Vec<usize>> = doc
                .get("votes")
                .and_then(Json::as_array)
                .ok_or("`votes` (array of rankings) is required")?
                .iter()
                .map(|vote| {
                    vote.as_array()
                        .ok_or("each vote must be an array")?
                        .iter()
                        .map(|i| {
                            i.as_usize()
                                .ok_or("vote entries must be non-negative integers")
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?;
            let algorithm = if route == Route::Pipeline {
                "pipeline".to_string()
            } else {
                doc.get("method")
                    .or_else(|| doc.get("algorithm"))
                    .and_then(Json::as_str)
                    .ok_or("`method` (string) is required")?
                    .to_string()
            };
            Ok(RankJob {
                algorithm,
                input: JobInput::Votes { votes, groups },
                params,
            })
        }
    }
}

fn parse_params(doc: &Json) -> Result<JobParams, String> {
    let mut params = JobParams::default();
    if let Some(v) = doc.get("theta") {
        params.theta = v.as_f64().ok_or("`theta` must be a number")?;
    }
    if let Some(v) = doc.get("samples") {
        params.samples = v
            .as_usize()
            .ok_or("`samples` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("tolerance") {
        params.tolerance = v.as_f64().ok_or("`tolerance` must be a number")?;
    }
    if let Some(v) = doc.get("k") {
        params.k = Some(v.as_usize().ok_or("`k` must be a non-negative integer")?);
    }
    if let Some(v) = doc.get("seed") {
        params.seed = v.as_u64().ok_or("`seed` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("method") {
        params.method = v.as_str().ok_or("`method` must be a string")?.to_string();
    }
    if let Some(v) = doc.get("post") {
        params.post = v.as_str().ok_or("`post` must be a string")?.to_string();
    }
    if let Some(v) = doc.get("protected") {
        params.protected = v
            .as_usize()
            .ok_or("`protected` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("proportion") {
        params.proportion = Some(v.as_f64().ok_or("`proportion` must be a number")?);
    }
    if let Some(v) = doc.get("alpha") {
        params.alpha = v.as_f64().ok_or("`alpha` must be a number")?;
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn start() -> ServerHandle {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 32,

            table_cache_capacity: 16,
        });
        Server::bind("127.0.0.1:0", engine).unwrap().spawn()
    }

    /// Minimal HTTP client for the tests.
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: fairrank\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn healthz_lists_algorithms() {
        let server = start();
        let (status, body) = http(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"mallows\""), "{body}");
        assert!(body.contains("\"borda\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn rank_round_trip() {
        let server = start();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"weakly-fair","scores":[0.9,0.8,0.4,0.3],"groups":[0,0,1,1],"tolerance":0.2}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ranking\":["), "{body}");
        assert!(body.contains("ndcg_within_selection"), "{body}");
        server.shutdown();
    }

    #[test]
    fn aggregate_round_trip() {
        let server = start();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/aggregate",
            r#"{"method":"borda","votes":[[0,1,2],[0,1,2],[1,0,2]]}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ranking\":[0,1,2]"), "{body}");
        server.shutdown();
    }

    #[test]
    fn stats_reports_cache_hits() {
        let server = start();
        let body = r#"{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":7}"#;
        let (s1, _) = http(server.addr(), "POST", "/rank", body);
        let (s2, _) = http(server.addr(), "POST", "/rank", body);
        assert_eq!((s1, s2), (200, 200));
        let (status, stats) = http(server.addr(), "GET", "/stats", "");
        assert_eq!(status, 200);
        assert!(stats.contains("\"cache_hits\":1"), "{stats}");
        assert!(stats.contains("\"cache_misses\":1"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn stats_reports_sampler_table_hits() {
        let server = start();
        // two mallows jobs with the same (n, θ) but different seeds:
        // distinct result-cache entries, one shared sampler table
        for seed in [1, 2] {
            let body = format!(
                r#"{{"algorithm":"mallows","scores":[0.9,0.7,0.5,0.3],"groups":[0,0,1,1],"samples":5,"seed":{seed}}}"#
            );
            let (status, response) = http(server.addr(), "POST", "/rank", &body);
            assert_eq!(status, 200, "{response}");
        }
        let (status, stats) = http(server.addr(), "GET", "/stats", "");
        assert_eq!(status, 200);
        assert!(stats.contains("\"sampler_table_hits\":1"), "{stats}");
        assert!(stats.contains("\"sampler_table_misses\":1"), "{stats}");
        assert!(stats.contains("\"sampler_table_entries\":1"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn error_statuses() {
        let server = start();
        // malformed JSON → 400
        let (status, _) = http(server.addr(), "POST", "/rank", "{nope");
        assert_eq!(status, 400);
        // unknown algorithm → 404
        let (status, _) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"psychic","scores":[1.0]}"#,
        );
        assert_eq!(status, 404);
        // wrong route for the algorithm's kind → 400
        let (status, _) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"borda","scores":[1.0]}"#,
        );
        assert_eq!(status, 400);
        // algorithm failure (3 groups into gr-binary) → 422
        let (status, _) = http(
            server.addr(),
            "POST",
            "/rank",
            r#"{"algorithm":"gr-binary","scores":[1.0,0.5,0.2],"groups":[0,1,2]}"#,
        );
        assert_eq!(status, 422);
        // unknown route → 404
        let (status, _) = http(server.addr(), "GET", "/nope", "");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn oversized_unterminated_header_is_rejected_not_buffered() {
        let server = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // a request line that never ends: the server must cut it off at
        // the header cap instead of buffering it forever (write just
        // past the cap, then stop, so the 400 isn't lost to a reset)
        let chunk = vec![b'A'; 20 << 10]; // 20 KiB > 16 KiB cap, no newline
        stream.write_all(b"GET /").unwrap();
        stream.write_all(&chunk).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("header line too long"), "{response}");
        server.shutdown();
    }

    #[test]
    fn pipeline_round_trip_contains_both_rankings() {
        let server = start();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/pipeline",
            r#"{"votes":[[0,1,2,3],[0,1,3,2],[1,0,2,3]],"groups":[0,0,1,1],"method":"borda","post":"mallows","theta":1.0,"samples":15,"tolerance":0.2,"seed":11}"#,
        );
        assert_eq!(status, 200, "{body}");
        for key in [
            "\"consensus\":[",
            "\"fair_ranking\":[",
            "consensus_total_kt",
            "fair_total_kt",
            "consensus_infeasible",
            "fair_infeasible",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        server.shutdown();
    }
}
