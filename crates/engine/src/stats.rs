//! Engine-wide counters and the request-latency histogram, exported
//! over `GET /stats`.

use crate::batch::JobStore;
use crate::json::Json;
use crate::tables::TableCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets: 8 exact buckets for 0–7 µs plus 4
/// sub-buckets per power of two above that, covering the full `u64`
/// range.
const BUCKETS: usize = 8 + 61 * 4;

/// Lock-free log-scale latency histogram.
///
/// Values (microseconds) land in fixed buckets: exact below 8 µs, then
/// four sub-buckets per octave (relative error ≤ 12.5 %), the same
/// bucketing idea as HdrHistogram's low-precision mode. Recording is
/// one relaxed `fetch_add` — no locks, no allocation — so every
/// HTTP worker can record on the hot path.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one latency sample.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.record_micros(micros);
    }

    /// Record one latency sample, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`) in microseconds; 0 when
    /// nothing has been recorded. Accurate to the bucket resolution
    /// (≤ 12.5 % above 8 µs).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_midpoint(idx);
            }
        }
        bucket_midpoint(BUCKETS - 1)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // ≥ 3
        let sub = ((v >> (exp - 2)) & 0b11) as usize;
        8 + (exp - 3) * 4 + sub
    }
}

/// Midpoint of a bucket's value range — the reported quantile value.
fn bucket_midpoint(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64
    } else {
        let exp = 3 + (idx - 8) / 4;
        let sub = ((idx - 8) % 4) as u64;
        let lower = (1u64 << exp) + (sub << (exp - 2));
        lower + (1u64 << (exp - 2)) / 2
    }
}

/// Monotonic counters shared by the engine and HTTP layer. All loads
/// and stores are `Relaxed`: the counters are advisory telemetry, not
/// synchronization points.
pub struct EngineStats {
    started: Instant,
    /// Jobs served straight from the LRU cache.
    pub cache_hits: AtomicU64,
    /// Jobs that had to be executed.
    pub cache_misses: AtomicU64,
    /// Jobs completed successfully on a worker.
    pub chunks_executed: AtomicU64,
    /// Jobs whose algorithm returned an error.
    pub chunks_failed: AtomicU64,
    /// Submissions coalesced onto an identical in-flight job.
    pub chunks_coalesced: AtomicU64,
    /// Jobs rejected because the queue was full.
    pub queue_rejections: AtomicU64,
    /// HTTP requests parsed (all routes; with keep-alive one
    /// connection can contribute many).
    pub http_requests: AtomicU64,
    /// HTTP responses with a 4xx/5xx status.
    pub http_errors: AtomicU64,
    /// Connections accepted by the listener.
    pub connections: AtomicU64,
    /// Connections shed with `503` + `Retry-After` because the
    /// pending-connection queue was full (or a legacy-mode thread
    /// could not be spawned).
    pub rejected_connections: AtomicU64,
    /// Per-request service latency (request parsed → response
    /// written).
    pub latency: LatencyHistogram,
}

impl EngineStats {
    /// Fresh counters; uptime starts now.
    pub fn new() -> Self {
        EngineStats {
            started: Instant::now(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            chunks_executed: AtomicU64::new(0),
            chunks_failed: AtomicU64::new(0),
            chunks_coalesced: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as the `GET /stats` JSON body. The sampler-table cache
    /// and the batch-job store keep their own counters (they are
    /// shared below the chunk layer), so they are read here rather
    /// than mirrored.
    pub fn to_json(
        &self,
        cache_len: usize,
        cache_capacity: usize,
        workers: usize,
        tables: &TableCache,
        jobs: &JobStore,
    ) -> Json {
        let read = |c: &AtomicU64| Json::Number(c.load(Ordering::Relaxed) as f64);
        let (jobs_queued, jobs_running, jobs_completed, jobs_failed, jobs_cancelled, high_water) =
            jobs.counters();
        Json::object(vec![
            (
                "uptime_seconds",
                Json::Number(self.started.elapsed().as_secs_f64()),
            ),
            ("workers", Json::Number(workers as f64)),
            ("cache_hits", read(&self.cache_hits)),
            ("cache_misses", read(&self.cache_misses)),
            ("cache_entries", Json::Number(cache_len as f64)),
            ("cache_capacity", Json::Number(cache_capacity as f64)),
            ("sampler_table_hits", Json::Number(tables.hits() as f64)),
            ("sampler_table_misses", Json::Number(tables.misses() as f64)),
            ("sampler_table_entries", Json::Number(tables.len() as f64)),
            ("chunks_executed", read(&self.chunks_executed)),
            ("chunks_failed", read(&self.chunks_failed)),
            ("chunks_coalesced", read(&self.chunks_coalesced)),
            ("queue_rejections", read(&self.queue_rejections)),
            ("jobs_queued", Json::Number(jobs_queued as f64)),
            ("jobs_running", Json::Number(jobs_running as f64)),
            ("jobs_completed", Json::Number(jobs_completed as f64)),
            ("jobs_failed", Json::Number(jobs_failed as f64)),
            ("jobs_cancelled", Json::Number(jobs_cancelled as f64)),
            ("jobs_queue_high_water", Json::Number(high_water as f64)),
            ("jobs_stored", Json::Number(jobs.len() as f64)),
            ("http_requests", read(&self.http_requests)),
            ("http_errors", read(&self.http_errors)),
            ("connections", read(&self.connections)),
            ("rejected_connections", read(&self.rejected_connections)),
            (
                "latency_p50_us",
                Json::Number(self.latency.quantile_micros(0.50) as f64),
            ),
            (
                "latency_p99_us",
                Json::Number(self.latency.quantile_micros(0.99) as f64),
            ),
        ])
    }
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_appear_in_json() {
        let s = EngineStats::new();
        EngineStats::bump(&s.cache_hits);
        EngineStats::bump(&s.cache_hits);
        EngineStats::bump(&s.cache_misses);
        EngineStats::bump(&s.rejected_connections);
        s.latency.record_micros(100);
        let tables = TableCache::new(8);
        tables.get_or_build(10, 1.0).unwrap();
        tables.get_or_build(10, 1.0).unwrap();
        let jobs = JobStore::new(4);
        let json = s.to_json(5, 100, 4, &tables, &jobs).to_string();
        assert!(json.contains("\"cache_hits\":2"), "{json}");
        assert!(json.contains("\"cache_misses\":1"), "{json}");
        assert!(json.contains("\"cache_entries\":5"), "{json}");
        assert!(json.contains("\"sampler_table_hits\":1"), "{json}");
        assert!(json.contains("\"sampler_table_misses\":1"), "{json}");
        assert!(json.contains("\"sampler_table_entries\":1"), "{json}");
        assert!(json.contains("\"workers\":4"), "{json}");
        assert!(json.contains("\"jobs_queued\":0"), "{json}");
        assert!(json.contains("\"jobs_running\":0"), "{json}");
        assert!(json.contains("\"jobs_completed\":0"), "{json}");
        assert!(json.contains("\"jobs_failed\":0"), "{json}");
        assert!(json.contains("\"jobs_cancelled\":0"), "{json}");
        assert!(json.contains("\"jobs_queue_high_water\":0"), "{json}");
        assert!(json.contains("\"rejected_connections\":1"), "{json}");
        assert!(json.contains("\"latency_p50_us\":"), "{json}");
        assert!(json.contains("\"latency_p99_us\":"), "{json}");
    }

    #[test]
    fn histogram_buckets_are_monotone_and_total() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        for v in [0u64, 1, 7, 8, 100, 1_000, 65_000, u64::MAX] {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 8);
        // quantiles are non-decreasing in q
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_micros(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn histogram_quantiles_track_known_distribution() {
        let h = LatencyHistogram::new();
        // 99 samples at ~100 µs, 1 at ~10 ms
        for _ in 0..99 {
            h.record_micros(100);
        }
        h.record_micros(10_000);
        let p50 = h.quantile_micros(0.50);
        let p99 = h.quantile_micros(0.99);
        let p999 = h.quantile_micros(0.999);
        assert!((88..=113).contains(&p50), "p50 = {p50}");
        assert!((88..=113).contains(&p99), "p99 = {p99}");
        assert!((8_800..=11_300).contains(&p999), "p99.9 = {p999}");
    }

    #[test]
    fn bucket_index_matches_midpoint_ranges() {
        // every recorded value must land in a bucket whose midpoint is
        // within 12.5 % of it (above the exact range)
        for v in [8u64, 15, 16, 100, 999, 12_345, 1 << 40] {
            let mid = bucket_midpoint(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.125, "v = {v}, midpoint = {mid}, err = {err}");
        }
        for v in 0..8u64 {
            assert_eq!(bucket_midpoint(bucket_index(v)), v);
        }
    }
}
