//! Engine-wide observability: counters, gauges and lock-free latency
//! histograms, exported as JSON over `GET /stats` and as Prometheus
//! text format over `GET /metrics`.
//!
//! The module is organized as a small labeled metrics registry:
//!
//! * [`LatencyHistogram`] — the lock-free log-scale histogram used for
//!   the global, per-route and per-algorithm latency series, with
//!   cumulative-bucket export ([`LatencyHistogram::cumulative_le`])
//!   for the Prometheus `_bucket{le=…}` convention;
//! * [`EngineStats`] — the engine's counter block, including one
//!   histogram per [`RouteClass`];
//! * [`MetricFamily`] / [`render_prometheus`] — the exposition-format
//!   renderer: `# HELP`/`# TYPE` headers, exact `u64` values (no `f64`
//!   round-trip, so counters above 2^53 render digit-exact), labeled
//!   series, and cumulative histogram buckets;
//! * [`validate_prometheus_text`] — a strict checker used by the
//!   integration tests and the CI scrape step.

use crate::batch::JobStore;
use crate::json::Json;
use crate::tables::TableCache;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets: 8 exact buckets for 0–7 µs plus 4
/// sub-buckets per power of two above that, covering the full `u64`
/// range.
const BUCKETS: usize = 8 + 61 * 4;

/// Lock-free log-scale latency histogram.
///
/// Values (microseconds) land in fixed buckets: exact below 8 µs, then
/// four sub-buckets per octave (relative error ≤ 12.5 %), the same
/// bucketing idea as HdrHistogram's low-precision mode. Recording is
/// one relaxed `fetch_add` — no locks, no allocation — so every
/// HTTP worker can record on the hot path.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of every recorded value (µs), for the Prometheus `_sum`
    /// series.
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Record one latency sample.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.record_micros(micros);
    }

    /// Record one latency sample, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Sum of every recorded value, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`) in microseconds; 0 when
    /// nothing has been recorded. Accurate to the bucket resolution
    /// (≤ 12.5 % above 8 µs).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_midpoint(idx);
            }
        }
        bucket_midpoint(BUCKETS - 1)
    }

    /// Cumulative counts at the given inclusive upper bounds (µs),
    /// plus the total sample count — the Prometheus
    /// `_bucket{le=…}`/`_count` export. Bounds must be ascending.
    /// Counts are monotone in `le` by construction and conservative:
    /// a bucket only counts toward a bound that covers its whole value
    /// range, so bounds of the form `2^k - 1` (the [`LATENCY_LE_US`]
    /// defaults) are **exact** — the count at such an `le` is
    /// precisely the number of samples ≤ `le`.
    pub fn cumulative_le(&self, bounds_us: &[u64]) -> (Vec<u64>, u64) {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let mut cums = Vec::with_capacity(bounds_us.len());
        let mut acc = 0u64;
        let mut idx = 0usize;
        for &le in bounds_us {
            // a bucket counts toward `le` when every value it can hold
            // is ≤ le (buckets are ordered by value range)
            while idx < BUCKETS && bucket_upper_exclusive(idx) <= le.saturating_add(1) {
                acc += counts[idx];
                idx += 1;
            }
            cums.push(acc);
        }
        let total = acc + counts[idx..].iter().sum::<u64>();
        (cums, total)
    }
}

/// Default `le` bounds (µs) for the Prometheus histogram export: 1 µs
/// to ~16.8 s in `2^k - 1` steps, so every bound lands exactly on an
/// internal bucket edge (zero approximation error in the cumulative
/// counts — see [`LatencyHistogram::cumulative_le`]).
pub const LATENCY_LE_US: [u64; 17] = [
    1, 3, 7, 15, 31, 63, 127, 255, 511, 1023, 4095, 16383, 65535, 262143, 1048575, 4194303,
    16777215,
];

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // ≥ 3
        let sub = ((v >> (exp - 2)) & 0b11) as usize;
        8 + (exp - 3) * 4 + sub
    }
}

/// Midpoint of a bucket's value range — the reported quantile value.
fn bucket_midpoint(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64
    } else {
        let exp = 3 + (idx - 8) / 4;
        let sub = ((idx - 8) % 4) as u64;
        let lower = (1u64 << exp) + (sub << (exp - 2));
        lower + (1u64 << (exp - 2)) / 2
    }
}

/// Exclusive upper edge of a bucket's value range.
fn bucket_upper_exclusive(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64 + 1
    } else {
        let exp = 3 + (idx - 8) / 4;
        let sub = ((idx - 8) % 4) as u64;
        let lower = (1u64 << exp) + (sub << (exp - 2));
        lower.saturating_add(1u64 << (exp - 2))
    }
}

/// HTTP routes tracked with their own latency histograms, the `route`
/// label of `fairrank_http_request_duration_us` in `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteClass {
    /// `POST /rank`
    Rank,
    /// `POST /aggregate`
    Aggregate,
    /// `POST /pipeline`
    Pipeline,
    /// `POST /jobs`
    JobsSubmit,
    /// `GET /jobs/{id}`
    JobsGet,
    /// `DELETE /jobs/{id}`
    JobsCancel,
    /// `GET /healthz`
    Healthz,
    /// `GET /readyz`
    Readyz,
    /// `GET /stats`
    Stats,
    /// `GET /metrics`
    Metrics,
    /// `GET /debug/traces`
    DebugTraces,
    /// Anything else (404s, bad methods, malformed requests).
    Other,
}

impl RouteClass {
    /// Every route class, in export order.
    pub const ALL: [RouteClass; 12] = [
        RouteClass::Rank,
        RouteClass::Aggregate,
        RouteClass::Pipeline,
        RouteClass::JobsSubmit,
        RouteClass::JobsGet,
        RouteClass::JobsCancel,
        RouteClass::Healthz,
        RouteClass::Readyz,
        RouteClass::Stats,
        RouteClass::Metrics,
        RouteClass::DebugTraces,
        RouteClass::Other,
    ];

    /// The `route` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            RouteClass::Rank => "rank",
            RouteClass::Aggregate => "aggregate",
            RouteClass::Pipeline => "pipeline",
            RouteClass::JobsSubmit => "jobs_submit",
            RouteClass::JobsGet => "jobs_get",
            RouteClass::JobsCancel => "jobs_cancel",
            RouteClass::Healthz => "healthz",
            RouteClass::Readyz => "readyz",
            RouteClass::Stats => "stats",
            RouteClass::Metrics => "metrics",
            RouteClass::DebugTraces => "debug_traces",
            RouteClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        RouteClass::ALL
            .iter()
            .position(|&r| r == self)
            .expect("ALL covers every variant")
    }
}

/// Where a chunk submission came from — the `route` label of the
/// `fairrank_queue_wait_us` and `fairrank_service_us` histograms in
/// `GET /metrics`. Batch chunks get their own label (they share the
/// worker pool with synchronous requests but arrive via `/jobs`), and
/// direct library callers of [`Engine::submit`] are kept apart from
/// HTTP traffic.
///
/// [`Engine::submit`]: crate::Engine::submit
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOrigin {
    /// `POST /rank`
    Rank,
    /// `POST /aggregate`
    Aggregate,
    /// `POST /pipeline`
    Pipeline,
    /// A chunk of an asynchronous `/jobs` batch.
    Batch,
    /// A library caller outside the HTTP server.
    Direct,
}

impl JobOrigin {
    /// Every origin, in export order.
    pub const ALL: [JobOrigin; 5] = [
        JobOrigin::Rank,
        JobOrigin::Aggregate,
        JobOrigin::Pipeline,
        JobOrigin::Batch,
        JobOrigin::Direct,
    ];

    /// The `route` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            JobOrigin::Rank => "rank",
            JobOrigin::Aggregate => "aggregate",
            JobOrigin::Pipeline => "pipeline",
            JobOrigin::Batch => "batch",
            JobOrigin::Direct => "direct",
        }
    }

    fn index(self) -> usize {
        JobOrigin::ALL
            .iter()
            .position(|&o| o == self)
            .expect("ALL covers every variant")
    }
}

/// Monotonic counters shared by the engine and HTTP layer. All loads
/// and stores are `Relaxed`: the counters are advisory telemetry, not
/// synchronization points.
pub struct EngineStats {
    started: Instant,
    /// Jobs served straight from the LRU cache.
    pub cache_hits: AtomicU64,
    /// Jobs that had to be executed.
    pub cache_misses: AtomicU64,
    /// Jobs completed successfully on a worker.
    pub chunks_executed: AtomicU64,
    /// Jobs whose algorithm returned an error.
    pub chunks_failed: AtomicU64,
    /// Mallows samples dropped by the ranker's exact early-abandon
    /// bound before full evaluation (aggregated from each rank job's
    /// `criterion_samples_abandoned` metric).
    pub criterion_samples_abandoned: AtomicU64,
    /// Submissions coalesced onto an identical in-flight job.
    pub chunks_coalesced: AtomicU64,
    /// Jobs rejected because the queue was full.
    pub queue_rejections: AtomicU64,
    /// HTTP requests parsed (all routes; with keep-alive one
    /// connection can contribute many).
    pub http_requests: AtomicU64,
    /// HTTP responses with a 4xx/5xx status.
    pub http_errors: AtomicU64,
    /// Connections accepted by the listener.
    pub connections: AtomicU64,
    /// Connections shed with `503` + `Retry-After` because the
    /// pending-connection queue was full (or a legacy-mode thread
    /// could not be spawned).
    pub rejected_connections: AtomicU64,
    /// Per-request service latency (request parsed → response
    /// written).
    pub latency: LatencyHistogram,
    /// Per-route service latency, indexed by [`RouteClass`].
    route_latency: [LatencyHistogram; RouteClass::ALL.len()],
    /// Time chunks sat in the bounded worker-pool queue, indexed by
    /// [`JobOrigin`] (measured where the pool dequeues).
    queue_wait: [LatencyHistogram; JobOrigin::ALL.len()],
    /// `Algorithm::run` execution time, indexed by [`JobOrigin`].
    service: [LatencyHistogram; JobOrigin::ALL.len()],
}

impl EngineStats {
    /// Fresh counters; uptime starts now.
    pub fn new() -> Self {
        EngineStats {
            started: Instant::now(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            chunks_executed: AtomicU64::new(0),
            chunks_failed: AtomicU64::new(0),
            criterion_samples_abandoned: AtomicU64::new(0),
            chunks_coalesced: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            route_latency: std::array::from_fn(|_| LatencyHistogram::new()),
            queue_wait: std::array::from_fn(|_| LatencyHistogram::new()),
            service: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The latency histogram of one route.
    pub fn route_latency(&self, route: RouteClass) -> &LatencyHistogram {
        &self.route_latency[route.index()]
    }

    /// The queue-wait histogram of one submission origin.
    pub fn queue_wait(&self, origin: JobOrigin) -> &LatencyHistogram {
        &self.queue_wait[origin.index()]
    }

    /// The service-time (`Algorithm::run`) histogram of one origin.
    pub fn service(&self, origin: JobOrigin) -> &LatencyHistogram {
        &self.service[origin.index()]
    }

    /// Seconds since the engine was built.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Snapshot as the `GET /stats` JSON body. The sampler-table cache
    /// and the batch-job store keep their own counters (they are
    /// shared below the chunk layer), so they are read here rather
    /// than mirrored.
    pub fn to_json(
        &self,
        cache_len: usize,
        cache_capacity: usize,
        workers: usize,
        tables: &TableCache,
        jobs: &JobStore,
    ) -> Json {
        // counters go through `Json::Integer`, not `Json::Number`:
        // the f64 path would silently round values above 2^53
        let read = |c: &AtomicU64| Json::Integer(c.load(Ordering::Relaxed));
        let int = |v: u64| Json::Integer(v);
        let (jobs_queued, jobs_running, jobs_completed, jobs_failed, jobs_cancelled, high_water) =
            jobs.counters();
        Json::object(vec![
            ("uptime_seconds", Json::Number(self.uptime_seconds())),
            ("workers", int(workers as u64)),
            ("cache_hits", read(&self.cache_hits)),
            ("cache_misses", read(&self.cache_misses)),
            ("cache_entries", int(cache_len as u64)),
            ("cache_capacity", int(cache_capacity as u64)),
            ("sampler_table_hits", int(tables.hits())),
            ("sampler_table_misses", int(tables.misses())),
            ("sampler_table_entries", int(tables.len() as u64)),
            ("chunks_executed", read(&self.chunks_executed)),
            ("chunks_failed", read(&self.chunks_failed)),
            (
                "criterion_samples_abandoned",
                read(&self.criterion_samples_abandoned),
            ),
            ("chunks_coalesced", read(&self.chunks_coalesced)),
            ("queue_rejections", read(&self.queue_rejections)),
            ("jobs_queued", int(jobs_queued)),
            ("jobs_running", int(jobs_running)),
            ("jobs_completed", int(jobs_completed)),
            ("jobs_failed", int(jobs_failed)),
            ("jobs_cancelled", int(jobs_cancelled)),
            ("jobs_queue_high_water", int(high_water)),
            ("jobs_stored", int(jobs.len() as u64)),
            ("http_requests", read(&self.http_requests)),
            ("http_errors", read(&self.http_errors)),
            ("connections", read(&self.connections)),
            ("rejected_connections", read(&self.rejected_connections)),
            ("latency_p50_us", int(self.latency.quantile_micros(0.50))),
            ("latency_p99_us", int(self.latency.quantile_micros(0.99))),
        ])
    }
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats::new()
    }
}

/// Value of one exported metric sample.
pub enum MetricValue<'a> {
    /// Monotonic counter. Rendered digit-exact (no `f64` round-trip),
    /// so values above 2^53 survive.
    Counter(u64),
    /// Point-in-time integer gauge, also rendered digit-exact.
    Gauge(u64),
    /// Point-in-time float gauge (e.g. uptime seconds).
    GaugeF64(f64),
    /// A latency histogram, exported as cumulative `_bucket{le=…}`
    /// series plus `_sum` and `_count` (all in microseconds).
    Histogram(&'a LatencyHistogram),
}

impl MetricValue<'_> {
    /// The Prometheus `# TYPE` keyword for this value.
    fn type_str(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) | MetricValue::GaugeF64(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One labeled sample inside a [`MetricFamily`].
pub struct MetricSample<'a> {
    /// `label="value"` pairs rendered inside `{…}` (empty for
    /// unlabeled metrics).
    pub labels: Vec<(&'static str, &'a str)>,
    /// The sample's value.
    pub value: MetricValue<'a>,
}

/// A named family of samples sharing one `# HELP`/`# TYPE` header —
/// the unit of the labeled metrics registry behind `GET /metrics`.
pub struct MetricFamily<'a> {
    /// Metric name (`fairrank_…`).
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
    /// The labeled samples. Every sample must be the same value kind.
    pub samples: Vec<MetricSample<'a>>,
}

impl<'a> MetricFamily<'a> {
    /// A single-sample unlabeled family.
    pub fn scalar(name: &'static str, help: &'static str, value: MetricValue<'a>) -> Self {
        MetricFamily {
            name,
            help,
            samples: vec![MetricSample {
                labels: Vec::new(),
                value,
            }],
        }
    }
}

/// Append `label="value"` pairs (plus an optional trailing `le`) as a
/// `{…}` block; nothing when there are no labels at all.
fn write_label_block(out: &mut String, labels: &[(&str, &str)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (name, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{name}=\"");
        for c in value.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

/// Render the families as Prometheus text exposition format
/// (`# HELP`/`# TYPE` headers, exact integer values, cumulative
/// histogram buckets ending in `+Inf`), appending to `out`.
pub fn render_prometheus(families: &[MetricFamily<'_>], out: &mut String) {
    for family in families {
        let Some(first) = family.samples.first() else {
            continue;
        };
        let name = family.name;
        let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
        let _ = writeln!(out, "# TYPE {name} {}", first.value.type_str());
        for sample in &family.samples {
            debug_assert_eq!(
                sample.value.type_str(),
                first.value.type_str(),
                "family {name} mixes metric kinds"
            );
            match &sample.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(name);
                    write_label_block(out, &sample.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::GaugeF64(v) => {
                    out.push_str(name);
                    write_label_block(out, &sample.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Histogram(histogram) => {
                    let (cums, total) = histogram.cumulative_le(&LATENCY_LE_US);
                    let mut bound = String::new();
                    for (le, cum) in LATENCY_LE_US.iter().zip(&cums) {
                        bound.clear();
                        let _ = write!(bound, "{le}");
                        let _ = write!(out, "{name}_bucket");
                        write_label_block(out, &sample.labels, Some(&bound));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{name}_bucket");
                    write_label_block(out, &sample.labels, Some("+Inf"));
                    let _ = writeln!(out, " {total}");
                    let _ = write!(out, "{name}_sum");
                    write_label_block(out, &sample.labels, None);
                    let _ = writeln!(out, " {}", histogram.sum_micros());
                    let _ = write!(out, "{name}_count");
                    write_label_block(out, &sample.labels, None);
                    let _ = writeln!(out, " {total}");
                }
            }
        }
    }
}

/// Strictly validate a Prometheus text exposition document: every
/// sample needs a preceding `# HELP` and `# TYPE` for its family,
/// values must parse, histogram buckets must be cumulative (monotone
/// in order of appearance), and every histogram series needs an
/// `le="+Inf"` bucket equal to its `_count`. Used by the integration
/// tests and the CI scrape check.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    use std::collections::{HashMap, HashSet};

    #[derive(Default)]
    struct HistogramSeries {
        last_cum: Option<f64>,
        inf: Option<f64>,
        count: Option<f64>,
        has_sum: bool,
    }

    let mut helps: HashSet<&str> = HashSet::new();
    let mut types: HashMap<&str, &str> = HashMap::new();
    let mut histograms: HashMap<String, HistogramSeries> = HashMap::new();

    for (index, line) in text.lines().enumerate() {
        let n = index + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), Some(_)) => {
                    helps.insert(name);
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return Err(format!("line {n}: unknown TYPE `{kind}`"));
                    }
                    if !helps.contains(name) {
                        return Err(format!("line {n}: TYPE for `{name}` without HELP"));
                    }
                    types.insert(name, kind);
                }
                _ => return Err(format!("line {n}: malformed comment `{line}`")),
            }
            continue;
        }

        // sample line: `name[{labels}] value`
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no value in `{line}`"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {n}: non-numeric value `{value}`"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label block"))?;
                (name, labels)
            }
            None => (series, ""),
        };

        // resolve the family: histogram sample suffixes map back to
        // the declared histogram name
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stripped = name.strip_suffix(suffix)?;
                (types.get(stripped) == Some(&"histogram")).then_some(stripped)
            })
            .unwrap_or(name);
        let Some(kind) = types.get(family) else {
            return Err(format!("line {n}: sample `{name}` has no TYPE"));
        };

        if *kind == "histogram" {
            // key histogram series by family + labels minus `le`
            let base_labels: Vec<&str> = labels
                .split(',')
                .filter(|l| !l.is_empty() && !l.starts_with("le="))
                .collect();
            let key = format!("{family}|{}", base_labels.join(","));
            let series = histograms.entry(key).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .split(',')
                    .find_map(|l| l.strip_prefix("le="))
                    .ok_or_else(|| format!("line {n}: bucket without le label"))?
                    .trim_matches('"');
                if let Some(last) = series.last_cum {
                    if value < last {
                        return Err(format!(
                            "line {n}: bucket le={le} count {value} < previous {last}"
                        ));
                    }
                }
                series.last_cum = Some(value);
                if le == "+Inf" {
                    series.inf = Some(value);
                }
            } else if name.ends_with("_sum") {
                series.has_sum = true;
            } else {
                series.count = Some(value);
            }
        }
    }

    for (key, series) in &histograms {
        let inf = series
            .inf
            .ok_or_else(|| format!("histogram `{key}` has no +Inf bucket"))?;
        let count = series
            .count
            .ok_or_else(|| format!("histogram `{key}` has no _count"))?;
        if inf != count {
            return Err(format!(
                "histogram `{key}`: +Inf bucket {inf} != _count {count}"
            ));
        }
        if !series.has_sum {
            return Err(format!("histogram `{key}` has no _sum"));
        }
    }
    Ok(())
}

/// Point-in-time process self-gauges for `GET /metrics`.
pub struct ProcessMetrics {
    /// Resident set size in bytes (`VmRSS` from `/proc/self/status`).
    pub rss_bytes: u64,
    /// Open file descriptors (`/proc/self/fd` entries, including the
    /// descriptor used to list them).
    pub open_fds: u64,
}

/// Read RSS and fd-count from `/proc/self`. Linux-only: on other
/// platforms (and on any read/parse failure) this returns `None` and
/// the corresponding metric families are simply absent.
#[cfg(target_os = "linux")]
pub fn process_self_metrics() -> Option<ProcessMetrics> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let rss_kb: u64 = status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))?
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    let open_fds = std::fs::read_dir("/proc/self/fd").ok()?.count() as u64;
    Some(ProcessMetrics {
        rss_bytes: rss_kb * 1024,
        open_fds,
    })
}

/// Read RSS and fd-count from `/proc/self` (always `None` off Linux).
#[cfg(not(target_os = "linux"))]
pub fn process_self_metrics() -> Option<ProcessMetrics> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_appear_in_json() {
        let s = EngineStats::new();
        EngineStats::bump(&s.cache_hits);
        EngineStats::bump(&s.cache_hits);
        EngineStats::bump(&s.cache_misses);
        EngineStats::bump(&s.rejected_connections);
        s.latency.record_micros(100);
        let tables = TableCache::new(8);
        tables.get_or_build(10, 1.0).unwrap();
        tables.get_or_build(10, 1.0).unwrap();
        let jobs = JobStore::new(4);
        let json = s.to_json(5, 100, 4, &tables, &jobs).to_string();
        assert!(json.contains("\"cache_hits\":2"), "{json}");
        assert!(json.contains("\"cache_misses\":1"), "{json}");
        assert!(json.contains("\"cache_entries\":5"), "{json}");
        assert!(json.contains("\"sampler_table_hits\":1"), "{json}");
        assert!(json.contains("\"sampler_table_misses\":1"), "{json}");
        assert!(json.contains("\"sampler_table_entries\":1"), "{json}");
        assert!(json.contains("\"workers\":4"), "{json}");
        assert!(json.contains("\"jobs_queued\":0"), "{json}");
        assert!(json.contains("\"jobs_running\":0"), "{json}");
        assert!(json.contains("\"jobs_completed\":0"), "{json}");
        assert!(json.contains("\"jobs_failed\":0"), "{json}");
        assert!(json.contains("\"jobs_cancelled\":0"), "{json}");
        assert!(json.contains("\"jobs_queue_high_water\":0"), "{json}");
        assert!(json.contains("\"rejected_connections\":1"), "{json}");
        assert!(json.contains("\"latency_p50_us\":"), "{json}");
        assert!(json.contains("\"latency_p99_us\":"), "{json}");
    }

    #[test]
    fn histogram_buckets_are_monotone_and_total() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        for v in [0u64, 1, 7, 8, 100, 1_000, 65_000, u64::MAX] {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 8);
        // quantiles are non-decreasing in q
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_micros(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn histogram_quantiles_track_known_distribution() {
        let h = LatencyHistogram::new();
        // 99 samples at ~100 µs, 1 at ~10 ms
        for _ in 0..99 {
            h.record_micros(100);
        }
        h.record_micros(10_000);
        let p50 = h.quantile_micros(0.50);
        let p99 = h.quantile_micros(0.99);
        let p999 = h.quantile_micros(0.999);
        assert!((88..=113).contains(&p50), "p50 = {p50}");
        assert!((88..=113).contains(&p99), "p99 = {p99}");
        assert!((8_800..=11_300).contains(&p999), "p99.9 = {p999}");
    }

    #[test]
    fn cumulative_counts_are_exact_at_the_default_bounds() {
        let h = LatencyHistogram::new();
        let samples = [0u64, 1, 3, 4, 7, 8, 100, 1000, 100_000, 10_000_000];
        for v in samples {
            h.record_micros(v);
        }
        let (cums, total) = h.cumulative_le(&LATENCY_LE_US);
        assert_eq!(total, samples.len() as u64);
        for (le, cum) in LATENCY_LE_US.iter().zip(&cums) {
            let expected = samples.iter().filter(|&&v| v <= *le).count() as u64;
            assert_eq!(*cum, expected, "le={le}");
        }
        for pair in cums.windows(2) {
            assert!(pair[0] <= pair[1], "cumulative counts must be monotone");
        }
        assert_eq!(h.sum_micros(), samples.iter().sum::<u64>());
    }

    #[test]
    fn render_prometheus_is_valid_and_digit_exact_above_2_pow_53() {
        let histogram = LatencyHistogram::new();
        histogram.record_micros(5);
        histogram.record_micros(900);
        let big = (1u64 << 53) + 3;
        let families = [
            MetricFamily::scalar("t_requests_total", "requests", MetricValue::Counter(big)),
            MetricFamily::scalar("t_depth", "queue depth", MetricValue::Gauge(7)),
            MetricFamily {
                name: "t_latency_us",
                help: "latency",
                samples: vec![MetricSample {
                    labels: vec![("route", "rank")],
                    value: MetricValue::Histogram(&histogram),
                }],
            },
        ];
        let mut out = String::new();
        render_prometheus(&families, &mut out);
        validate_prometheus_text(&out).expect(&out);
        // the counter renders digit-exact — the f64 path would have
        // produced ...744 instead of ...995
        assert!(out.contains("t_requests_total 9007199254740995\n"), "{out}");
        assert!(out.contains("# TYPE t_requests_total counter"), "{out}");
        assert!(out.contains("# HELP t_depth queue depth"), "{out}");
        assert!(
            out.contains("t_latency_us_bucket{route=\"rank\",le=\"7\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("t_latency_us_bucket{route=\"rank\",le=\"+Inf\"} 2"),
            "{out}"
        );
        assert!(
            out.contains("t_latency_us_sum{route=\"rank\"} 905"),
            "{out}"
        );
        assert!(
            out.contains("t_latency_us_count{route=\"rank\"} 2"),
            "{out}"
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        // sample without TYPE
        assert!(validate_prometheus_text("orphan 1\n").is_err());
        // TYPE without HELP
        assert!(validate_prometheus_text("# TYPE x counter\nx 1\n").is_err());
        // non-monotone buckets
        let text = "# HELP h l\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate_prometheus_text(text).is_err());
        // +Inf disagreeing with _count
        let text = "# HELP h l\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n";
        assert!(validate_prometheus_text(text).is_err());
        // non-numeric value
        assert!(validate_prometheus_text("# HELP g l\n# TYPE g gauge\ng nope\n").is_err());
        // a correct document passes
        let text = "# HELP g l\n# TYPE g gauge\ng{a=\"b\"} 2\n";
        validate_prometheus_text(text).unwrap();
    }

    #[test]
    fn route_classes_have_unique_labels() {
        let mut labels: Vec<&str> = RouteClass::ALL.iter().map(|r| r.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), RouteClass::ALL.len());
        // index() is a bijection onto 0..len
        for (i, route) in RouteClass::ALL.iter().enumerate() {
            assert_eq!(route.index(), i);
        }
    }

    #[test]
    fn job_origins_have_unique_labels() {
        let mut labels: Vec<&str> = JobOrigin::ALL.iter().map(|o| o.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), JobOrigin::ALL.len());
        for (i, origin) in JobOrigin::ALL.iter().enumerate() {
            assert_eq!(origin.index(), i);
        }
    }

    #[test]
    fn origin_histograms_record_independently() {
        let s = EngineStats::new();
        s.queue_wait(JobOrigin::Rank).record_micros(10);
        s.service(JobOrigin::Rank).record_micros(500);
        s.service(JobOrigin::Batch).record_micros(900);
        assert_eq!(s.queue_wait(JobOrigin::Rank).count(), 1);
        assert_eq!(s.queue_wait(JobOrigin::Batch).count(), 0);
        assert_eq!(s.service(JobOrigin::Rank).sum_micros(), 500);
        assert_eq!(s.service(JobOrigin::Batch).sum_micros(), 900);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn process_self_metrics_read_proc() {
        let m = process_self_metrics().expect("/proc/self should be readable on Linux");
        assert!(m.rss_bytes > 0);
        assert!(m.open_fds > 0);
    }

    #[test]
    fn bucket_index_matches_midpoint_ranges() {
        // every recorded value must land in a bucket whose midpoint is
        // within 12.5 % of it (above the exact range)
        for v in [8u64, 15, 16, 100, 999, 12_345, 1 << 40] {
            let mid = bucket_midpoint(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.125, "v = {v}, midpoint = {mid}, err = {err}");
        }
        for v in 0..8u64 {
            assert_eq!(bucket_midpoint(bucket_index(v)), v);
        }
    }
}
