//! Engine-wide counters, exported over `GET /stats`.

use crate::json::Json;
use crate::tables::TableCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters shared by the engine and HTTP layer. All loads
/// and stores are `Relaxed`: the counters are advisory telemetry, not
/// synchronization points.
pub struct EngineStats {
    started: Instant,
    /// Jobs served straight from the LRU cache.
    pub cache_hits: AtomicU64,
    /// Jobs that had to be executed.
    pub cache_misses: AtomicU64,
    /// Jobs completed successfully on a worker.
    pub jobs_executed: AtomicU64,
    /// Jobs whose algorithm returned an error.
    pub jobs_failed: AtomicU64,
    /// Submissions coalesced onto an identical in-flight job.
    pub jobs_coalesced: AtomicU64,
    /// Jobs rejected because the queue was full.
    pub queue_rejections: AtomicU64,
    /// HTTP requests accepted (all routes).
    pub http_requests: AtomicU64,
    /// HTTP responses with a 4xx/5xx status.
    pub http_errors: AtomicU64,
}

impl EngineStats {
    /// Fresh counters; uptime starts now.
    pub fn new() -> Self {
        EngineStats {
            started: Instant::now(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_coalesced: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as the `GET /stats` JSON body. The sampler-table cache
    /// keeps its own counters (it is shared below the job layer), so it
    /// is read here rather than mirrored.
    pub fn to_json(
        &self,
        cache_len: usize,
        cache_capacity: usize,
        workers: usize,
        tables: &TableCache,
    ) -> Json {
        let read = |c: &AtomicU64| Json::Number(c.load(Ordering::Relaxed) as f64);
        Json::object(vec![
            (
                "uptime_seconds",
                Json::Number(self.started.elapsed().as_secs_f64()),
            ),
            ("workers", Json::Number(workers as f64)),
            ("cache_hits", read(&self.cache_hits)),
            ("cache_misses", read(&self.cache_misses)),
            ("cache_entries", Json::Number(cache_len as f64)),
            ("cache_capacity", Json::Number(cache_capacity as f64)),
            ("sampler_table_hits", Json::Number(tables.hits() as f64)),
            ("sampler_table_misses", Json::Number(tables.misses() as f64)),
            ("sampler_table_entries", Json::Number(tables.len() as f64)),
            ("jobs_executed", read(&self.jobs_executed)),
            ("jobs_failed", read(&self.jobs_failed)),
            ("jobs_coalesced", read(&self.jobs_coalesced)),
            ("queue_rejections", read(&self.queue_rejections)),
            ("http_requests", read(&self.http_requests)),
            ("http_errors", read(&self.http_errors)),
        ])
    }
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_appear_in_json() {
        let s = EngineStats::new();
        EngineStats::bump(&s.cache_hits);
        EngineStats::bump(&s.cache_hits);
        EngineStats::bump(&s.cache_misses);
        let tables = TableCache::new(8);
        tables.get_or_build(10, 1.0).unwrap();
        tables.get_or_build(10, 1.0).unwrap();
        let json = s.to_json(5, 100, 4, &tables).to_string();
        assert!(json.contains("\"cache_hits\":2"), "{json}");
        assert!(json.contains("\"cache_misses\":1"), "{json}");
        assert!(json.contains("\"cache_entries\":5"), "{json}");
        assert!(json.contains("\"sampler_table_hits\":1"), "{json}");
        assert!(json.contains("\"sampler_table_misses\":1"), "{json}");
        assert!(json.contains("\"sampler_table_entries\":1"), "{json}");
        assert!(json.contains("\"workers\":4"), "{json}");
    }
}
