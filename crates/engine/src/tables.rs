//! Cross-request cache of Mallows [`SamplerTables`] and the execution
//! context handed to every algorithm run.
//!
//! Algorithm 1 rebuilds its per-`(n, θ)` insertion-CDF table on every
//! call unless one is supplied; a serving engine that answers many
//! requests over the same candidate-pool size and dispersion should
//! build that table once. [`TableCache`] keys tables on exact
//! `(n, θ)` pairs next to the LRU result cache, and its hit/miss
//! counters surface in `GET /stats` as `sampler_table_hits` /
//! `sampler_table_misses`.
//!
//! Unlike the result cache, entries here are *parameter*-level, not
//! request-level: two jobs with different scores, groups or seeds still
//! share one table as long as `(n, θ)` match, so the hit rate is much
//! higher than the result cache's under diverse traffic.

use mallows_model::tables::SamplerTables;
use mallows_model::MallowsError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared, bounded cache of [`SamplerTables`] keyed on `(n, θ)`,
/// split into hash-selected shards (each behind its own mutex) so
/// concurrent lookups of different keys do not contend on one lock.
pub struct TableCache {
    capacity: usize,
    shards: Vec<Mutex<Inner>>,
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct Inner {
    map: HashMap<(usize, u64), Arc<SamplerTables>>,
    /// Insertion order for FIFO eviction. Tables are tiny (`n` floats)
    /// and cheap to rebuild, so plain FIFO is enough — no recency
    /// bookkeeping on the hot hit path.
    order: VecDeque<(usize, u64)>,
}

impl TableCache {
    /// Cache holding at most `capacity` tables (0 disables caching —
    /// every lookup builds a fresh table and counts as a miss), with a
    /// machine-appropriate shard count.
    pub fn new(capacity: usize) -> Self {
        TableCache::with_shards(capacity, crate::cache::ShardedLru::auto_shards(capacity))
    }

    /// Cache with an explicit shard count (rounded up to a power of
    /// two, at least 1). Each shard holds `ceil(capacity / shards)`
    /// entries; small caches should use one shard to keep the bound
    /// exact.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        TableCache {
            capacity,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Inner {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            mask: shards as u64 - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (usize, u64)) -> &Mutex<Inner> {
        // FNV-style fold of the two key halves, then a Fibonacci mix so
        // the shard index comes from the high bits
        let folded = (key.0 as u64)
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(key.1);
        let mixed = folded.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(mixed & self.mask) as usize]
    }

    fn per_shard_capacity(&self) -> usize {
        self.capacity.div_ceil(self.shards.len())
    }

    /// Fetch the table for `(n, theta)`, building and caching it on a
    /// miss. `θ` is keyed by its exact bit pattern.
    pub fn get_or_build(&self, n: usize, theta: f64) -> Result<Arc<SamplerTables>, MallowsError> {
        let key = (n, theta.to_bits());
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(SamplerTables::new(n, theta)?));
        }
        let shard = self.shard(key);
        {
            let inner = shard.lock().expect("table cache lock");
            if let Some(tables) = inner.map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(tables));
            }
        }
        // build outside the lock: construction is O(n) but need not
        // serialize concurrent misses on different keys
        let tables = Arc::new(SamplerTables::new(n, theta)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = shard.lock().expect("table cache lock");
        // a racing builder may have inserted an equivalent table for
        // this key already; overwriting it is harmless (same (n, θ) →
        // identical contents) and `order` keeps a single entry
        if inner.map.insert(key, Arc::clone(&tables)).is_none() {
            inner.order.push_back(key);
            if inner.order.len() > self.per_shard_capacity() {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
        Ok(tables)
    }

    /// Tables served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Tables that had to be built.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Tables currently cached (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("table cache lock").map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// Per-engine resources threaded into every [`Algorithm::run`]
/// (algorithms that need no shared state ignore it; stand-alone callers
/// use [`ExecContext::default`]).
///
/// [`Algorithm::run`]: crate::registry::Algorithm::run
#[derive(Clone)]
pub struct ExecContext {
    /// Shared sampler-table cache.
    pub tables: Arc<TableCache>,
    /// Per-job thread budget for parallel sample-batch fan-out. The
    /// engine sets this so `workers × batch_threads` stays within the
    /// machine (the logical batch split — and therefore every result —
    /// is independent of it).
    pub batch_threads: usize,
    /// Trace ID of the request (or batch chunk) this execution belongs
    /// to; 0 for untraced library calls. Algorithms may stamp it into
    /// their own diagnostics — the engine threads it here so a run is
    /// attributable to its `GET /debug/traces` entry.
    pub trace_id: u64,
}

impl ExecContext {
    /// Context backed by the given table cache and the default
    /// (whole-machine) per-job thread budget.
    pub fn new(tables: Arc<TableCache>) -> Self {
        ExecContext {
            tables,
            batch_threads: available_parallelism(),
            trace_id: 0,
        }
    }

    /// Cap the per-job fan-out thread budget (minimum 1).
    pub fn with_batch_threads(mut self, batch_threads: usize) -> Self {
        self.batch_threads = batch_threads.max(1);
        self
    }

    /// Attribute this context to a trace (the engine clones its shared
    /// context per traced execution — an `Arc` clone plus scalars, no
    /// deep copy).
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = trace_id;
        self
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::new(Arc::new(TableCache::new(64)))
    }
}

/// Detected CPU count (1 when detection fails).
pub(crate) fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss_shares_the_table() {
        let cache = TableCache::new(4);
        let a = cache.get_or_build(100, 1.0).unwrap();
        let b = cache.get_or_build(100, 1.0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_parameters_are_distinct_entries() {
        let cache = TableCache::new(4);
        cache.get_or_build(100, 1.0).unwrap();
        cache.get_or_build(100, 2.0).unwrap();
        cache.get_or_build(200, 1.0).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let cache = TableCache::new(2);
        cache.get_or_build(10, 1.0).unwrap();
        cache.get_or_build(20, 1.0).unwrap();
        cache.get_or_build(30, 1.0).unwrap(); // evicts (10, 1.0)
        assert_eq!(cache.len(), 2);
        cache.get_or_build(10, 1.0).unwrap(); // rebuilt: a miss
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = TableCache::new(0);
        cache.get_or_build(10, 1.0).unwrap();
        cache.get_or_build(10, 1.0).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
    }

    #[test]
    fn invalid_theta_propagates() {
        let cache = TableCache::new(4);
        assert!(cache.get_or_build(10, -1.0).is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn sharded_cache_shares_hits_across_shards() {
        let cache = TableCache::with_shards(16, 4);
        assert_eq!(cache.shard_count(), 4);
        for _ in 0..3 {
            for n in [10usize, 20, 30, 40, 50] {
                cache.get_or_build(n, 1.0).unwrap();
            }
        }
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 10);
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn sharded_eviction_bounds_each_shard() {
        let cache = TableCache::with_shards(8, 2); // 4 per shard
        for n in 10..60 {
            cache.get_or_build(n, 1.0).unwrap();
        }
        assert!(cache.len() <= 8, "len = {}", cache.len());
        assert!(cache.len() >= 4, "both shards should retain entries");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(TableCache::new(8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..32 {
                        let n = 50 + (t + i) % 4;
                        cache.get_or_build(n, 1.0).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.hits() + cache.misses(), 8 * 32);
        assert!(cache.len() <= 4);
    }
}
