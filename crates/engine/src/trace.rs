//! Per-request span tracing and the flight recorder behind
//! `GET /debug/traces`.
//!
//! Every parsed HTTP request (and every chunk of an asynchronous
//! `/jobs` batch) is assigned a trace ID from one process-wide atomic
//! counter. The request's life is measured as a sequence of spans —
//! accept → parse → cache-lookup → queue-wait → run → serialize →
//! write — each recorded as a microsecond duration, so the cumulative
//! prefix sums form the monotonic span timeline and their total is
//! bounded by the request's wall-clock time.
//!
//! The pieces:
//!
//! * [`Trace`] — a fixed-size, `Copy`, heap-free record of one
//!   completed request (or batch chunk): IDs, route, algorithm name in
//!   an inline buffer, status, and the span breakdown;
//! * [`SpanRecorder`] — a small block of atomics shared between the
//!   HTTP thread and the worker executing the job, so engine-side
//!   spans (cache lookup, queue wait, run) flow back to the
//!   synchronous caller without locks or allocation;
//! * [`FlightRecorder`] — two bounded tracks: a ring of the most
//!   recent N traces (slot claim is one `fetch_add`; each slot has its
//!   own lock so writers never contend with each other, only with a
//!   concurrent `/debug/traces` reader of that same slot) and the
//!   slowest N traces at or above a `--trace-slow-us` threshold
//!   (a single small lock taken only by requests that slow).
//!
//! Recording a warm-path trace performs no heap allocation — the
//! slots are preallocated at construction and [`Trace`] is `Copy` —
//! which `crates/engine/tests/alloc_audit.rs` pins.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Capacity of the inline algorithm-name buffer in a [`Trace`].
/// Longer names are truncated (on a UTF-8 boundary) — every name in
/// the standard registry fits with room to spare.
pub const TRACE_NAME_CAP: usize = 32;

/// A fixed-capacity inline string: the algorithm name of a [`Trace`]
/// without a heap allocation on the warm path.
#[derive(Clone, Copy)]
pub struct TraceStr {
    len: u8,
    bytes: [u8; TRACE_NAME_CAP],
}

impl TraceStr {
    /// Store `s`, truncating to [`TRACE_NAME_CAP`] bytes on a UTF-8
    /// character boundary.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(TRACE_NAME_CAP);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; TRACE_NAME_CAP];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        TraceStr {
            len: end as u8,
            bytes,
        }
    }

    /// The stored string.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }
}

impl Default for TraceStr {
    fn default() -> Self {
        TraceStr::new("")
    }
}

impl std::fmt::Debug for TraceStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// One completed request (or batch chunk), spans in microseconds.
///
/// `Copy` and fixed-size by design: recording into the flight
/// recorder is a plain struct copy into a preallocated slot.
#[derive(Clone, Copy, Default, Debug)]
pub struct Trace {
    /// Trace ID (unique per process run; 0 means "empty slot").
    pub id: u64,
    /// For batch chunks: the trace ID of the `POST /jobs` request
    /// that created the parent job (0 for synchronous requests).
    pub parent: u64,
    /// For batch chunks: the parent batch-job ID (0 otherwise).
    pub job: u64,
    /// For batch chunks: the chunk index within the parent job.
    pub chunk: u32,
    /// Connection number (matches the access log's `conn`; 0 for
    /// batch chunks, which run off-connection).
    pub conn: u64,
    /// Request sequence number on that connection.
    pub seq: u64,
    /// HTTP status (for chunks: 200 on success, 500 on failure).
    pub status: u16,
    /// True when the result came from the cache (or coalesced onto an
    /// identical in-flight execution).
    pub cache_hit: bool,
    /// Route label (`rank`, `jobs_submit`, …; `jobs_chunk` for batch
    /// chunks).
    pub route: &'static str,
    /// Algorithm name for submit routes and chunks; empty otherwise.
    pub algorithm: TraceStr,
    /// Request head + body parse time.
    pub parse_us: u64,
    /// Digest + result-cache lookup time.
    pub cache_us: u64,
    /// Time the chunk sat in the bounded worker-pool queue.
    pub queue_us: u64,
    /// `Algorithm::run` execution time.
    pub run_us: u64,
    /// Result-JSON serialization time.
    pub serialize_us: u64,
    /// Response write time (socket `write_all`).
    pub write_us: u64,
    /// End-to-end wall-clock time (accept of this request to response
    /// written); spans above sum to at most this.
    pub total_us: u64,
    /// Completion timestamp: microseconds since the recorder started.
    pub end_us: u64,
}

impl Trace {
    /// Append this trace as a JSON object. Batch-lineage fields
    /// (`parent`, `job`, `chunk`) appear only for chunk traces.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"id\":{},\"route\":\"", self.id);
        escape_into(self.route, out);
        out.push_str("\",\"algorithm\":\"");
        escape_into(self.algorithm.as_str(), out);
        let _ = write!(
            out,
            "\",\"status\":{},\"cache_hit\":{},\"conn\":{},\"seq\":{}",
            self.status, self.cache_hit, self.conn, self.seq
        );
        if self.job != 0 {
            let _ = write!(
                out,
                ",\"parent\":{},\"job\":{},\"chunk\":{}",
                self.parent, self.job, self.chunk
            );
        }
        let _ = write!(
            out,
            ",\"spans\":{{\"parse_us\":{},\"cache_us\":{},\"queue_us\":{},\"run_us\":{},\
             \"serialize_us\":{},\"write_us\":{}}},\"total_us\":{},\"end_us\":{}}}",
            self.parse_us,
            self.cache_us,
            self.queue_us,
            self.run_us,
            self.serialize_us,
            self.write_us,
            self.total_us,
            self.end_us
        );
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Engine-side span cells for one submission, shared between the
/// submitting thread and the worker that executes the chunk. The
/// worker stores `queue_us`/`run_us` before it publishes the result,
/// so the submitter reads settled values after `submit` returns.
///
/// The HTTP layer keeps one of these per connection scratch and
/// resets it per request, so the warm path clones an existing `Arc`
/// instead of allocating.
#[derive(Default)]
pub struct SpanRecorder {
    /// Digest + result-cache lookup (written by the submitting
    /// thread).
    pub cache_us: AtomicU64,
    /// Bounded-queue wait, measured where the pool dequeues.
    pub queue_us: AtomicU64,
    /// `Algorithm::run` wall-clock.
    pub run_us: AtomicU64,
    /// Result served from cache or coalesced onto an in-flight twin.
    pub cache_hit: AtomicBool,
}

impl SpanRecorder {
    /// Zero every cell for reuse by the next request.
    pub fn reset(&self) {
        self.cache_us.store(0, Ordering::Relaxed);
        self.queue_us.store(0, Ordering::Relaxed);
        self.run_us.store(0, Ordering::Relaxed);
        self.cache_hit.store(false, Ordering::Relaxed);
    }
}

/// A trace ID plus the span cells to fill — everything the engine
/// needs to attribute one submission to a trace.
#[derive(Clone)]
pub struct TraceHandle {
    /// The trace ID, also threaded into
    /// [`ExecContext`](crate::tables::ExecContext) for the algorithm.
    pub id: u64,
    /// Where the engine records cache/queue/run spans.
    pub spans: Arc<SpanRecorder>,
}

/// Bounded in-memory store of recent and slow traces, served as JSON
/// at `GET /debug/traces`.
pub struct FlightRecorder {
    started: Instant,
    next_id: AtomicU64,
    recorded: AtomicU64,
    /// Total slot claims; `head % recent.len()` is the next slot.
    head: AtomicU64,
    recent: Vec<Mutex<Trace>>,
    slow_threshold_us: u64,
    slow_capacity: usize,
    /// The slowest traces at/above the threshold. Locked only by
    /// requests that slow and by the debug endpoint; preallocated to
    /// `slow_capacity` so inserts never allocate.
    slow: Mutex<Vec<Trace>>,
}

impl FlightRecorder {
    /// A recorder keeping the `recent` most recent traces (minimum 1)
    /// and the `slow` slowest traces with `total_us >=
    /// slow_threshold_us`.
    pub fn new(recent: usize, slow: usize, slow_threshold_us: u64) -> Self {
        let recent = recent.max(1);
        FlightRecorder {
            started: Instant::now(),
            next_id: AtomicU64::new(1),
            recorded: AtomicU64::new(0),
            head: AtomicU64::new(0),
            recent: (0..recent).map(|_| Mutex::new(Trace::default())).collect(),
            slow_threshold_us,
            slow_capacity: slow,
            slow: Mutex::new(Vec::with_capacity(slow)),
        }
    }

    /// Allocate the next trace ID (one atomic add).
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds since the recorder was constructed — the
    /// timestamp domain of [`Trace::end_us`].
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The `--trace-slow-us` threshold.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Total traces recorded since start.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Record one completed trace: copy it into the next recent-ring
    /// slot and, when at/above the slow threshold, into the slow
    /// track. Never allocates.
    pub fn record(&self, trace: &Trace) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (claim % self.recent.len() as u64) as usize;
        *self.recent[slot].lock().expect("recent slot lock") = *trace;
        if self.slow_capacity > 0 && trace.total_us >= self.slow_threshold_us {
            let mut slow = self.slow.lock().expect("slow track lock");
            if slow.len() < self.slow_capacity {
                slow.push(*trace);
            } else if let Some((min_idx, min)) = slow
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.total_us)
                .map(|(i, t)| (i, t.total_us))
            {
                if trace.total_us > min {
                    slow[min_idx] = *trace;
                }
            }
        }
    }

    /// Append the `GET /debug/traces` JSON body: the recent ring
    /// (oldest first) and the slow track (slowest first), each
    /// optionally filtered by exact route and/or algorithm label.
    pub fn write_json(&self, out: &mut String, route: Option<&str>, algorithm: Option<&str>) {
        let keep = |t: &Trace| {
            t.id != 0
                && route.is_none_or(|r| t.route == r)
                && algorithm.is_none_or(|a| t.algorithm.as_str() == a)
        };
        let _ = write!(
            out,
            "{{\"slow_threshold_us\":{},\"recorded\":{},\"recent\":[",
            self.slow_threshold_us,
            self.recorded()
        );
        let head = self.head.load(Ordering::Relaxed);
        let len = self.recent.len() as u64;
        let (start, count) = if head <= len {
            (0, head)
        } else {
            (head % len, len)
        };
        let mut first = true;
        for i in 0..count {
            let slot = ((start + i) % len) as usize;
            let trace = *self.recent[slot].lock().expect("recent slot lock");
            if !keep(&trace) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            trace.write_json(out);
        }
        out.push_str("],\"slow\":[");
        let mut slow: Vec<Trace> = self
            .slow
            .lock()
            .expect("slow track lock")
            .iter()
            .copied()
            .filter(keep)
            .collect();
        slow.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        let mut first = true;
        for trace in &slow {
            if !first {
                out.push(',');
            }
            first = false;
            trace.write_json(out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn trace(id: u64, total_us: u64) -> Trace {
        Trace {
            id,
            route: "rank",
            algorithm: TraceStr::new("mallows"),
            status: 200,
            total_us,
            run_us: total_us / 2,
            queue_us: total_us / 4,
            ..Trace::default()
        }
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let rec = FlightRecorder::new(4, 2, 100);
        let a = rec.next_id();
        let b = rec.next_id();
        assert!(b > a);
    }

    #[test]
    fn recent_ring_keeps_last_n_in_order() {
        let rec = FlightRecorder::new(4, 0, u64::MAX);
        for id in 1..=10u64 {
            rec.record(&trace(id, 10));
        }
        let mut out = String::new();
        rec.write_json(&mut out, None, None);
        let parsed = Json::parse(&out).expect(&out);
        let recent = parsed.get("recent").unwrap().as_array().unwrap();
        let ids: Vec<u64> = recent
            .iter()
            .map(|t| t.get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![7, 8, 9, 10], "{out}");
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn slow_track_keeps_slowest_above_threshold() {
        let rec = FlightRecorder::new(2, 3, 100);
        for (id, total) in [(1, 50), (2, 150), (3, 400), (4, 100), (5, 300), (6, 200)] {
            rec.record(&trace(id, total));
        }
        let mut out = String::new();
        rec.write_json(&mut out, None, None);
        let parsed = Json::parse(&out).expect(&out);
        let slow = parsed.get("slow").unwrap().as_array().unwrap();
        let totals: Vec<u64> = slow
            .iter()
            .map(|t| t.get("total_us").unwrap().as_u64().unwrap())
            .collect();
        // 50 is below the threshold; 100 was evicted by 200
        assert_eq!(totals, vec![400, 300, 200], "{out}");
    }

    #[test]
    fn filters_match_route_and_algorithm() {
        let rec = FlightRecorder::new(8, 0, u64::MAX);
        rec.record(&trace(1, 10));
        let mut other = trace(2, 10);
        other.route = "healthz";
        other.algorithm = TraceStr::new("");
        rec.record(&other);

        let mut out = String::new();
        rec.write_json(&mut out, Some("rank"), None);
        assert!(
            out.contains("\"id\":1") && !out.contains("\"id\":2"),
            "{out}"
        );

        out.clear();
        rec.write_json(&mut out, None, Some("mallows"));
        assert!(
            out.contains("\"id\":1") && !out.contains("\"id\":2"),
            "{out}"
        );

        out.clear();
        rec.write_json(&mut out, Some("nope"), None);
        let parsed = Json::parse(&out).expect(&out);
        assert!(parsed.get("recent").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn chunk_lineage_fields_appear_only_for_chunks() {
        let mut t = trace(1, 10);
        let mut out = String::new();
        t.write_json(&mut out);
        assert!(!out.contains("\"job\""), "{out}");
        t.job = 7;
        t.parent = 3;
        t.chunk = 2;
        out.clear();
        t.write_json(&mut out);
        let parsed = Json::parse(&out).expect(&out);
        assert_eq!(parsed.get("job").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("parent").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("chunk").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn trace_json_escapes_hostile_algorithm_names() {
        let mut t = trace(1, 10);
        t.algorithm = TraceStr::new("a\"b\\c\nd");
        let mut out = String::new();
        t.write_json(&mut out);
        let parsed = Json::parse(&out).expect(&out);
        assert_eq!(
            parsed.get("algorithm").unwrap().as_str(),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn trace_str_truncates_on_char_boundary() {
        let long = "é".repeat(TRACE_NAME_CAP); // 2 bytes each
        let t = TraceStr::new(&long);
        assert!(t.as_str().len() <= TRACE_NAME_CAP);
        assert!(t.as_str().chars().all(|c| c == 'é'));
        assert_eq!(TraceStr::new("mallows").as_str(), "mallows");
    }

    #[test]
    fn span_recorder_resets() {
        let spans = SpanRecorder::default();
        spans.queue_us.store(5, Ordering::Relaxed);
        spans.run_us.store(9, Ordering::Relaxed);
        spans.cache_hit.store(true, Ordering::Relaxed);
        spans.reset();
        assert_eq!(spans.queue_us.load(Ordering::Relaxed), 0);
        assert_eq!(spans.run_us.load(Ordering::Relaxed), 0);
        assert!(!spans.cache_hit.load(Ordering::Relaxed));
    }
}
