//! Allocation audit for the HTTP layer's warm path.
//!
//! The keep-alive reactor promises that a warm request performs zero
//! heap allocations in the HTTP parse/serialize layer: JSON parsing
//! into a reused [`JsonArena`], response-body serialization via
//! [`RankResult::write_json`] into a reused `String`, and response
//! framing via [`write_response_into`] into a reused `Vec<u8>` — and,
//! since the tracing subsystem landed, span recording plus flight-
//! recorder insertion (preallocated slots, `Copy` traces, a pooled
//! span-recorder `Arc`) and the `x-trace-id` framing variant. This
//! test pins that with a counting global allocator: warm each buffer
//! once, then run the same operations again and assert the allocation
//! counter did not move.
//!
//! (The *job* layer — building the owned `RankJob` handed to the
//! engine — allocates by design and is outside the audited boundary;
//! so is the error path, which formats messages.)
//!
//! Single test on purpose: the tracking flag is process-global, so a
//! concurrently running test would pollute the count.

use fairrank_engine::job::RankResult;
use fairrank_engine::json::JsonArena;
use fairrank_engine::server::write_response_traced_into;
use fairrank_engine::trace::{FlightRecorder, SpanRecorder, Trace, TraceHandle, TraceStr};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static TRACKING: AtomicBool = AtomicBool::new(false);

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Run `f` with allocation tracking on; return how many allocations it
/// performed.
fn allocations_during(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warm_http_parse_and_serialize_layer_does_not_allocate() {
    let request_body = r#"{"algorithm":"mallows","scores":[0.9,0.8,0.7,0.6,0.5,0.4],"groups":[0,0,0,1,1,1],"theta":0.8,"samples":25,"seed":42}"#;
    let result = RankResult {
        algorithm: "mallows".to_string(),
        ranking: vec![0, 1, 2, 4, 3, 5],
        consensus: None,
        metrics: vec![
            ("expected_kt".to_string(), 3.25),
            ("ndcg".to_string(), 0.98712),
            ("infeasible_index".to_string(), 0.0),
        ],
    };

    let mut arena = JsonArena::new();
    let mut body_out = String::new();
    let mut response = Vec::new();

    // the tracing warm path: a pooled span recorder, a preallocated
    // flight recorder whose slow track (threshold 0 admits everything)
    // is already full, so a new record exercises the min-replace path
    let flight = FlightRecorder::new(16, 4, 0);
    let spans = Arc::new(SpanRecorder::default());
    let record_trace = |flight: &FlightRecorder, spans: &Arc<SpanRecorder>| {
        spans.reset();
        let handle = TraceHandle {
            id: flight.next_id(),
            spans: Arc::clone(spans),
        };
        handle.spans.cache_us.store(3, Ordering::Relaxed);
        handle.spans.queue_us.store(12, Ordering::Relaxed);
        handle.spans.run_us.store(150, Ordering::Relaxed);
        flight.record(&Trace {
            id: handle.id,
            route: "rank",
            algorithm: TraceStr::new("mallows"),
            status: 200,
            cache_us: handle.spans.cache_us.load(Ordering::Relaxed),
            queue_us: handle.spans.queue_us.load(Ordering::Relaxed),
            run_us: handle.spans.run_us.load(Ordering::Relaxed),
            total_us: 200,
            end_us: flight.now_us(),
            ..Trace::default()
        });
        handle.id
    };

    // warm every buffer once (capacities stick) and fill the slow track
    let doc = arena.parse(request_body).expect("valid request body");
    assert_eq!(doc.get("algorithm").unwrap().as_str(), Some("mallows"));
    result.write_json(&mut body_out);
    let mut warm_id = 0;
    for _ in 0..8 {
        warm_id = record_trace(&flight, &spans);
    }
    write_response_traced_into(
        &mut response,
        200,
        &body_out,
        true,
        None,
        "application/json",
        Some(warm_id),
    );
    let framed_len = response.len();

    // ... then the same request again must not touch the allocator
    body_out.clear();
    let allocations = allocations_during(|| {
        let doc = arena.parse(request_body).expect("valid request body");
        // drive the accessors the routing layer uses
        assert_eq!(doc.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("scores").unwrap().as_array().unwrap().count(), 6);
        result.write_json(&mut body_out);
        let id = record_trace(&flight, &spans);
        write_response_traced_into(
            &mut response,
            200,
            &body_out,
            true,
            None,
            "application/json",
            Some(id),
        );
    });
    assert_eq!(
        allocations, 0,
        "warm HTTP parse/serialize/trace layer must not allocate"
    );
    assert_eq!(response.len(), framed_len, "output must be reproduced");
}
