//! Acceptance check for the result cache: a repeated identical job must
//! be served at least 10× faster than the cold run.

use fairrank_engine::job::{JobInput, JobParams, RankJob};
use fairrank_engine::{Engine, EngineConfig};
use std::time::Instant;

/// A deliberately heavy Mallows job (n = 120, best-of-60 samples) so
/// the cold run is comfortably in milliseconds while the cached run is
/// a hash lookup — the 10× margin is then robust to CI jitter.
fn heavy_job() -> RankJob {
    let n = 120;
    let scores: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / n as f64).collect();
    let groups: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
    RankJob {
        algorithm: "mallows".to_string(),
        input: JobInput::Scores { scores, groups },
        params: JobParams {
            theta: 0.5,
            samples: 60,
            seed: 7,
            ..JobParams::default()
        },
    }
}

#[test]
fn cached_submit_is_at_least_10x_faster_than_cold() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,

        table_cache_capacity: 16,
        cache_shards: 0,
        ..EngineConfig::default()
    });

    let cold_start = Instant::now();
    let cold = engine.submit(heavy_job()).unwrap();
    let cold_time = cold_start.elapsed();

    // median of several warm lookups to smooth scheduler noise
    let mut warm_times = Vec::new();
    for _ in 0..5 {
        let warm_start = Instant::now();
        let warm = engine.submit(heavy_job()).unwrap();
        warm_times.push(warm_start.elapsed());
        assert_eq!(warm, cold, "cache must return the identical result");
    }
    warm_times.sort();
    let warm_time = warm_times[warm_times.len() / 2];

    assert!(
        cold_time >= warm_time * 10,
        "cold {cold_time:?} should be ≥ 10× warm {warm_time:?}"
    );

    let stats = engine.stats_json().to_string();
    assert!(stats.contains("\"cache_hits\":5"), "{stats}");
    assert!(stats.contains("\"cache_misses\":1"), "{stats}");
}
