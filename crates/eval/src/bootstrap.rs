//! Percentile bootstrap confidence intervals.
//!
//! Every figure of the paper reports "confidence intervals obtained via
//! bootstrapping (n = 1000)". [`bootstrap_ci`] reproduces that: resample
//! the data with replacement `resamples` times, compute the statistic on
//! each resample and take percentile bounds.

use crate::stats;
use rand::Rng;

/// Statistic to bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Statistic {
    /// Arithmetic mean.
    Mean,
    /// Median.
    Median,
}

impl Statistic {
    fn eval(self, xs: &[f64]) -> f64 {
        match self {
            Statistic::Mean => stats::mean(xs),
            Statistic::Median => stats::median(xs),
        }
    }
}

/// A bootstrap point estimate with a percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Statistic evaluated on the original sample.
    pub point: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
}

impl BootstrapCi {
    /// Half-width `(upper − lower) / 2`, handy for `±` display.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }
}

/// Percentile bootstrap CI at the given `confidence` (e.g. `0.95`).
///
/// Degenerate inputs (empty data, zero resamples) collapse the interval
/// onto the point estimate.
pub fn bootstrap_ci<R: Rng + ?Sized>(
    data: &[f64],
    statistic: Statistic,
    resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> BootstrapCi {
    let point = statistic.eval(data);
    if data.is_empty() || resamples == 0 {
        return BootstrapCi {
            point,
            lower: point,
            upper: point,
        };
    }
    let mut estimates = Vec::with_capacity(resamples);
    let mut resample = vec![0.0f64; data.len()];
    for _ in 0..resamples {
        for slot in &mut resample {
            *slot = data[rng.random_range(0..data.len())];
        }
        estimates.push(statistic.eval(&resample));
    }
    estimates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    let lower = stats::percentile_of_sorted(&estimates, 100.0 * alpha);
    let upper = stats::percentile_of_sorted(&estimates, 100.0 * (1.0 - alpha));
    BootstrapCi {
        point,
        lower,
        upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_data_collapses() {
        let mut rng = StdRng::seed_from_u64(1);
        let ci = bootstrap_ci(&[], Statistic::Mean, 100, 0.95, &mut rng);
        assert_eq!(ci.point, 0.0);
        assert_eq!(ci.lower, ci.upper);
    }

    #[test]
    fn constant_data_has_zero_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let ci = bootstrap_ci(&[5.0; 40], Statistic::Mean, 200, 0.95, &mut rng);
        assert_eq!(ci.point, 5.0);
        assert!((ci.upper - ci.lower).abs() < 1e-12);
    }

    #[test]
    fn interval_contains_point_for_symmetric_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(&data, Statistic::Mean, 1000, 0.95, &mut rng);
        assert!(ci.lower <= ci.point && ci.point <= ci.upper);
        assert!(ci.half_width() > 0.0);
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let narrow = bootstrap_ci(&data, Statistic::Mean, 2000, 0.80, &mut rng1);
        let wide = bootstrap_ci(&data, Statistic::Mean, 2000, 0.99, &mut rng2);
        assert!(wide.half_width() > narrow.half_width());
    }

    #[test]
    fn median_statistic_works() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        let ci = bootstrap_ci(&data, Statistic::Median, 500, 0.95, &mut rng);
        assert_eq!(ci.point, 3.0);
        // median is robust: upper bound far below the outlier-dominated mean
        assert!(ci.upper <= 100.0);
    }

    #[test]
    fn coverage_sanity_for_known_mean() {
        // data ~ U{0..9}: true mean 4.5; the 95 % CI from a large sample
        // should contain it
        let mut rng = StdRng::seed_from_u64(6);
        let data: Vec<f64> = (0..1000).map(|_| rng.random_range(0..10) as f64).collect();
        let ci = bootstrap_ci(&data, Statistic::Mean, 1000, 0.95, &mut rng);
        assert!(
            ci.lower < 4.5 && 4.5 < ci.upper,
            "CI [{}, {}]",
            ci.lower,
            ci.upper
        );
    }
}
