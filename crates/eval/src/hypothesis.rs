//! Nonparametric hypothesis tests for comparing algorithm outputs.
//!
//! The paper reports bootstrap confidence intervals; when two
//! algorithms' intervals overlap the natural follow-up question is
//! whether their metric distributions differ at all. These tests answer
//! it without normality assumptions:
//!
//! * [`mann_whitney_u`] — two independent samples (e.g. NDCG of
//!   algorithm A vs B across repetitions);
//! * [`wilcoxon_signed_rank`] — paired samples (both algorithms on the
//!   *same* repetitions);
//! * [`chi_square_gof`] — goodness of fit of observed counts to
//!   expected frequencies (used to validate samplers against PMFs).
//!
//! P-values use the standard normal / χ² large-sample approximations
//! (with tie and continuity corrections for the rank tests), accurate
//! for the sample sizes the experiment harness produces (≥ 15
//! repetitions, ≥ 5 expected per χ² cell).

use crate::{EvalError, Result};

/// Outcome of a two-sided hypothesis test.
#[derive(Debug, Clone, Copy)]
pub struct TestResult {
    /// The test statistic (U, W, or χ² respectively).
    pub statistic: f64,
    /// Standardized statistic (z-score; for χ² this is the statistic
    /// itself).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TestResult {
    /// Is the difference significant at level `alpha`?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Mann–Whitney U test (Wilcoxon rank-sum): are two independent samples
/// drawn from the same distribution? Two-sided, normal approximation
/// with tie correction and ±½ continuity correction.
///
/// Errors when either sample is empty.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    if xs.is_empty() || ys.is_empty() {
        return Err(EvalError::EmptySample);
    }
    let (n1, n2) = (xs.len() as f64, ys.len() as f64);
    // rank the pooled sample with mid-ranks for ties
    let mut pooled: Vec<(f64, usize)> = xs
        .iter()
        .map(|&v| (v, 0usize))
        .chain(ys.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = mid;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, who), _)| *who == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let mean = n1 * n2 / 2.0;
    let nf = n as f64;
    let var = n1 * n2 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var <= 0.0 {
        // all observations identical → no evidence of difference
        return Ok(TestResult {
            statistic: u1,
            z: 0.0,
            p_value: 1.0,
        });
    }
    let diff = u1 - mean;
    let cc = 0.5 * diff.signum();
    let z = (diff - cc) / var.sqrt();
    Ok(TestResult {
        statistic: u1,
        z,
        p_value: two_sided_p(z),
    })
}

/// Wilcoxon signed-rank test for paired samples: is the median paired
/// difference zero? Zero differences are dropped (Wilcoxon's rule);
/// two-sided normal approximation with tie correction.
///
/// Errors on length mismatch or when every pair is tied.
pub fn wilcoxon_signed_rank(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    if xs.len() != ys.len() {
        return Err(EvalError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let mut diffs: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(&a, &b)| a - b)
        .filter(|d| *d != 0.0)
        .collect();
    if diffs.is_empty() {
        return Err(EvalError::EmptySample);
    }
    diffs.sort_by(|a, b| {
        a.abs()
            .partial_cmp(&b.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let n = diffs.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = mid;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, &r)| r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if var <= 0.0 {
        return Ok(TestResult {
            statistic: w_plus,
            z: 0.0,
            p_value: 1.0,
        });
    }
    let diff = w_plus - mean;
    let cc = 0.5 * diff.signum();
    let z = (diff - cc) / var.sqrt();
    Ok(TestResult {
        statistic: w_plus,
        z,
        p_value: two_sided_p(z),
    })
}

/// χ² goodness-of-fit: do observed counts match expected frequencies?
/// `expected` may be unnormalized; it is scaled to the observed total.
/// Degrees of freedom = cells − 1.
///
/// Errors on shape mismatch, empty input, or a non-positive expected
/// cell.
pub fn chi_square_gof(observed: &[u64], expected: &[f64]) -> Result<TestResult> {
    if observed.len() != expected.len() {
        return Err(EvalError::LengthMismatch {
            left: observed.len(),
            right: expected.len(),
        });
    }
    if observed.len() < 2 {
        return Err(EvalError::EmptySample);
    }
    let total_obs: f64 = observed.iter().map(|&c| c as f64).sum();
    let total_exp: f64 = expected.iter().sum();
    if total_exp <= 0.0 || expected.iter().any(|&e| e <= 0.0) {
        return Err(EvalError::InvalidExpected);
    }
    let scale = total_obs / total_exp;
    let stat: f64 = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            let e = e * scale;
            let d = o as f64 - e;
            d * d / e
        })
        .sum();
    let dof = (observed.len() - 1) as f64;
    Ok(TestResult {
        statistic: stat,
        z: stat,
        p_value: chi_square_sf(stat, dof),
    })
}

/// Two-sided p-value from a z-score: `2·(1 − Φ(|z|))`.
fn two_sided_p(z: f64) -> f64 {
    (2.0 * standard_normal_sf(z.abs())).min(1.0)
}

/// Standard normal survival function `1 − Φ(x)` via `erfc`.
fn standard_normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes rational
/// approximation; |error| ≤ 1.2e−7 everywhere).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// χ² survival function via the regularized upper incomplete gamma
/// `Q(k/2, x/2)`, computed by series / continued fraction.
fn chi_square_sf(x: f64, dof: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    regularized_gamma_q(dof / 2.0, x / 2.0)
}

/// Regularized upper incomplete gamma `Q(a, x)` (Numerical Recipes
/// `gammq`): series for `x < a + 1`, continued fraction otherwise.
fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn ln_gamma(x: f64) -> f64 {
    // Lanczos approximation (g = 5, n = 6), |ε| < 2e-10 for x > 0.
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-14 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
    }

    #[test]
    fn normal_sf_known_values() {
        assert!((standard_normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_sf(1.959964) - 0.025).abs() < 1e-5);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // χ²(1): P[X > 3.841] ≈ 0.05; χ²(5): P[X > 11.070] ≈ 0.05
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(11.070, 5.0) - 0.05).abs() < 1e-3);
        assert_eq!(chi_square_sf(0.0, 3.0), 1.0);
    }

    #[test]
    fn mann_whitney_identical_samples_not_significant() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let r = mann_whitney_u(&xs, &xs).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn mann_whitney_detects_clear_shift() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..20).map(|i| i as f64 + 100.0).collect();
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert!(r.significant_at(0.001), "p = {}", r.p_value);
        assert_eq!(r.statistic, 0.0); // xs all below ys → U₁ = 0
    }

    #[test]
    fn mann_whitney_symmetric_p() {
        let xs = [0.2, 0.5, 0.9, 1.4, 2.2, 0.7];
        let ys = [1.1, 1.9, 2.4, 3.0, 0.8];
        let a = mann_whitney_u(&xs, &ys).unwrap();
        let b = mann_whitney_u(&ys, &xs).unwrap();
        assert!((a.p_value - b.p_value).abs() < 1e-12);
    }

    #[test]
    fn mann_whitney_handles_all_ties() {
        let xs = [1.0; 6];
        let ys = [1.0; 7];
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn mann_whitney_empty_errors() {
        assert!(mann_whitney_u(&[], &[1.0]).is_err());
    }

    #[test]
    fn wilcoxon_no_difference_not_significant() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|&v| {
                v + if (v as usize).is_multiple_of(2) {
                    0.1
                } else {
                    -0.1
                }
            })
            .collect();
        let r = wilcoxon_signed_rank(&xs, &ys).unwrap();
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn wilcoxon_detects_consistent_improvement() {
        let xs: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&v| v + 1.0).collect();
        let r = wilcoxon_signed_rank(&xs, &ys).unwrap();
        assert!(r.significant_at(0.001), "p = {}", r.p_value);
    }

    #[test]
    fn wilcoxon_rejects_degenerate_input() {
        assert!(wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]).is_err());
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0]).is_err()); // all ties
    }

    #[test]
    fn chi_square_uniform_die() {
        // near-uniform observed counts on a fair die → not significant
        let obs = [98u64, 103, 101, 99, 102, 97];
        let exp = [1.0; 6];
        let r = chi_square_gof(&obs, &exp).unwrap();
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
        // heavily loaded die → significant
        let obs2 = [300u64, 60, 60, 60, 60, 60];
        let r2 = chi_square_gof(&obs2, &exp).unwrap();
        assert!(r2.significant_at(0.001), "p = {}", r2.p_value);
    }

    #[test]
    fn chi_square_scales_unnormalized_expected() {
        let obs = [50u64, 50];
        let a = chi_square_gof(&obs, &[0.5, 0.5]).unwrap();
        let b = chi_square_gof(&obs, &[7.0, 7.0]).unwrap();
        assert!((a.statistic - b.statistic).abs() < 1e-12);
    }

    #[test]
    fn chi_square_rejects_bad_input() {
        assert!(chi_square_gof(&[1, 2], &[1.0]).is_err());
        assert!(chi_square_gof(&[1], &[1.0]).is_err());
        assert!(chi_square_gof(&[1, 2], &[1.0, 0.0]).is_err());
    }
}
