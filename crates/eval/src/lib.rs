//! Statistics and reporting utilities for the experiment harness.
//!
//! * [`stats`] — summary statistics (mean, median, standard deviation,
//!   percentiles) over `f64` samples;
//! * [`bootstrap`] — percentile bootstrap confidence intervals, the
//!   method the paper uses for every figure (`n = 1000` resamples);
//! * [`rand_ext`] — Gaussian sampling via the Marsaglia polar method,
//!   replacing the `rand_distr` dependency (see DESIGN.md);
//! * [`hypothesis`] — nonparametric significance tests (Mann–Whitney U,
//!   Wilcoxon signed-rank, χ² goodness of fit);
//! * [`table`] — plain-text table emitters used by the `experiments`
//!   binaries to print paper-style series.

#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod hypothesis;
pub mod rand_ext;
pub mod stats;
pub mod table;

pub use bootstrap::{bootstrap_ci, BootstrapCi, Statistic};
pub use hypothesis::{chi_square_gof, mann_whitney_u, wilcoxon_signed_rank, TestResult};
pub use rand_ext::NormalSampler;

/// Errors raised by statistical routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// A test received an empty (or all-tied, for rank tests) sample.
    EmptySample,
    /// Paired inputs differ in length.
    LengthMismatch {
        /// Length of the left input.
        left: usize,
        /// Length of the right input.
        right: usize,
    },
    /// An expected-frequency cell was non-positive.
    InvalidExpected,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::EmptySample => write!(f, "sample is empty or fully tied"),
            EvalError::LengthMismatch { left, right } => {
                write!(f, "inputs have mismatched lengths {left} and {right}")
            }
            EvalError::InvalidExpected => write!(f, "expected frequencies must be positive"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvalError>;
