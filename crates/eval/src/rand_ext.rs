//! Gaussian sampling without `rand_distr`.
//!
//! The paper injects `N(0, σ)` noise into fairness constraints and draws
//! log-normal credit amounts; both need a normal sampler. We implement
//! the Marsaglia polar method, which is exact (no series truncation) and
//! needs only a uniform source.

use rand::Rng;

/// A reusable `N(mean, sd)` sampler.
///
/// The polar method produces pairs; the spare value is cached so the
/// amortized cost is one uniform pair per two normals.
#[derive(Debug, Clone)]
pub struct NormalSampler {
    mean: f64,
    sd: f64,
    spare: Option<f64>,
}

impl NormalSampler {
    /// Create a sampler with the given mean and standard deviation
    /// (`sd ≥ 0`; a zero sd is allowed and yields the constant `mean`).
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd >= 0.0 && sd.is_finite(),
            "standard deviation must be finite and ≥ 0"
        );
        NormalSampler {
            mean,
            sd,
            spare: None,
        }
    }

    /// Standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        NormalSampler::new(0.0, 1.0)
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.sd == 0.0 {
            return self.mean;
        }
        let z = if let Some(z) = self.spare.take() {
            z
        } else {
            loop {
                let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    let factor = (-2.0 * s.ln() / s).sqrt();
                    self.spare = Some(v * factor);
                    break u * factor;
                }
            }
        };
        self.mean + self.sd * z
    }

    /// Draw one log-normal sample `exp(N(mean, sd))`.
    pub fn sample_lognormal<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.sample(rng).exp()
    }
}

/// One-off standard normal draw (no state reuse).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    NormalSampler::standard().sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = NormalSampler::new(3.0, 2.0);
        let xs: Vec<f64> = (0..50_000).map(|_| s.sample(&mut rng)).collect();
        assert!(
            (stats::mean(&xs) - 3.0).abs() < 0.05,
            "mean {}",
            stats::mean(&xs)
        );
        assert!(
            (stats::std_dev(&xs) - 2.0).abs() < 0.05,
            "sd {}",
            stats::std_dev(&xs)
        );
    }

    #[test]
    fn zero_sd_is_constant() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut s = NormalSampler::new(7.0, 0.0);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 7.0);
        }
    }

    #[test]
    fn symmetric_tail_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut s = NormalSampler::standard();
        let n = 40_000;
        let above = (0..n).filter(|_| s.sample(&mut rng) > 0.0).count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "P(X>0) = {frac}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut s = NormalSampler::new(1.0, 0.5);
        for _ in 0..1000 {
            assert!(s.sample_lognormal(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn negative_sd_panics() {
        NormalSampler::new(0.0, -1.0);
    }
}
