//! Summary statistics over `f64` samples.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Median (average of the two central order statistics for even length);
/// 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile `p ∈ [0, 100]`; 0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_of_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice (no allocation); callers doing
/// many queries sort once and use this.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Streaming mean/variance accumulator (Welford). Useful in tight
/// experiment loops where samples are not retained.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_simple() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_known_value() {
        // sample std of 2,4,4,4,5,5,7,9 with n−1: sqrt(32/7)
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 30.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 150.0), 2.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.5, -2.0, 7.0, 3.25, 0.0, 4.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 6);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }
}
