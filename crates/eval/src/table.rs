//! Plain-text table and CSV emitters for experiment output.

/// A simple column-aligned text table with an optional title.
///
/// ```
/// use eval_stats::table::Table;
/// let mut t = Table::new(vec!["theta".into(), "mean II".into()]);
/// t.add_row(vec!["0.5".into(), "3.21".into()]);
/// let s = t.render();
/// assert!(s.contains("theta"));
/// assert!(s.contains("3.21"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Attach a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the width.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(std::vec::Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma separation, naive quoting of cells that
    /// contain commas or quotes).
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a value with a ± half-width, as figures report CIs.
pub fn pm(point: f64, half_width: f64, decimals: usize) -> String {
    format!("{point:.decimals$} ± {half_width:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["xxxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("a     bbbb"));
        assert!(lines[2].starts_with("xxxx  y"));
    }

    #[test]
    fn title_is_prepended() {
        let t = Table::new(vec!["x".into()]).with_title("Figure 1");
        assert!(t.render().starts_with("Figure 1\n"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["x".into()]);
        t.add_row(vec!["1,5".into()]);
        assert!(t.render_csv().contains("\"1,5\""));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new(vec!["x".into()]);
        t.add_row(vec!["say \"hi\"".into()]);
        assert!(t.render_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn pm_formats() {
        assert_eq!(pm(1.23456, 0.02, 2), "1.23 ± 0.02");
    }
}
