//! Statistical validation of the bootstrap machinery the paper's
//! figures rely on: empirical coverage of the percentile CI and
//! agreement between the hypothesis tests and ground truth.

use eval_stats::hypothesis::{chi_square_gof, mann_whitney_u};
use eval_stats::{bootstrap_ci, NormalSampler, Statistic};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 95 % percentile-bootstrap CIs on Gaussian means should cover the
/// true mean in roughly 95 % of repetitions. With 200 repetitions the
/// binomial 5σ band around 0.95 is ±0.077; we assert coverage ≥ 0.87.
#[test]
fn bootstrap_mean_ci_coverage_is_nominal() {
    let mut rng = StdRng::seed_from_u64(2024);
    let true_mean = 3.0;
    let mut sampler = NormalSampler::new(true_mean, 1.5);
    let reps = 200;
    let mut covered = 0usize;
    for _ in 0..reps {
        let data: Vec<f64> = (0..40).map(|_| sampler.sample(&mut rng)).collect();
        let ci = bootstrap_ci(&data, Statistic::Mean, 1000, 0.95, &mut rng);
        if ci.lower <= true_mean && true_mean <= ci.upper {
            covered += 1;
        }
    }
    let coverage = covered as f64 / reps as f64;
    assert!(
        coverage >= 0.87,
        "95% CI covered the true mean only {:.1}% of the time",
        100.0 * coverage
    );
    assert!(coverage <= 1.0);
}

/// Median CIs behave the same way on a skewed distribution (log-normal),
/// where mean-based normal-theory intervals would be off.
#[test]
fn bootstrap_median_ci_coverage_on_skewed_data() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut sampler = NormalSampler::new(0.0, 0.8);
    let true_median = 1.0; // exp(0) for log-normal(0, σ)
    let reps = 150;
    let mut covered = 0usize;
    for _ in 0..reps {
        let data: Vec<f64> = (0..60)
            .map(|_| sampler.sample_lognormal(&mut rng))
            .collect();
        let ci = bootstrap_ci(&data, Statistic::Median, 1000, 0.95, &mut rng);
        if ci.lower <= true_median && true_median <= ci.upper {
            covered += 1;
        }
    }
    let coverage = covered as f64 / reps as f64;
    assert!(
        coverage >= 0.85,
        "median CI coverage {:.1}%",
        100.0 * coverage
    );
}

/// Under the null (same distribution), Mann–Whitney's p-values should be
/// roughly uniform: the rejection rate at α = 0.05 stays near 5 %.
#[test]
fn mann_whitney_type_i_error_is_controlled() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut sampler = NormalSampler::standard();
    let reps = 400;
    let mut rejections = 0usize;
    for _ in 0..reps {
        let xs: Vec<f64> = (0..25).map(|_| sampler.sample(&mut rng)).collect();
        let ys: Vec<f64> = (0..25).map(|_| sampler.sample(&mut rng)).collect();
        if mann_whitney_u(&xs, &ys).unwrap().significant_at(0.05) {
            rejections += 1;
        }
    }
    let rate = rejections as f64 / reps as f64;
    // binomial 5σ band around 0.05 with 400 reps: ±0.054
    assert!(rate <= 0.11, "type-I error rate {rate:.3} too high");
}

/// The χ² test validates the Mallows sampler end-to-end: empirical
/// frequencies over S₄ against the exact PMF must *not* be rejected.
#[test]
fn chi_square_accepts_exact_mallows_sampler() {
    use mallows_model::MallowsModel;
    use ranking_core::Permutation;
    let model = MallowsModel::new(Permutation::identity(4), 0.6).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let draws = 24_000;
    let all = Permutation::enumerate_all(4);
    let mut observed = vec![0u64; all.len()];
    for _ in 0..draws {
        let s = model.sample(&mut rng);
        let idx = all.iter().position(|p| *p == s).unwrap();
        observed[idx] += 1;
    }
    let expected: Vec<f64> = all.iter().map(|p| model.pmf(p).unwrap()).collect();
    let r = chi_square_gof(&observed, &expected).unwrap();
    assert!(
        !r.significant_at(0.001),
        "exact sampler rejected by χ²: stat {} p {}",
        r.statistic,
        r.p_value
    );
}
