//! Extension experiment: fair rank aggregation end-to-end.
//!
//! The paper situates Algorithm 1 downstream of rank aggregation
//! (Section IV-A, citing Wei et al.). This experiment runs the whole
//! pipeline: votes are drawn from a two-component Mallows mixture (two
//! "voter camps" centred on score order and on a group-segregated
//! order), aggregated by each of the workspace's aggregators, then fair
//! post-processed. Reported: consensus quality (total Kendall tau to
//! the votes) and fairness (infeasible index) before/after each
//! post-processor.

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::Options;
use fairness_metrics::{FairnessBounds, GroupAssignment};
use fairness_ranking::pipeline::{Aggregator, FairAggregationPipeline, PostProcessor};
use mallows_model::MallowsModel;
use ranking_core::Permutation;

const N: usize = 12;
const VOTES: usize = 9;

fn main() {
    let opts = Options::from_env();
    let groups = GroupAssignment::binary_split(N, N / 2);
    let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.1);

    println!("Extension: fair rank aggregation pipeline");
    println!(
        "n = {N}, votes = {VOTES} (two Mallows camps), repetitions = {}\n",
        opts.mc_reps().min(40)
    );

    let aggregators = [
        ("Borda", Aggregator::Borda),
        ("Copeland", Aggregator::Copeland),
        ("Footrule", Aggregator::Footrule),
        ("Kemeny (KwikSort+LS)", Aggregator::Kemeny),
        ("Markov MC4", Aggregator::MarkovMc4),
    ];
    let posts = [
        ("none", PostProcessor::None),
        (
            "Mallows θ=1 m=15",
            PostProcessor::Mallows {
                theta: 1.0,
                samples: 15,
            },
        ),
        ("GrBinaryIPF", PostProcessor::GrBinaryIpf),
    ];

    let reps = opts.mc_reps().min(40);
    let mut table = Table::new(vec![
        "aggregator".into(),
        "post-processing".into(),
        "total KT to votes".into(),
        "infeasible index".into(),
    ])
    .with_title("Aggregate-then-fair pipeline (mean, 95% CI)");

    for (ai, (a_label, agg)) in aggregators.iter().enumerate() {
        for (pi, (p_label, post)) in posts.iter().enumerate() {
            let pipeline = FairAggregationPipeline::new(*agg, post.clone());
            let mut rng = opts.rng(0xA66 + (ai * 8 + pi) as u64);
            let mut kts = Vec::with_capacity(reps);
            let mut iis = Vec::with_capacity(reps);
            for _ in 0..reps {
                // camp A: identity (scores aligned with group segregation);
                // camp B: group-interleaved order.
                let camp_a = Permutation::identity(N);
                let camp_b = Permutation::from_order(
                    (0..N / 2).flat_map(|i| [i + N / 2, i]).collect::<Vec<_>>(),
                )
                .expect("valid interleaving");
                let model_a = MallowsModel::new(camp_a, 1.0).expect("valid θ");
                let model_b = MallowsModel::new(camp_b, 1.0).expect("valid θ");
                let mut votes = model_a.sample_many(VOTES - VOTES / 3, &mut rng);
                votes.extend(model_b.sample_many(VOTES / 3, &mut rng));
                let out = pipeline
                    .run(&votes, &groups, &bounds, &mut rng)
                    .expect("pipeline succeeds on feasible bounds");
                kts.push(out.fair_total_kt as f64);
                iis.push(out.fair_infeasible as f64);
            }
            let k = opts.ci(&kts, Statistic::Mean, 0xE00 + (ai * 8 + pi) as u64);
            let i = opts.ci(&iis, Statistic::Mean, 0xE40 + (ai * 8 + pi) as u64);
            table.add_row(vec![
                a_label.to_string(),
                p_label.to_string(),
                pm(k.point, k.half_width(), 1),
                pm(i.point, i.half_width(), 2),
            ]);
        }
    }
    opts.print_table(&table);
    println!(
        "\nReading: GrBinaryIPF zeroes the infeasible index at the smallest exact\n\
         KT cost; Mallows randomization reduces it obliviously at a smaller\n\
         average cost; the choice of aggregator shifts both columns together."
    );
}
