//! Extension experiment (paper future work): Kendall-tau vs Cayley
//! Mallows noise at *matched displacement budgets*.
//!
//! The conclusions propose "exploring various noise distributions".
//! Comparing noise models is only meaningful at equal perturbation
//! strength, so this experiment fixes a budget β ∈ (0, 1) — the
//! expected distance as a fraction of each metric's maximum — solves
//! each model's dispersion for that budget (closed forms in both
//! models), and reports the fairness/utility frontier:
//!
//! * Kendall-tau Mallows: `E[d_KT] = β · n(n−1)/2` via
//!   [`mallows_model::dispersion::theta_for_normalized_distance`];
//! * Cayley Mallows: `E[d_C] = β · (n−1)` via
//!   [`mallows_model::cayley::theta_for_expected_cayley`].
//!
//! Workload: the paper's two-group uniform setting (Fig. 3/4) at
//! δ = 0.5, n = 10.

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::Options;
use fair_datasets::TwoGroupUniform;
use fairness_metrics::infeasible;
use mallows_model::cayley::theta_for_expected_cayley;
use mallows_model::{dispersion, CayleyMallows, MallowsModel};
use ranking_core::quality;

fn main() {
    let opts = Options::from_env();
    let workload = TwoGroupUniform::paper(0.5);
    let groups = workload.groups();
    let bounds = workload.bounds();
    let n = groups.len();

    println!("Extension: KT vs Cayley Mallows noise at matched displacement budgets");
    println!("two-group uniform workload, delta = 0.5, n = {n}\n");

    let budgets = [0.05f64, 0.1, 0.2, 0.3, 0.5];
    let mut table = Table::new(vec![
        "budget β".into(),
        "θ_KT".into(),
        "KT: mean II".into(),
        "KT: mean NDCG".into(),
        "θ_C".into(),
        "Cayley: mean II".into(),
        "Cayley: mean NDCG".into(),
    ])
    .with_title("Matched-budget noise comparison (mean, 95% CI)");

    for (row, &beta) in budgets.iter().enumerate() {
        let theta_kt = dispersion::theta_for_normalized_distance(n, beta);
        let theta_c = theta_for_expected_cayley(n, beta * (n as f64 - 1.0));
        let mut rng = opts.rng(0xCA1 + row as u64);
        let reps = opts.mc_reps();
        let (mut ii_kt, mut nd_kt) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
        let (mut ii_c, mut nd_c) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
        for _ in 0..reps {
            let (scores, center, _) = workload.sample_central(&mut rng);
            let kt = MallowsModel::new(center.clone(), theta_kt)
                .expect("valid dispersion")
                .sample(&mut rng);
            let cay = CayleyMallows::new(center, theta_c)
                .expect("valid dispersion")
                .sample(&mut rng);
            ii_kt.push(
                infeasible::two_sided_infeasible_index(&kt, &groups, &bounds)
                    .expect("consistent shapes") as f64,
            );
            nd_kt.push(quality::ndcg(&kt, &scores).expect("consistent shapes"));
            ii_c.push(
                infeasible::two_sided_infeasible_index(&cay, &groups, &bounds)
                    .expect("consistent shapes") as f64,
            );
            nd_c.push(quality::ndcg(&cay, &scores).expect("consistent shapes"));
        }
        let a = opts.ci(&ii_kt, Statistic::Mean, 0xD00 + row as u64);
        let b = opts.ci(&nd_kt, Statistic::Mean, 0xD10 + row as u64);
        let c = opts.ci(&ii_c, Statistic::Mean, 0xD20 + row as u64);
        let d = opts.ci(&nd_c, Statistic::Mean, 0xD30 + row as u64);
        table.add_row(vec![
            format!("{beta:.2}"),
            format!("{theta_kt:.3}"),
            pm(a.point, a.half_width(), 2),
            pm(b.point, b.half_width(), 4),
            format!("{theta_c:.3}"),
            pm(c.point, c.half_width(), 2),
            pm(d.point, d.half_width(), 4),
        ]);
    }
    opts.print_table(&table);
    println!(
        "\nReading: at equal displacement budgets, adjacent-swap (KT) noise preserves\n\
         more NDCG because its perturbations are positionally local, while Cayley's\n\
         long-range transpositions reduce the infeasible index slightly faster."
    );
}
