//! Extension experiment: robustness across fairness *measure families*.
//!
//! The paper's robustness claim is evaluated only through the
//! P-fairness family (infeasible index / % P-fair positions). This
//! extension re-runs the German-Credit setting (n = 50, unknown
//! `Housing` attribute) and scores every algorithm under three measure
//! families at once:
//!
//! * P-fairness — % P-fair positions (Def. 4);
//! * divergence — NDKL and min-skew@25;
//! * exposure — demographic parity of exposure;
//!
//! plus NDCG for utility. Group-aware algorithms optimize (at most) the
//! first family against the *known* Sex-Age attribute; none see
//! `Housing`. The Mallows rows are fully oblivious.

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::Options;
use fair_baselines as baselines;
use fair_baselines::{FaIrConfig, IpfConfig};
use fair_datasets::GermanCredit;
use fair_mallows::{Criterion, MallowsFairRanker};
use fairness_metrics::{divergence, exposure, infeasible, FairnessBounds};
use ranking_core::quality::{self, Discount};
use ranking_core::Permutation;

const N: usize = 50;
const THETA: f64 = 0.5;

fn main() {
    let opts = Options::from_env();
    let mut rng = opts.rng(0xA11);
    let data = GermanCredit::generate(&mut rng);
    let all_scores = data.credit_amounts();
    let sex_age = data.sex_age_groups();
    let housing = data.housing_groups();

    println!("Extension: robustness across fairness measure families");
    println!(
        "n = {N}, theta = {THETA}, repetitions = {}, unknown attribute = Housing\n",
        opts.mc_reps().min(60)
    );

    let labels = [
        "Weakly-fair input",
        "DetConstSort",
        "ApproxMultiValuedIPF",
        "ILP (DP)",
        "FA*IR (rent)",
        "Mallows (1 sample)",
        "Mallows (best of 15)",
    ];
    let reps = opts.mc_reps().min(60);
    let mut ppfair = vec![Vec::with_capacity(reps); labels.len()];
    let mut ndkl = vec![Vec::with_capacity(reps); labels.len()];
    let mut skew = vec![Vec::with_capacity(reps); labels.len()];
    let mut parity = vec![Vec::with_capacity(reps); labels.len()];
    let mut ndcg = vec![Vec::with_capacity(reps); labels.len()];

    for _rep in 0..reps {
        let idx = data.sample_indices(N, &mut rng);
        let scores: Vec<f64> = idx.iter().map(|&i| all_scores[i]).collect();
        let known = sex_age.subset(&idx);
        let unknown = housing.subset(&idx);
        let known_bounds = FairnessBounds::from_assignment(&known);
        let unknown_bounds = FairnessBounds::from_assignment(&unknown);
        let input = baselines::weakly_fair_ranking(&scores, &known, &known_bounds);

        // `rent` is housing label 2 in the synthetic dataset's encoding;
        // fall back to group 0 if empty in this subsample.
        let rent = 2.min(unknown.num_groups() - 1);
        let rankings: Vec<Permutation> = vec![
            input.clone(),
            baselines::det_const_sort(
                &scores,
                &known,
                &known_bounds,
                &Default::default(),
                &mut rng,
            )
            .unwrap_or_else(|_| input.clone()),
            baselines::approx_multi_valued_ipf(
                &input,
                &known,
                &known_bounds,
                &IpfConfig::default(),
                &mut rng,
            )
            .map_or_else(|_| input.clone(), |o| o.ranking),
            baselines::optimal_fair_ranking_dp(
                &scores,
                &known,
                &known_bounds.tables(N),
                Discount::Log2,
            )
            .unwrap_or_else(|_| input.clone()),
            {
                // FA*IR needs one protected group: use Housing = rent, with
                // its pool share as target (the attribute-aware comparator
                // that *does* see housing — an upper reference).
                let share = unknown.proportions()[rent];
                baselines::fa_ir(
                    &scores,
                    &unknown,
                    rent,
                    N,
                    &FaIrConfig {
                        min_proportion: share,
                        significance: 0.1,
                        adjust: false,
                    },
                )
                .map_or_else(
                    |_| input.clone(),
                    |o| Permutation::from_order(o).expect("fa*ir emits a permutation"),
                )
            },
            MallowsFairRanker::new(THETA, 1, Criterion::FirstSample)
                .expect("valid parameters")
                .rank(&input, &mut rng)
                .expect("consistent shapes")
                .ranking,
            MallowsFairRanker::new(THETA, 15, Criterion::MaxNdcg(scores.clone()))
                .expect("valid parameters")
                .rank(&input, &mut rng)
                .expect("consistent shapes")
                .ranking,
        ];

        for (a, ranking) in rankings.iter().enumerate() {
            ppfair[a].push(
                infeasible::pfair_percentage(ranking, &unknown, &unknown_bounds)
                    .expect("consistent shapes"),
            );
            ndkl[a].push(divergence::ndkl(ranking, &unknown).expect("consistent shapes"));
            let s = divergence::min_skew_at(ranking, &unknown, N / 2).expect("consistent shapes");
            skew[a].push(if s.is_finite() { s } else { -8.0 }); // clamp −∞ for averaging
            parity[a].push(
                exposure::exposure_parity_ratio(ranking, &unknown, Discount::Log2)
                    .expect("consistent shapes"),
            );
            ndcg[a].push(quality::ndcg(ranking, &scores).expect("consistent shapes"));
        }
    }

    let mut table = Table::new(vec![
        "algorithm".into(),
        "%P-fair (Housing)".into(),
        "NDKL".into(),
        "min-skew@25".into(),
        "exposure parity".into(),
        "NDCG".into(),
    ])
    .with_title("All metrics w.r.t. the UNKNOWN Housing attribute (mean, 95% CI)");
    for (a, label) in labels.iter().enumerate() {
        let pf = opts.ci(&ppfair[a], Statistic::Mean, 0xB00 + a as u64);
        let nk = opts.ci(&ndkl[a], Statistic::Mean, 0xB10 + a as u64);
        let sk = opts.ci(&skew[a], Statistic::Mean, 0xB20 + a as u64);
        let pr = opts.ci(&parity[a], Statistic::Mean, 0xB30 + a as u64);
        let nd = opts.ci(&ndcg[a], Statistic::Mean, 0xB40 + a as u64);
        table.add_row(vec![
            label.to_string(),
            pm(pf.point, pf.half_width(), 1),
            pm(nk.point, nk.half_width(), 4),
            pm(sk.point, sk.half_width(), 3),
            pm(pr.point, pr.half_width(), 3),
            pm(nd.point, nd.half_width(), 4),
        ]);
    }
    opts.print_table(&table);
    println!(
        "\nReading: group-aware baselines optimize P-fairness w.r.t. Sex-Age only;\n\
         rows show how each output scores on measures (and an attribute) it never saw.\n\
         Mallows trades a little NDCG for consistently mid-to-top fairness on every column."
    );
}
