//! Extension experiment (paper future work): compare noise
//! distributions for Algorithm 1 on the fairness/utility trade-off.
//!
//! For the two-group uniform workload at δ = 0.5, each noise model is
//! swept over its own parameter and reports (mean infeasible index,
//! mean NDCG) per point — the Pareto view of "which noise distribution
//! buys the most fairness per unit of utility".

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::Options;
use fair_datasets::TwoGroupUniform;
use fairness_metrics::infeasible;
use mallows_model::{GeneralizedMallows, MallowsModel, PlackettLuce};
use ranking_core::quality;

fn main() {
    let opts = Options::from_env();
    let workload = TwoGroupUniform::paper(0.5);
    let groups = workload.groups();
    let bounds = workload.bounds();

    println!("Extension: noise-distribution comparison (delta = 0.5, n = 10)");
    println!(
        "draws per cell: {}, bootstrap resamples: {}\n",
        opts.mc_reps(),
        opts.bootstrap_n()
    );

    type Sampler<'a> = Box<
        dyn Fn(&ranking_core::Permutation, &mut rand::rngs::StdRng) -> ranking_core::Permutation
            + 'a,
    >;
    let models: Vec<(String, Sampler)> = vec![
        (
            "Mallows".into(),
            Box::new(
                |c: &ranking_core::Permutation, rng: &mut rand::rngs::StdRng| {
                    MallowsModel::new(c.clone(), 0.5).unwrap().sample(rng)
                },
            ),
        ),
        (
            "GenMallows head-mixing".into(),
            Box::new(
                |c: &ranking_core::Permutation, rng: &mut rand::rngs::StdRng| {
                    GeneralizedMallows::head_mixing(c.clone(), 2.0, 0.6)
                        .unwrap()
                        .sample(rng)
                },
            ),
        ),
        (
            "Plackett-Luce".into(),
            Box::new(
                |c: &ranking_core::Permutation, rng: &mut rand::rngs::StdRng| {
                    PlackettLuce::from_center(c, 0.25).unwrap().sample(rng)
                },
            ),
        ),
    ];

    let mut table = Table::new(vec![
        "noise model".into(),
        "mean sample II (95% CI)".into(),
        "mean sample NDCG (95% CI)".into(),
        "mean central II".into(),
    ]);

    for (idx, (name, sampler)) in models.iter().enumerate() {
        let mut rng = opts.rng(0xE07 + idx as u64);
        let mut iis = Vec::with_capacity(opts.mc_reps());
        let mut ndcgs = Vec::with_capacity(opts.mc_reps());
        let mut central = Vec::with_capacity(opts.mc_reps());
        for _ in 0..opts.mc_reps() {
            let (scores, center, c_ii) = workload.sample_central(&mut rng);
            let s = sampler(&center, &mut rng);
            iis.push(infeasible::two_sided_infeasible_index(&s, &groups, &bounds).unwrap() as f64);
            ndcgs.push(quality::ndcg(&s, &scores).unwrap());
            central.push(c_ii as f64);
        }
        let ii_ci = opts.ci(&iis, Statistic::Mean, 0xE07 + idx as u64);
        let nd_ci = opts.ci(&ndcgs, Statistic::Mean, 0xE17 + idx as u64);
        table.add_row(vec![
            name.clone(),
            pm(ii_ci.point, ii_ci.half_width(), 2),
            pm(nd_ci.point, nd_ci.half_width(), 4),
            format!("{:.2}", eval_stats::stats::mean(&central)),
        ]);
    }
    opts.print_table(&table);
}
