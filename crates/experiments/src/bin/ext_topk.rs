//! Extension experiment: the shortlist (fair top-k) problem.
//!
//! The paper's introduction motivates ranking with HR shortlists —
//! "a recruiter … needs to shortlist 10 best candidates" — but its
//! evaluation always re-ranks the full list. This extension evaluates
//! the selection variant directly: from a pool of n = 100 German-Credit
//! candidates choose an ordered shortlist of k = 10, comparing
//!
//! * plain top-k by score (no fairness),
//! * the exact DCG-optimal fair top-k DP (weak and strong prefixes),
//! * FA*IR (binomial-tested, protected = Housing `rent`),
//! * Mallows top-k: the O(k log n) truncated sampler around the score
//!   ordering, best of 15 shortlists by DCG (oblivious).
//!
//! Reported per algorithm: DCG@k normalized by the pool's IDCG@k,
//! shortlist share of the protected group, and the shortlist-internal
//! infeasible index w.r.t. the known Sex-Age attribute.

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::Options;
use fair_baselines::{fa_ir, fair_top_k, FaIrConfig, FairnessMode};
use fair_datasets::GermanCredit;
use fairness_metrics::{infeasible, FairnessBounds};
use mallows_model::TopKMallows;
use ranking_core::quality::Discount;
use ranking_core::Permutation;

const POOL: usize = 100;
const K: usize = 10;
const THETA: f64 = 0.5;

fn dcg_of(items: &[usize], scores: &[f64]) -> f64 {
    items
        .iter()
        .enumerate()
        .map(|(i, &item)| scores[item] * Discount::Log2.at(i + 1))
        .sum()
}

fn pool_idcg(scores: &[f64], k: usize) -> f64 {
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    sorted
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, s)| s * Discount::Log2.at(i + 1))
        .sum()
}

fn main() {
    let opts = Options::from_env();
    let mut rng = opts.rng(0x70B);
    let data = GermanCredit::generate(&mut rng);
    let all_scores = data.credit_amounts();
    let sex_age = data.sex_age_groups();
    let housing = data.housing_groups();
    let reps = opts.mc_reps().min(60);

    println!("Extension: fair shortlists (k = {K} of n = {POOL})");
    println!("protected group for FA*IR: Housing = rent; repetitions = {reps}\n");

    let labels = [
        "Top-k by score",
        "Fair top-k (weak)",
        "Fair top-k (strong)",
        "FA*IR",
        "Mallows top-k (best of 15)",
    ];
    let mut rel_dcg = vec![Vec::with_capacity(reps); labels.len()];
    let mut rent_share = vec![Vec::with_capacity(reps); labels.len()];
    let mut ii_known = vec![Vec::with_capacity(reps); labels.len()];

    for _ in 0..reps {
        let idx = data.sample_indices(POOL, &mut rng);
        let scores: Vec<f64> = idx.iter().map(|&i| all_scores[i]).collect();
        let known = sex_age.subset(&idx);
        let unknown = housing.subset(&idx);
        let bounds = FairnessBounds::from_assignment_with_tolerance(&known, 0.15);
        let rent = 2.min(unknown.num_groups() - 1);
        let rent_pool_share = unknown.proportions()[rent];

        let score_order = Permutation::sorted_by_scores_desc(&scores);
        let plain: Vec<usize> = score_order.prefix(K).to_vec();

        let weak = fair_top_k(
            &scores,
            &known,
            &bounds,
            K,
            FairnessMode::Weak,
            Discount::Log2,
        )
        .unwrap_or_else(|_| plain.clone());
        let strong = fair_top_k(
            &scores,
            &known,
            &bounds,
            K,
            FairnessMode::Strong,
            Discount::Log2,
        )
        .unwrap_or_else(|_| plain.clone());
        let fair = fa_ir(
            &scores,
            &unknown,
            rent,
            K,
            &FaIrConfig {
                min_proportion: rent_pool_share,
                significance: 0.1,
                adjust: true,
            },
        )
        .unwrap_or_else(|_| plain.clone());
        let sampler = TopKMallows::new(score_order.clone(), THETA, K).expect("valid params");
        let mallows = (0..15)
            .map(|_| sampler.sample(&mut rng))
            .max_by(|a, b| {
                dcg_of(a, &scores)
                    .partial_cmp(&dcg_of(b, &scores))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("15 samples drawn");

        let idcg = pool_idcg(&scores, K);
        for (a, shortlist) in [&plain, &weak, &strong, &fair, &mallows]
            .into_iter()
            .enumerate()
        {
            rel_dcg[a].push(dcg_of(shortlist, &scores) / idcg);
            let n_rent = shortlist
                .iter()
                .filter(|&&i| unknown.group_of(i) == rent)
                .count();
            rent_share[a].push(n_rent as f64 / K as f64 / rent_pool_share.max(1e-9));
            let sub = known.subset(shortlist);
            let sub_bounds = FairnessBounds::from_assignment_with_tolerance(&sub, 0.15);
            let pi = Permutation::identity(K);
            ii_known[a].push(
                infeasible::two_sided_infeasible_index(&pi, &sub, &sub_bounds)
                    .expect("consistent shapes") as f64,
            );
        }
    }

    let mut table = Table::new(vec![
        "algorithm".into(),
        "DCG@10 / pool IDCG@10".into(),
        "rent share / pool share".into(),
        "II within shortlist (Sex-Age)".into(),
    ])
    .with_title("Fair shortlist selection (mean, 95% CI)");
    for (a, label) in labels.iter().enumerate() {
        let d = opts.ci(&rel_dcg[a], Statistic::Mean, 0xC00 + a as u64);
        let r = opts.ci(&rent_share[a], Statistic::Mean, 0xC10 + a as u64);
        let i = opts.ci(&ii_known[a], Statistic::Mean, 0xC20 + a as u64);
        table.add_row(vec![
            label.to_string(),
            pm(d.point, d.half_width(), 4),
            pm(r.point, r.half_width(), 2),
            pm(i.point, i.half_width(), 2),
        ]);
    }
    opts.print_table(&table);
    println!(
        "\nReading: a rent-share ratio of 1.0 means the shortlist mirrors the pool.\n\
         The exact fair top-k DPs keep DCG highest among the fair methods; the\n\
         oblivious Mallows shortlist improves representation without seeing groups."
    );
}
