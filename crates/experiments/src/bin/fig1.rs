//! Figure 1 — Mallows noise vs the Infeasible Index.
//!
//! Ten individuals in two equal groups; central rankings constructed at
//! Infeasible Index ∈ {0, 2, 4, 6, 8}; for each dispersion θ the mean
//! Infeasible Index of Mallows samples is reported with a bootstrap CI.
//! Paper shape: as θ grows the sample II converges to the centre's II;
//! as θ → 0 it converges to the uniform-permutation II (≈ 5 for this
//! setup) — a large drop when the centre is very unfair, a small rise
//! when the centre is fair.

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::{theta_sweep, Options};
use fair_datasets::synthetic::ranking_with_infeasible_index;
use fairness_metrics::{infeasible, FairnessBounds, GroupAssignment};
use mallows_model::MallowsModel;

fn main() {
    let opts = Options::from_env();
    let groups = GroupAssignment::binary_split(10, 5);
    let bounds = FairnessBounds::from_assignment(&groups);

    println!("Figure 1: Mallows distribution and Infeasible Index (n = 10, two groups of 5)");
    println!(
        "samples per cell: {}, bootstrap resamples: {}\n",
        opts.mc_reps(),
        opts.bootstrap_n()
    );

    for (panel, &target) in [0usize, 2, 4, 6, 8].iter().enumerate() {
        let (center, achieved) = ranking_with_infeasible_index(&groups, &bounds, target);
        let mut table = Table::new(vec![
            "theta".into(),
            "mean sample II (95% CI)".into(),
            "central II".into(),
        ])
        .with_title(format!(
            "Subplot {}: central ranking Infeasible Index = {achieved}",
            panel + 1
        ));

        for (t_idx, &theta) in theta_sweep(opts.full).iter().enumerate() {
            let model = MallowsModel::new(center.clone(), theta).expect("θ ≥ 0");
            let mut rng = opts.rng((panel as u64) << 8 | t_idx as u64);
            let iis: Vec<f64> = (0..opts.mc_reps())
                .map(|_| {
                    let s = model.sample(&mut rng);
                    infeasible::two_sided_infeasible_index(&s, &groups, &bounds)
                        .expect("consistent shapes") as f64
                })
                .collect();
            let ci = opts.ci(&iis, Statistic::Mean, (panel as u64) << 8 | t_idx as u64);
            table.add_row(vec![
                format!("{theta}"),
                pm(ci.point, ci.half_width(), 2),
                format!("{achieved}"),
            ]);
        }
        opts.print_table(&table);
    }
}
