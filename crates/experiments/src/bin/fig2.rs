//! Figure 2 — Infeasible Index of the central (score-sorted) ranking as
//! a function of the mean score gap δ between the two groups.
//!
//! Group 0 scores `U(0,1)`, group 1 scores `U(δ, 1+δ)`, five individuals
//! each. Paper shape: the index rises monotonically with δ and saturates
//! at full segregation (δ = 1).

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::{delta_sweep, Options};
use fair_datasets::TwoGroupUniform;

fn main() {
    let opts = Options::from_env();
    println!("Figure 2: Infeasible Index of the central ranking vs score gap");
    println!(
        "draws per point: {}, bootstrap resamples: {}\n",
        opts.mc_reps(),
        opts.bootstrap_n()
    );

    let mut table = Table::new(vec!["delta".into(), "mean central II (95% CI)".into()]);
    for (d_idx, &delta) in delta_sweep(opts.full).iter().enumerate() {
        let workload = TwoGroupUniform::paper(delta);
        let mut rng = opts.rng(d_idx as u64);
        let iis: Vec<f64> = (0..opts.mc_reps())
            .map(|_| workload.sample_central(&mut rng).2 as f64)
            .collect();
        let ci = opts.ci(&iis, Statistic::Mean, d_idx as u64);
        table.add_row(vec![
            format!("{delta:.2}"),
            pm(ci.point, ci.half_width(), 2),
        ]);
    }
    opts.print_table(&table);
}
