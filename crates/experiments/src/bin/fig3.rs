//! Figure 3 — Infeasible Index of Mallows samples per score gap δ and
//! dispersion θ.
//!
//! For each δ, draw scores, sort to obtain the central ranking, sample
//! the Mallows distribution at θ and record the sample's Infeasible
//! Index. Paper shape: for small δ the noise slightly *raises* the index
//! of the (fair) centre; for large δ it substantially *lowers* the index
//! of the (unfair) centre; as θ grows the index converges to the
//! centre's.

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::{delta_sweep, theta_sweep, Options};
use fair_datasets::TwoGroupUniform;
use fairness_metrics::infeasible;
use mallows_model::MallowsModel;

fn main() {
    let opts = Options::from_env();
    println!("Figure 3: Mallows samples' Infeasible Index vs (delta, theta)");
    println!(
        "draws per cell: {}, bootstrap resamples: {}\n",
        opts.mc_reps(),
        opts.bootstrap_n()
    );

    for (d_idx, &delta) in delta_sweep(opts.full).iter().enumerate() {
        let workload = TwoGroupUniform::paper(delta);
        let groups = workload.groups();
        let bounds = workload.bounds();
        let mut table = Table::new(vec![
            "theta".into(),
            "mean sample II (95% CI)".into(),
            "mean central II".into(),
        ])
        .with_title(format!("Subplot delta = {delta:.2}"));

        for (t_idx, &theta) in theta_sweep(opts.full).iter().enumerate() {
            let stream = (d_idx as u64) << 8 | t_idx as u64;
            let mut rng = opts.rng(stream);
            let mut sample_iis = Vec::with_capacity(opts.mc_reps());
            let mut central_iis = Vec::with_capacity(opts.mc_reps());
            for _ in 0..opts.mc_reps() {
                let (_, center, central_ii) = workload.sample_central(&mut rng);
                let model = MallowsModel::new(center, theta).expect("θ ≥ 0");
                let s = model.sample(&mut rng);
                sample_iis.push(
                    infeasible::two_sided_infeasible_index(&s, &groups, &bounds)
                        .expect("consistent shapes") as f64,
                );
                central_iis.push(central_ii as f64);
            }
            let ci = opts.ci(&sample_iis, Statistic::Mean, stream);
            table.add_row(vec![
                format!("{theta}"),
                pm(ci.point, ci.half_width(), 2),
                format!("{:.2}", eval_stats::stats::mean(&central_iis)),
            ]);
        }
        opts.print_table(&table);
    }
}
