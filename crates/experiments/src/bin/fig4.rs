//! Figure 4 — NDCG of Mallows samples per score gap δ and dispersion θ.
//!
//! Same workload as Fig. 3, evaluating the sample's NDCG against the
//! drawn scores (the central ranking has NDCG 1 by construction). Paper
//! shape: NDCG rises towards 1 as θ grows — together with Fig. 3 this is
//! the fairness/utility trade-off of the dispersion knob.

use eval_stats::table::{pm, Table};
use eval_stats::Statistic;
use experiments::{delta_sweep, theta_sweep, Options};
use fair_datasets::TwoGroupUniform;
use mallows_model::MallowsModel;
use ranking_core::quality;

fn main() {
    let opts = Options::from_env();
    println!("Figure 4: Mallows samples' NDCG vs (delta, theta)");
    println!(
        "draws per cell: {}, bootstrap resamples: {}\n",
        opts.mc_reps(),
        opts.bootstrap_n()
    );

    for (d_idx, &delta) in delta_sweep(opts.full).iter().enumerate() {
        let workload = TwoGroupUniform::paper(delta);
        let mut table = Table::new(vec!["theta".into(), "mean sample NDCG (95% CI)".into()])
            .with_title(format!("Subplot delta = {delta:.2} (central NDCG = 1)"));

        for (t_idx, &theta) in theta_sweep(opts.full).iter().enumerate() {
            let stream = 0x4000 | (d_idx as u64) << 8 | t_idx as u64;
            let mut rng = opts.rng(stream);
            let ndcgs: Vec<f64> = (0..opts.mc_reps())
                .map(|_| {
                    let (scores, center, _) = workload.sample_central(&mut rng);
                    let model = MallowsModel::new(center, theta).expect("θ ≥ 0");
                    let s = model.sample(&mut rng);
                    quality::ndcg(&s, &scores).expect("consistent shapes")
                })
                .collect();
            let ci = opts.ci(&ndcgs, Statistic::Mean, stream);
            table.add_row(vec![format!("{theta}"), pm(ci.point, ci.half_width(), 4)]);
        }
        opts.print_table(&table);
    }
}
