//! Figure 5 — median percentage of P-fair positions w.r.t. the **known**
//! combined Age-Sex attribute, for rankings of size 10..100 built from
//! the (synthetic) German Credit dataset by all five algorithms, across
//! the four (θ, σ) panels.
//!
//! Paper shape: the constraint-aware baselines (DetConstSort, ApproxIPF,
//! ILP) score near 100 % on the attribute they optimize for — until
//! constraint noise (σ = 1) degrades them — while the oblivious Mallows
//! variants sit lower but are unaffected by σ.

use experiments::credit_pipeline::{run_and_print, Metric};
use experiments::Options;

fn main() {
    let opts = Options::from_env();
    run_and_print(
        &opts,
        Metric::PpfairKnown,
        "Figure 5: median % P-fair positions w.r.t. Age-Sex (known attribute)",
    );
}
