//! Figure 6 — median percentage of P-fair positions w.r.t. the
//! **unknown** Housing attribute: the robustness experiment. No
//! algorithm sees Housing; the baselines optimize Age-Sex constraints
//! only.
//!
//! Paper shape: no method can guarantee fairness on the unseen
//! attribute; the Mallows randomization acts as a compromise whose
//! Housing fairness is competitive with (and more stable than) the
//! attribute-aware baselines, especially under constraint noise.

use experiments::credit_pipeline::{run_and_print, Metric};
use experiments::Options;

fn main() {
    let opts = Options::from_env();
    run_and_print(
        &opts,
        Metric::PpfairUnknown,
        "Figure 6: median % P-fair positions w.r.t. Housing (unknown attribute)",
    );
}
