//! Figure 7 — mean NDCG (± bootstrap CI) of the output rankings for the
//! German Credit sweeps.
//!
//! Paper shape: the ILP dominates (it maximizes DCG subject to the
//! constraints); Mallows best-of-15 approaches the ILP curve as the
//! ranking size grows, while the single-sample variant pays the full
//! randomization cost; all NDCG values rise with n.

use experiments::credit_pipeline::{run_and_print, Metric};
use experiments::Options;

fn main() {
    let opts = Options::from_env();
    run_and_print(
        &opts,
        Metric::Ndcg,
        "Figure 7: mean NDCG of output rankings",
    );
}
