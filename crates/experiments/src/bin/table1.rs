//! Table I — distribution of the groups defined by Age, Sex and Housing
//! in the (synthetic) German Credit dataset. Must match the paper
//! cell-for-cell; the generator enforces it by construction.

use eval_stats::table::Table;
use experiments::Options;
use fair_datasets::german_credit::TABLE_I;
use fair_datasets::GermanCredit;

fn main() {
    let opts = Options::from_env();
    let mut rng = opts.rng(0);
    let data = GermanCredit::generate(&mut rng);
    let t = data.table_i();

    let rows = [
        "< 35 - female",
        "< 35 - male",
        ">= 35 - female",
        ">= 35 - male",
    ];
    let mut table = Table::new(vec![
        "Age-Sex".into(),
        "free".into(),
        "own".into(),
        "rent".into(),
        "Total".into(),
    ])
    .with_title("Table I: group distribution (Age-Sex x Housing), synthetic German Credit");

    let mut col_totals = [0usize; 3];
    for (r, label) in rows.iter().enumerate() {
        let total: usize = t[r].iter().sum();
        for c in 0..3 {
            col_totals[c] += t[r][c];
        }
        table.add_row(vec![
            label.to_string(),
            t[r][0].to_string(),
            t[r][1].to_string(),
            t[r][2].to_string(),
            total.to_string(),
        ]);
    }
    table.add_row(vec![
        "Total".into(),
        col_totals[0].to_string(),
        col_totals[1].to_string(),
        col_totals[2].to_string(),
        col_totals.iter().sum::<usize>().to_string(),
    ]);
    opts.print_table(&table);

    assert_eq!(t, TABLE_I, "generator deviated from the paper's Table I");
    println!("exact match with the paper's Table I: yes");
}
