//! The German-Credit evaluation pipeline shared by Figs. 5, 6 and 7 —
//! re-expressed as **job specs executed on the engine core**.
//!
//! Per repetition (15 at paper scale):
//!
//! 1. sample `n` records from the German Credit dataset (synthetic, or
//!    streamed from disk by the caller);
//! 2. build one [`RankJob`] chunk per algorithm — DetConstSort,
//!    ApproxMultiValuedIPF, the ILP/DP, Mallows (1 sample), Mallows
//!    (best of 15 by NDCG) — in the panel's configuration
//!    (θ ∈ {0.5, 1}, constraint noise σ ∈ {0, 1}) via [`cell_job`];
//! 3. execute every chunk through the engine's algorithm
//!    [`Registry`] — the same `RankJob → RankResult` core behind
//!    `POST /rank` and `POST /jobs` — so experiment cells and served
//!    requests are literally the same computation;
//! 4. record, per output ranking:
//!    * `% P-fair positions` w.r.t. Sex-Age (Fig. 5, known attribute),
//!    * `% P-fair positions` w.r.t. Housing (Fig. 6, unknown attribute),
//!    * NDCG against the credit amounts (Fig. 7).

use fair_baselines as baselines;
use fair_datasets::GermanCredit;
use fairness_metrics::{infeasible, FairnessBounds};
use fairrank_engine::job::{JobInput, JobParams, RankJob};
use fairrank_engine::registry::Registry;
use fairrank_engine::tables::ExecContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranking_core::quality;
use ranking_core::Permutation;

/// The algorithms evaluated in Figs. 5–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The weakly-fair input ranking itself (reference row).
    WeaklyFairInput,
    /// DetConstSort (Geyik et al.).
    DetConstSort,
    /// ApproxMultiValuedIPF (Wei et al.).
    ApproxIpf,
    /// The DCG-optimal ILP (via the exact DP solver).
    Ilp,
    /// Algorithm 1, single Mallows sample.
    MallowsSingle,
    /// Algorithm 1, best of 15 samples by NDCG.
    MallowsBestOf15,
}

impl Algorithm {
    /// All algorithms in display order.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::WeaklyFairInput,
            Algorithm::DetConstSort,
            Algorithm::ApproxIpf,
            Algorithm::Ilp,
            Algorithm::MallowsSingle,
            Algorithm::MallowsBestOf15,
        ]
    }

    /// Short column label.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::WeaklyFairInput => "input",
            Algorithm::DetConstSort => "DetConstSort",
            Algorithm::ApproxIpf => "ApproxIPF",
            Algorithm::Ilp => "ILP",
            Algorithm::MallowsSingle => "Mallows(1)",
            Algorithm::MallowsBestOf15 => "Mallows(15)",
        }
    }
}

/// One panel of Figs. 5–7 (a θ/σ combination).
#[derive(Debug, Clone, Copy)]
pub struct Panel {
    /// Mallows dispersion θ.
    pub theta: f64,
    /// Constraint-noise standard deviation σ.
    pub noise_sd: f64,
}

impl Panel {
    /// The four panels (a)–(d) of the paper's Figs. 5–7.
    pub fn paper_panels() -> [Panel; 4] {
        [
            Panel {
                theta: 0.5,
                noise_sd: 0.0,
            },
            Panel {
                theta: 1.0,
                noise_sd: 0.0,
            },
            Panel {
                theta: 0.5,
                noise_sd: 1.0,
            },
            Panel {
                theta: 1.0,
                noise_sd: 1.0,
            },
        ]
    }

    /// Panel caption, e.g. `θ = 0.5, σ = 1`.
    pub fn caption(&self) -> String {
        if self.noise_sd == 0.0 {
            format!("theta = {}, no constraint noise", self.theta)
        } else {
            format!(
                "theta = {}, constraint noise sigma = {}",
                self.theta, self.noise_sd
            )
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Ranking sizes to sweep (paper: 10, 20, …, 100).
    pub sizes: Vec<usize>,
    /// Repetitions per size (paper: 15).
    pub repetitions: usize,
    /// Samples for the best-of Mallows variant (paper: 15).
    pub mallows_samples: usize,
}

impl PipelineConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        PipelineConfig {
            sizes: (1..=10).map(|i| i * 10).collect(),
            repetitions: 15,
            mallows_samples: 15,
        }
    }

    /// Quick configuration for smoke runs and benches.
    pub fn quick() -> Self {
        PipelineConfig {
            sizes: vec![10, 20, 30, 40, 50],
            repetitions: 5,
            mallows_samples: 15,
        }
    }
}

/// Per-(size, algorithm) raw measurements across repetitions.
#[derive(Debug, Clone, Default)]
pub struct Measurements {
    /// `% P-fair positions` w.r.t. the known Sex-Age attribute.
    pub ppfair_known: Vec<f64>,
    /// `% P-fair positions` w.r.t. the unknown Housing attribute.
    pub ppfair_unknown: Vec<f64>,
    /// NDCG against credit amounts.
    pub ndcg: Vec<f64>,
}

/// Results of one panel: `per_size[size_idx][algorithm_idx]`.
#[derive(Debug, Clone)]
pub struct PanelResults {
    /// The sizes swept.
    pub sizes: Vec<usize>,
    /// Raw measurements per size per algorithm (see [`Algorithm::all`]).
    pub per_size: Vec<Vec<Measurements>>,
    /// Number of repetitions where the exact ILP was infeasible and fell
    /// back to the input ranking (expected 0; tracked for transparency).
    pub ilp_fallbacks: usize,
}

/// Build the [`RankJob`] chunk for one experiment cell — the same job
/// shape `POST /rank` and `POST /jobs` accept, so an experiment cell
/// can be served, queued, cached and cancelled like any other engine
/// work. `groups` is the *known* attribute column; the unknown
/// attribute never enters the job, mirroring the paper's setup.
pub fn cell_job(
    alg: Algorithm,
    scores: Vec<f64>,
    groups: Vec<usize>,
    panel: Panel,
    mallows_samples: usize,
    seed: u64,
) -> RankJob {
    let (algorithm, samples) = match alg {
        Algorithm::WeaklyFairInput => ("weakly-fair", 1),
        Algorithm::DetConstSort => ("detconstsort", 1),
        Algorithm::ApproxIpf => ("ipf", 1),
        Algorithm::Ilp => ("ilp", 1),
        Algorithm::MallowsSingle => ("mallows", 1),
        Algorithm::MallowsBestOf15 => ("mallows", mallows_samples),
    };
    RankJob {
        algorithm: algorithm.to_string(),
        input: JobInput::Scores { scores, groups },
        params: JobParams {
            theta: panel.theta,
            samples,
            // exact proportional bounds, as the paper's pipeline uses
            tolerance: 0.0,
            noise_sd: panel.noise_sd,
            seed,
            ..JobParams::default()
        },
    }
}

/// Run one panel of the German-Credit pipeline through the engine's
/// algorithm registry (one [`RankJob`] per cell, executed on the same
/// core as the HTTP endpoints).
pub fn run_panel(
    data: &GermanCredit,
    config: &PipelineConfig,
    panel: Panel,
    rng: &mut StdRng,
) -> PanelResults {
    let algorithms = Algorithm::all();
    let registry = Registry::standard();
    let ctx = ExecContext::default();
    let mut per_size = Vec::with_capacity(config.sizes.len());
    let mut ilp_fallbacks = 0usize;

    let all_scores = data.credit_amounts();
    let sex_age = data.sex_age_groups();
    let housing = data.housing_groups();

    for &n in &config.sizes {
        let mut cell: Vec<Measurements> = vec![Measurements::default(); algorithms.len()];
        for _rep in 0..config.repetitions {
            let idx = data.sample_indices(n, rng);
            let scores: Vec<f64> = idx.iter().map(|&i| all_scores[i]).collect();
            let known = sex_age.subset(&idx);
            let unknown = housing.subset(&idx);
            let known_bounds = FairnessBounds::from_assignment(&known);
            let unknown_bounds = FairnessBounds::from_assignment(&unknown);

            let input = baselines::weakly_fair_ranking(&scores, &known, &known_bounds);

            for (a_idx, alg) in algorithms.iter().enumerate() {
                let seed: u64 = rng.random();
                let job = cell_job(
                    *alg,
                    scores.clone(),
                    known.as_slice().to_vec(),
                    panel,
                    config.mallows_samples,
                    seed,
                );
                let algorithm = registry.get(&job.algorithm).expect("registered algorithm");
                // same per-job seeding discipline as `Engine::submit`
                let mut job_rng = StdRng::seed_from_u64(seed);
                let ranking = match algorithm.run(&job, &ctx, &mut job_rng) {
                    Ok(result) => Permutation::from_order(result.ranking)
                        .expect("registry returns permutations"),
                    Err(_) if *alg == Algorithm::Ilp => {
                        // noisy constraints can be infeasible: fall
                        // back to the input ranking, as the paper does
                        ilp_fallbacks += 1;
                        input.clone()
                    }
                    Err(e) => panic!("{}: {e}", alg.label()),
                };
                let m = &mut cell[a_idx];
                m.ppfair_known.push(
                    infeasible::pfair_percentage(&ranking, &known, &known_bounds)
                        .expect("consistent shapes"),
                );
                m.ppfair_unknown.push(
                    infeasible::pfair_percentage(&ranking, &unknown, &unknown_bounds)
                        .expect("consistent shapes"),
                );
                m.ndcg
                    .push(quality::ndcg(&ranking, &scores).expect("consistent shapes"));
            }
        }
        per_size.push(cell);
    }
    PanelResults {
        sizes: config.sizes.clone(),
        per_size,
        ilp_fallbacks,
    }
}

/// Which measurement a figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fig. 5: `% P-fair positions` w.r.t. the known Sex-Age attribute
    /// (median, as in the paper).
    PpfairKnown,
    /// Fig. 6: `% P-fair positions` w.r.t. the unknown Housing attribute
    /// (median).
    PpfairUnknown,
    /// Fig. 7: NDCG of the output rankings (mean ± std).
    Ndcg,
}

impl Metric {
    fn select<'m>(&self, m: &'m Measurements) -> &'m [f64] {
        match self {
            Metric::PpfairKnown => &m.ppfair_known,
            Metric::PpfairUnknown => &m.ppfair_unknown,
            Metric::Ndcg => &m.ndcg,
        }
    }

    fn statistic(&self) -> eval_stats::Statistic {
        match self {
            Metric::Ndcg => eval_stats::Statistic::Mean,
            _ => eval_stats::Statistic::Median,
        }
    }

    fn decimals(&self) -> usize {
        match self {
            Metric::Ndcg => 4,
            _ => 1,
        }
    }
}

/// Run all four paper panels and print one table per panel for the given
/// metric — the shared driver behind the `fig5`, `fig6` and `fig7`
/// binaries.
pub fn run_and_print(opts: &crate::Options, metric: Metric, figure_name: &str) {
    use eval_stats::table::{pm, Table};

    let config = if opts.full {
        PipelineConfig::paper()
    } else {
        PipelineConfig::quick()
    };
    println!(
        "{figure_name}: sizes {:?}, {} repetitions, bootstrap resamples {}\n",
        config.sizes,
        config.repetitions,
        opts.bootstrap_n()
    );

    let mut data_rng = opts.rng(0xDA7A);
    let data = GermanCredit::generate(&mut data_rng);

    for (p_idx, panel) in Panel::paper_panels().into_iter().enumerate() {
        let mut rng = opts.rng(0x5000 | p_idx as u64);
        let results = run_panel(&data, &config, panel, &mut rng);

        let mut headers = vec!["n".to_string()];
        headers.extend(Algorithm::all().iter().map(|a| a.label().to_string()));
        let mut table = Table::new(headers).with_title(format!(
            "Panel ({}): {}",
            (b'a' + p_idx as u8) as char,
            panel.caption()
        ));

        for (s_idx, &n) in results.sizes.iter().enumerate() {
            let mut row = vec![n.to_string()];
            for (a_idx, _) in Algorithm::all().iter().enumerate() {
                let values = metric.select(&results.per_size[s_idx][a_idx]);
                let stream = (p_idx as u64) << 16 | (s_idx as u64) << 8 | a_idx as u64;
                let ci = opts.ci(values, metric.statistic(), stream);
                row.push(pm(ci.point, ci.half_width(), metric.decimals()));
            }
            table.add_row(row);
        }
        opts.print_table(&table);
        if results.ilp_fallbacks > 0 {
            println!(
                "note: ILP infeasible fallbacks in this panel: {}",
                results.ilp_fallbacks
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            sizes: vec![10, 20],
            repetitions: 2,
            mallows_samples: 3,
        }
    }

    #[test]
    fn panel_produces_all_measurements() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = GermanCredit::generate(&mut rng);
        let res = run_panel(
            &data,
            &tiny_config(),
            Panel {
                theta: 1.0,
                noise_sd: 0.0,
            },
            &mut rng,
        );
        assert_eq!(res.sizes, vec![10, 20]);
        assert_eq!(res.per_size.len(), 2);
        for cell in &res.per_size {
            assert_eq!(cell.len(), Algorithm::all().len());
            for m in cell {
                assert_eq!(m.ppfair_known.len(), 2);
                assert_eq!(m.ppfair_unknown.len(), 2);
                assert_eq!(m.ndcg.len(), 2);
                for &v in &m.ndcg {
                    assert!((0.0..=1.0 + 1e-9).contains(&v));
                }
                for &v in m.ppfair_known.iter().chain(&m.ppfair_unknown) {
                    assert!((0.0..=100.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn ilp_row_dominates_ndcg_without_noise() {
        // the exact DCG-optimal fair ranking cannot lose to the other
        // *fairness-enforcing* algorithms on NDCG (Mallows may exceed it
        // since Mallows does not enforce the constraints)
        let mut rng = StdRng::seed_from_u64(2);
        let data = GermanCredit::generate(&mut rng);
        let res = run_panel(
            &data,
            &tiny_config(),
            Panel {
                theta: 1.0,
                noise_sd: 0.0,
            },
            &mut rng,
        );
        assert_eq!(
            res.ilp_fallbacks, 0,
            "exact proportional bounds must be feasible"
        );
        for cell in &res.per_size {
            let ilp_mean = eval_stats::stats::mean(&cell[3].ndcg);
            let ipf_mean = eval_stats::stats::mean(&cell[2].ndcg);
            assert!(
                ilp_mean + 1e-9 >= ipf_mean,
                "ILP {ilp_mean} vs IPF {ipf_mean}"
            );
        }
    }

    #[test]
    fn noisy_panel_runs() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = GermanCredit::generate(&mut rng);
        let res = run_panel(
            &data,
            &tiny_config(),
            Panel {
                theta: 0.5,
                noise_sd: 1.0,
            },
            &mut rng,
        );
        assert_eq!(res.per_size.len(), 2);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = Algorithm::all()
            .iter()
            .map(super::Algorithm::label)
            .collect();
        assert_eq!(labels.len(), Algorithm::all().len());
    }
}
