//! Shared harness for the figure/table binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper. They all accept:
//!
//! * `--full` — run at paper scale (1000 bootstrap resamples, all sweep
//!   points); the default is a quick mode that finishes in seconds while
//!   preserving every qualitative shape;
//! * `--seed <u64>` — master RNG seed (default 42);
//! * `--csv` — emit CSV instead of aligned text tables.
//!
//! The German-Credit pipeline shared by Figs. 5–7 lives in
//! [`credit_pipeline`].

#![forbid(unsafe_code)]

pub mod credit_pipeline;

use eval_stats::{bootstrap_ci, BootstrapCi, Statistic};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Paper-scale run (vs quick default).
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Emit CSV.
    pub csv: bool,
}

impl Options {
    /// Parse from `std::env::args` (ignores unknown flags). Prefer
    /// `fairrank experiment`, which runs the same pipeline as an
    /// engine batch job with proper flag validation; this parser stays
    /// for the per-figure binaries.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Parse an explicit token stream (ignores unknown flags).
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Options {
        let mut opts = Options {
            full: false,
            seed: 42,
            csv: false,
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => opts.full = true,
                "--csv" => opts.csv = true,
                "--seed" => {
                    if let Some(v) = args.next() {
                        opts.seed = v.parse().unwrap_or(opts.seed);
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// Bootstrap resamples: 1000 at paper scale, 200 quick.
    pub fn bootstrap_n(&self) -> usize {
        if self.full {
            1000
        } else {
            200
        }
    }

    /// Monte-Carlo repetitions for the synthetic experiments.
    pub fn mc_reps(&self) -> usize {
        if self.full {
            1000
        } else {
            200
        }
    }

    /// Fresh RNG derived from the master seed and a stream id, so each
    /// sweep point is independent yet reproducible.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream),
        )
    }

    /// Bootstrap CI with the configured resample count (95 %).
    pub fn ci(&self, data: &[f64], stat: Statistic, stream: u64) -> BootstrapCi {
        let mut rng = self.rng(stream ^ 0xB007_u64);
        bootstrap_ci(data, stat, self.bootstrap_n(), 0.95, &mut rng)
    }

    /// Render a table either as text or CSV per `--csv`.
    pub fn print_table(&self, table: &eval_stats::table::Table) {
        if self.csv {
            print!("{}", table.render_csv());
        } else {
            println!("{}", table.render());
        }
    }
}

/// θ sweep used by the synthetic figures (Figs. 1, 3, 4).
pub fn theta_sweep(full: bool) -> Vec<f64> {
    if full {
        vec![0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    } else {
        vec![0.1, 0.5, 1.0, 2.0, 4.0]
    }
}

/// δ sweep of Figs. 2–4 (`{0.0, 0.1, …, 1.0}`; quick mode thins it).
pub fn delta_sweep(full: bool) -> Vec<f64> {
    if full {
        (0..=10).map(|i| i as f64 / 10.0).collect()
    } else {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_sorted_and_nonempty() {
        for full in [false, true] {
            let t = theta_sweep(full);
            assert!(!t.is_empty());
            assert!(t.windows(2).all(|w| w[0] < w[1]));
            let d = delta_sweep(full);
            assert!(d.first() == Some(&0.0) && d.last() == Some(&1.0));
        }
    }

    #[test]
    fn rng_streams_differ() {
        use rand::RngExt;
        let o = Options {
            full: false,
            seed: 1,
            csv: false,
        };
        let a: u64 = o.rng(0).random();
        let b: u64 = o.rng(1).random();
        assert_ne!(a, b);
    }
}
