//! Per-group representation bounds (the paper's `α⃗` and `β⃗`).

use crate::{FairnessError, GroupAssignment, Result};

/// Proportional representation bounds for `g` groups.
///
/// For a prefix of length `k`, group `p` must contribute at least
/// `⌊lower[p]·k⌋` and at most `⌈upper[p]·k⌉` items. In the paper's
/// notation `lower = β⃗` and `upper = α⃗` (see the convention note on the
/// crate root).
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessBounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl FairnessBounds {
    /// Build from explicit per-group proportions. Validates
    /// `0 ≤ lower[p] ≤ upper[p] ≤ 1` for every group.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Result<Self> {
        if lower.len() != upper.len() {
            return Err(FairnessError::BoundsShapeMismatch {
                got: lower.len(),
                expected: upper.len(),
            });
        }
        for (p, (&lo, &hi)) in lower.iter().zip(&upper).enumerate() {
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                return Err(FairnessError::InvalidProportion {
                    group: p,
                    lower: lo,
                    upper: hi,
                });
            }
        }
        Ok(FairnessBounds { lower, upper })
    }

    /// Equal lower and upper proportions `p⃗` (the common "match the
    /// population proportions" setting: at least `⌊p·k⌋`, at most
    /// `⌈p·k⌉` per prefix).
    pub fn exact(proportions: Vec<f64>) -> Result<Self> {
        FairnessBounds::new(proportions.clone(), proportions)
    }

    /// Bounds matching the empirical proportions of a group assignment.
    pub fn from_assignment(groups: &GroupAssignment) -> Self {
        let p = groups.proportions();
        FairnessBounds {
            lower: p.clone(),
            upper: p,
        }
    }

    /// Bounds matching the empirical proportions relaxed by ±`tolerance`
    /// (clamped to `[0, 1]`).
    pub fn from_assignment_with_tolerance(groups: &GroupAssignment, tolerance: f64) -> Self {
        let p = groups.proportions();
        FairnessBounds {
            lower: p.iter().map(|&x| (x - tolerance).max(0.0)).collect(),
            upper: p.iter().map(|&x| (x + tolerance).min(1.0)).collect(),
        }
    }

    /// Number of groups covered.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.lower.len()
    }

    /// Lower proportion `β_p`.
    #[inline]
    pub fn lower(&self, p: usize) -> f64 {
        self.lower[p]
    }

    /// Upper proportion `α_p`.
    #[inline]
    pub fn upper(&self, p: usize) -> f64 {
        self.upper[p]
    }

    /// Integer lower bound for group `p` in a prefix of length `k`:
    /// `⌊β_p·k⌋`.
    #[inline]
    pub fn min_count(&self, p: usize, k: usize) -> usize {
        (self.lower[p] * k as f64).floor() as usize
    }

    /// Integer upper bound for group `p` in a prefix of length `k`:
    /// `⌈α_p·k⌉`.
    #[inline]
    pub fn max_count(&self, p: usize, k: usize) -> usize {
        (self.upper[p] * k as f64).ceil() as usize
    }

    /// Compile the integer bound-*step* tables for prefixes `1..=n`:
    /// the sorted event list of prefixes where `⌊β_p·k⌋` / `⌈α_p·k⌉`
    /// actually increment. Both are non-decreasing in `k`, so replaying
    /// the events reconstructs [`FairnessBounds::tables`] exactly —
    /// hot evaluators (the compiled infeasible-index kernel) track the
    /// bounds with `O(steps)` integer increments instead of `O(n·g)`
    /// float multiply/floor/ceil per sample.
    pub fn steps(&self, n: usize) -> BoundSteps {
        let g = self.num_groups();
        let mut min_steps = Vec::new();
        let mut max_steps = Vec::new();
        let mut cur_min = vec![0usize; g];
        let mut cur_max = vec![0usize; g];
        for k in 1..=n {
            for p in 0..g {
                // derived through the very same float functions the
                // naive evaluator calls, so replay is exactly identical
                let mn = self.min_count(p, k);
                for _ in cur_min[p]..mn {
                    min_steps.push((k as u32, p as u32));
                }
                cur_min[p] = mn;
                let mx = self.max_count(p, k);
                for _ in cur_max[p]..mx {
                    max_steps.push((k as u32, p as u32));
                }
                cur_max[p] = mx;
            }
        }
        BoundSteps {
            n,
            num_groups: g,
            min_steps,
            max_steps,
        }
    }

    /// Materialize the integer bound tables for prefixes `1..=n`:
    /// `(min[k-1][p], max[k-1][p])`. Used by solvers that want to perturb
    /// the constraints (the paper's noisy-constraint experiments).
    pub fn tables(&self, n: usize) -> BoundTables {
        let g = self.num_groups();
        let mut min = vec![vec![0usize; g]; n];
        let mut max = vec![vec![0usize; g]; n];
        for k in 1..=n {
            for p in 0..g {
                min[k - 1][p] = self.min_count(p, k);
                max[k - 1][p] = self.max_count(p, k);
            }
        }
        BoundTables { min, max }
    }

    /// Whether the integer bounds admit *some* assignment of counts for a
    /// full ranking of `n` items with the given group sizes (a quick
    /// necessary check: `Σ_p min_p(k) ≤ k ≤ Σ_p min(max_p(k), size_p)`
    /// for all k, and `min_p(n) ≤ size_p`).
    pub fn is_plausibly_feasible(&self, groups: &GroupAssignment) -> bool {
        let sizes = groups.group_sizes();
        let n = groups.len();
        for k in 1..=n {
            let mut lo_sum = 0usize;
            let mut hi_sum = 0usize;
            for p in 0..self.num_groups() {
                lo_sum += self.min_count(p, k).min(sizes[p]);
                hi_sum += self.max_count(p, k).min(sizes[p]);
                if self.min_count(p, k) > sizes[p] {
                    return false;
                }
            }
            if lo_sum > k || hi_sum < k {
                return false;
            }
        }
        true
    }
}

/// Explicit integer bound tables for prefixes `1..=n`, as produced by
/// [`FairnessBounds::tables`]. `min[k-1][p]` / `max[k-1][p]` bound the
/// count of group `p` in the length-`k` prefix. Solvers accept these so
/// that noisy variants can perturb individual entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundTables {
    /// Per-prefix minimum counts.
    pub min: Vec<Vec<usize>>,
    /// Per-prefix maximum counts.
    pub max: Vec<Vec<usize>>,
}

impl BoundTables {
    /// Number of prefixes covered (= ranking length).
    pub fn len(&self) -> usize {
        self.min.len()
    }

    /// True when no prefixes are covered.
    pub fn is_empty(&self) -> bool {
        self.min.is_empty()
    }

    /// Clamp every entry to be consistent: `min ≤ max`, `min ≤ k`,
    /// monotone repairs are **not** applied — callers that add noise use
    /// this to keep tables well-formed without hiding the noise.
    pub fn clamp(&mut self) {
        for (k, (min_row, max_row)) in self.min.iter_mut().zip(self.max.iter_mut()).enumerate() {
            let prefix = k + 1;
            for (mn, mx) in min_row.iter_mut().zip(max_row.iter_mut()) {
                *mn = (*mn).min(prefix);
                *mx = (*mx).min(prefix).max(*mn);
            }
        }
    }
}

/// Compiled bound-step event lists, as produced by
/// [`FairnessBounds::steps`].
///
/// `min_steps` / `max_steps` hold `(k, p)` pairs sorted by `k` (the
/// order they were emitted): at prefix `k`, the integer lower (resp.
/// upper) bound of group `p` increments by one. A jump of `d > 1`
/// between consecutive prefixes (possible only through float rounding
/// of extreme proportions) is recorded as `d` consecutive pairs, so
/// replaying every event reconstructs the bounds exactly.
///
/// Total events are `Σ_p ⌊β_p·n⌋ + Σ_p ⌈α_p·n⌉ ≤ 2·n·g` in the worst
/// case but `O(n)` for proportions summing to ≈ 1 — the common case —
/// which is what makes an event-driven evaluator `O(n + steps)`
/// amortized instead of `O(n·g)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundSteps {
    n: usize,
    num_groups: usize,
    min_steps: Vec<(u32, u32)>,
    max_steps: Vec<(u32, u32)>,
}

impl BoundSteps {
    /// Number of prefixes covered (= ranking length).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of groups covered.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Lower-bound increment events `(k, p)`, sorted by `k`.
    pub fn min_steps(&self) -> &[(u32, u32)] {
        &self.min_steps
    }

    /// Upper-bound increment events `(k, p)`, sorted by `k`.
    pub fn max_steps(&self) -> &[(u32, u32)] {
        &self.max_steps
    }

    /// Replay the events into explicit [`BoundTables`] — the oracle
    /// check that compilation lost nothing: this must equal
    /// [`FairnessBounds::tables`] for the same `(bounds, n)`.
    pub fn materialize(&self) -> BoundTables {
        let g = self.num_groups;
        let mut min = vec![vec![0usize; g]; self.n];
        let mut max = vec![vec![0usize; g]; self.n];
        let mut cur_min = vec![0usize; g];
        let mut cur_max = vec![0usize; g];
        let mut mi = 0usize;
        let mut xi = 0usize;
        for k in 1..=self.n {
            while mi < self.min_steps.len() && self.min_steps[mi].0 as usize == k {
                cur_min[self.min_steps[mi].1 as usize] += 1;
                mi += 1;
            }
            while xi < self.max_steps.len() && self.max_steps[xi].0 as usize == k {
                cur_max[self.max_steps[xi].1 as usize] += 1;
                xi += 1;
            }
            min[k - 1].copy_from_slice(&cur_min);
            max[k - 1].copy_from_slice(&cur_max);
        }
        BoundTables { min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shapes() {
        assert!(FairnessBounds::new(vec![0.1], vec![0.5, 0.6]).is_err());
    }

    #[test]
    fn new_validates_ordering() {
        assert!(matches!(
            FairnessBounds::new(vec![0.7], vec![0.3]),
            Err(FairnessError::InvalidProportion { group: 0, .. })
        ));
    }

    #[test]
    fn new_validates_range() {
        assert!(FairnessBounds::new(vec![-0.1], vec![0.5]).is_err());
        assert!(FairnessBounds::new(vec![0.1], vec![1.5]).is_err());
    }

    #[test]
    fn integer_bounds_floor_and_ceil() {
        let b = FairnessBounds::exact(vec![0.5, 0.5]).unwrap();
        assert_eq!(b.min_count(0, 3), 1); // floor(1.5)
        assert_eq!(b.max_count(0, 3), 2); // ceil(1.5)
        assert_eq!(b.min_count(0, 4), 2);
        assert_eq!(b.max_count(0, 4), 2);
    }

    #[test]
    fn from_assignment_matches_proportions() {
        let g = GroupAssignment::new(vec![0, 0, 0, 1], 2).unwrap();
        let b = FairnessBounds::from_assignment(&g);
        assert!((b.lower(0) - 0.75).abs() < 1e-12);
        assert!((b.upper(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tolerance_clamps_to_unit_interval() {
        let g = GroupAssignment::new(vec![0, 1], 2).unwrap();
        let b = FairnessBounds::from_assignment_with_tolerance(&g, 0.8);
        assert_eq!(b.lower(0), 0.0);
        assert_eq!(b.upper(0), 1.0);
    }

    #[test]
    fn tables_match_pointwise_bounds() {
        let b = FairnessBounds::exact(vec![0.3, 0.7]).unwrap();
        let t = b.tables(10);
        assert_eq!(t.len(), 10);
        for k in 1..=10 {
            for p in 0..2 {
                assert_eq!(t.min[k - 1][p], b.min_count(p, k));
                assert_eq!(t.max[k - 1][p], b.max_count(p, k));
            }
        }
    }

    #[test]
    fn steps_materialize_to_the_exact_tables() {
        for bounds in [
            FairnessBounds::exact(vec![0.3, 0.7]).unwrap(),
            FairnessBounds::new(vec![0.0, 0.1, 0.25], vec![0.4, 0.6, 1.0]).unwrap(),
            FairnessBounds::exact(vec![1.0]).unwrap(),
            FairnessBounds::new(vec![0.0], vec![0.0]).unwrap(),
        ] {
            for n in [0usize, 1, 7, 40] {
                let steps = bounds.steps(n);
                assert_eq!(steps.n(), n);
                assert_eq!(steps.num_groups(), bounds.num_groups());
                assert_eq!(steps.materialize(), bounds.tables(n));
            }
        }
    }

    #[test]
    fn steps_are_sorted_by_prefix() {
        let b = FairnessBounds::new(vec![0.2, 0.3], vec![0.5, 0.9]).unwrap();
        let s = b.steps(25);
        assert!(s.min_steps().windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(s.max_steps().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn clamp_repairs_inverted_entries() {
        let b = FairnessBounds::exact(vec![0.5, 0.5]).unwrap();
        let mut t = b.tables(4);
        t.min[2][0] = 9; // corrupt: min beyond prefix length
        t.max[2][0] = 0;
        t.clamp();
        assert!(t.min[2][0] <= 3);
        assert!(t.max[2][0] >= t.min[2][0]);
    }

    #[test]
    fn plausible_feasibility_detects_oversized_lower_bound() {
        // group 0 has 1 member but lower bound demands half of every prefix
        let g = GroupAssignment::new(vec![0, 1, 1, 1], 2).unwrap();
        let b = FairnessBounds::new(vec![0.5, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(!b.is_plausibly_feasible(&g));
    }

    #[test]
    fn plausible_feasibility_accepts_exact_proportions() {
        let g = GroupAssignment::alternating(10);
        let b = FairnessBounds::from_assignment(&g);
        assert!(b.is_plausibly_feasible(&g));
    }
}
