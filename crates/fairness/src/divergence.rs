//! Divergence-based fairness measures: KL divergence, NDKL and skew.
//!
//! The paper's robustness claim is that Mallows randomization improves
//! fairness *across* measures, not only the infeasible index its ILP
//! optimizes. This module provides the divergence family used by the
//! literature the paper compares against:
//!
//! * [`ndkl`] — Normalized Discounted KL divergence of Geyik et al.
//!   (KDD'19, the DetConstSort paper): position-discounted KL divergence
//!   between each prefix's group distribution and the overall one.
//! * [`rkl`] — the rKL measure of Yang & Stoyanovich (SSDBM'17, the
//!   paper's reference \[29\]): KL divergence accumulated at coarse
//!   cut-points (every 10 positions by default).
//! * [`skew_at`], [`min_skew_at`], [`max_skew_at`] — the logarithmic
//!   over/under-representation of a group in the top-`k`.
//!
//! All divergences compare against the *overall* group distribution of
//! the ranked population, so a group with zero overall probability also
//! has zero prefix probability and the KL terms stay finite (the
//! `0·log(0/0) = 0` convention applies).

use crate::{FairnessError, GroupAssignment, Result};
use ranking_core::Permutation;

/// Kullback–Leibler divergence `Σ p_i · log₂(p_i / q_i)` between two
/// discrete distributions given as probability vectors.
///
/// Terms with `p_i = 0` contribute zero. A term with `p_i > 0` and
/// `q_i = 0` makes the divergence `+∞` (returned as `f64::INFINITY`).
///
/// Errors when the vectors differ in length.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    if p.len() != q.len() {
        return Err(FairnessError::BoundsShapeMismatch {
            got: q.len(),
            expected: p.len(),
        });
    }
    let mut total = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return Ok(f64::INFINITY);
            }
            total += pi * (pi / qi).log2();
        }
    }
    Ok(total)
}

/// Group distribution of the top-`k` prefix of `pi` as a probability
/// vector over all declared groups.
fn prefix_distribution(pi: &Permutation, groups: &GroupAssignment, k: usize) -> Vec<f64> {
    let k = k.min(pi.len()).max(1);
    let mut counts = vec![0usize; groups.num_groups()];
    for &item in pi.prefix(k) {
        counts[groups.group_of(item)] += 1;
    }
    counts.into_iter().map(|c| c as f64 / k as f64).collect()
}

fn check_lengths(pi: &Permutation, groups: &GroupAssignment) -> Result<()> {
    if pi.len() != groups.len() {
        return Err(FairnessError::LengthMismatch {
            ranking: pi.len(),
            groups: groups.len(),
        });
    }
    Ok(())
}

/// Normalized Discounted KL divergence (Geyik et al., KDD'19).
///
/// ```text
/// NDKL(π) = (1/Z) · Σ_{i=1}^{n} d_KL(D_{π,i} ‖ D) / log₂(i + 1)
/// Z       = Σ_{i=1}^{n} 1 / log₂(i + 1)
/// ```
///
/// where `D_{π,i}` is the group distribution of the top-`i` prefix and
/// `D` the overall group distribution. `0` means every prefix mirrors
/// the population exactly; larger is less fair. Always finite because
/// prefix support is contained in overall support.
///
/// ```
/// use fairness_metrics::{divergence::ndkl, GroupAssignment};
/// use ranking_core::Permutation;
/// // alternating groups mirror the population in every even prefix
/// let groups = GroupAssignment::new(vec![0, 1, 0, 1], 2).unwrap();
/// let alternating = Permutation::identity(4);
/// let segregated = Permutation::from_order(vec![0, 2, 1, 3]).unwrap();
/// assert!(ndkl(&alternating, &groups).unwrap() < ndkl(&segregated, &groups).unwrap());
/// ```
pub fn ndkl(pi: &Permutation, groups: &GroupAssignment) -> Result<f64> {
    check_lengths(pi, groups)?;
    if pi.is_empty() {
        return Ok(0.0);
    }
    let overall = groups.proportions();
    let mut counts = vec![0usize; groups.num_groups()];
    let mut total = 0.0;
    let mut z = 0.0;
    let mut dist = vec![0.0; groups.num_groups()];
    for (idx, &item) in pi.as_order().iter().enumerate() {
        counts[groups.group_of(item)] += 1;
        let k = (idx + 1) as f64;
        for (d, &c) in dist.iter_mut().zip(&counts) {
            *d = c as f64 / k;
        }
        let w = 1.0 / (k + 1.0).log2();
        total += w * kl_divergence(&dist, &overall)?;
        z += w;
    }
    Ok(total / z)
}

/// Cut-points at which [`rkl`] evaluates the prefix divergence: every
/// `step` positions plus the final position.
fn cutpoints(n: usize, step: usize) -> Vec<usize> {
    let step = step.max(1);
    let mut cuts: Vec<usize> = (step..=n).step_by(step).collect();
    if cuts.last() != Some(&n) && n > 0 {
        cuts.push(n);
    }
    cuts
}

/// rKL of Yang & Stoyanovich (the paper's reference \[29\]) with the
/// conventional cut-point step of 10.
///
/// See [`rkl_with_step`] for the definition.
pub fn rkl(pi: &Permutation, groups: &GroupAssignment) -> Result<f64> {
    rkl_with_step(pi, groups, 10)
}

/// rKL with configurable cut-point step:
///
/// ```text
/// rKL(π) = Σ_{i ∈ {step, 2·step, …, n}} d_KL(D_{π,i} ‖ D) / log₂(i + 1)
/// ```
///
/// Unlike [`ndkl`] this is **not** normalized — the original measure is
/// reported raw so that values are comparable with the fairness-in-
/// ranked-outputs literature. `0` is perfectly fair.
pub fn rkl_with_step(pi: &Permutation, groups: &GroupAssignment, step: usize) -> Result<f64> {
    check_lengths(pi, groups)?;
    if pi.is_empty() {
        return Ok(0.0);
    }
    let overall = groups.proportions();
    let mut total = 0.0;
    for k in cutpoints(pi.len(), step) {
        let dist = prefix_distribution(pi, groups, k);
        total += kl_divergence(&dist, &overall)? / ((k + 1) as f64).log2();
    }
    Ok(total)
}

/// Skew of `group` at `k` (Geyik et al.):
/// `log₂( (count_k(G, π)/k) / p_G )`, the logarithmic factor by which
/// the group is over- (`> 0`) or under-represented (`< 0`) in the
/// top-`k` relative to its overall proportion `p_G`.
///
/// Returns `-∞` when the group is absent from a prefix where it has
/// positive overall proportion, and `0` for a group that is empty
/// overall (it cannot be misrepresented).
pub fn skew_at(pi: &Permutation, groups: &GroupAssignment, k: usize, group: usize) -> Result<f64> {
    check_lengths(pi, groups)?;
    if group >= groups.num_groups() {
        return Err(FairnessError::InvalidGroup {
            group,
            num_groups: groups.num_groups(),
        });
    }
    let overall = groups.proportions()[group];
    if overall == 0.0 {
        return Ok(0.0);
    }
    let k = k.min(pi.len()).max(1);
    let count = groups.count_in_prefix(pi.as_order(), k, group);
    if count == 0 {
        return Ok(f64::NEG_INFINITY);
    }
    Ok(((count as f64 / k as f64) / overall).log2())
}

/// Minimum skew over all groups at `k` — the most under-represented
/// group's skew. `0` is ideal; very negative means some group is
/// heavily pushed out of the top-`k`.
pub fn min_skew_at(pi: &Permutation, groups: &GroupAssignment, k: usize) -> Result<f64> {
    fold_skew(pi, groups, k, f64::min, f64::INFINITY)
}

/// Maximum skew over all groups at `k` — the most over-represented
/// group's skew. `0` is ideal.
pub fn max_skew_at(pi: &Permutation, groups: &GroupAssignment, k: usize) -> Result<f64> {
    fold_skew(pi, groups, k, f64::max, f64::NEG_INFINITY)
}

fn fold_skew(
    pi: &Permutation,
    groups: &GroupAssignment,
    k: usize,
    combine: fn(f64, f64) -> f64,
    init: f64,
) -> Result<f64> {
    check_lengths(pi, groups)?;
    let mut acc = init;
    let mut any = false;
    for g in 0..groups.num_groups() {
        if groups.proportions()[g] > 0.0 {
            acc = combine(acc, skew_at(pi, groups, k, g)?);
            any = true;
        }
    }
    Ok(if any { acc } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_and_half(n: usize) -> GroupAssignment {
        GroupAssignment::binary_split(n, n / 2)
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = [0.25, 0.75];
        assert!((kl_divergence(&p, &p).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn kl_is_nonnegative() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!(kl_divergence(&p, &q).unwrap() > 0.0);
    }

    #[test]
    fn kl_infinite_when_support_escapes() {
        assert!(kl_divergence(&[1.0, 0.0], &[0.0, 1.0])
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn kl_zero_p_term_contributes_nothing() {
        let v = kl_divergence(&[0.0, 1.0], &[0.5, 0.5]).unwrap();
        assert!((v - 1.0).abs() < 1e-12); // 1·log2(1/0.5) = 1
    }

    #[test]
    fn kl_length_mismatch_errors() {
        assert!(kl_divergence(&[1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn ndkl_zero_for_perfectly_alternating() {
        // groups 0,1,0,1 and ranking 0,1,2,3: prefixes of even length are
        // exactly proportional; odd prefixes are not, so NDKL is small but
        // positive. Compare against full segregation.
        let groups = GroupAssignment::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let alternating = Permutation::identity(6);
        let segregated = Permutation::from_order(vec![0, 2, 4, 1, 3, 5]).unwrap();
        let a = ndkl(&alternating, &groups).unwrap();
        let s = ndkl(&segregated, &groups).unwrap();
        assert!(a < s, "alternating {a} vs segregated {s}");
        assert!(a >= 0.0 && s.is_finite());
    }

    #[test]
    fn ndkl_single_group_is_zero() {
        let groups = GroupAssignment::new(vec![0; 5], 1).unwrap();
        let pi = Permutation::identity(5);
        assert!((ndkl(&pi, &groups).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn ndkl_empty_ranking_is_zero() {
        let groups = GroupAssignment::new(vec![], 2).unwrap();
        let pi = Permutation::identity(0);
        assert_eq!(ndkl(&pi, &groups).unwrap(), 0.0);
    }

    #[test]
    fn ndkl_length_mismatch_errors() {
        let groups = half_and_half(4);
        let pi = Permutation::identity(6);
        assert!(ndkl(&pi, &groups).is_err());
    }

    #[test]
    fn rkl_cutpoints_include_final_position() {
        assert_eq!(cutpoints(25, 10), vec![10, 20, 25]);
        assert_eq!(cutpoints(20, 10), vec![10, 20]);
        assert_eq!(cutpoints(5, 10), vec![5]);
        assert_eq!(cutpoints(0, 10), Vec::<usize>::new());
    }

    #[test]
    fn rkl_orders_fair_before_unfair() {
        let groups = half_and_half(20);
        // identity: first half all group 0 → very unfair prefixes
        let unfair = Permutation::identity(20);
        let fair_order: Vec<usize> = (0..10).flat_map(|i| [i, i + 10]).collect();
        let fair = Permutation::from_order(fair_order).unwrap();
        let u = rkl(&unfair, &groups).unwrap();
        let f = rkl(&fair, &groups).unwrap();
        assert!(f < u, "fair {f} vs unfair {u}");
    }

    #[test]
    fn rkl_with_step_one_matches_unnormalized_ndkl_weighting() {
        // step 1 visits every prefix; sanity: nonnegative and finite.
        let groups = half_and_half(8);
        let pi = Permutation::identity(8);
        let v = rkl_with_step(&pi, &groups, 1).unwrap();
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn skew_balanced_prefix_is_zero() {
        let groups = GroupAssignment::new(vec![0, 1, 0, 1], 2).unwrap();
        let pi = Permutation::identity(4);
        assert!((skew_at(&pi, &groups, 4, 0).unwrap()).abs() < 1e-12);
        assert!((skew_at(&pi, &groups, 4, 1).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn skew_overrepresented_positive_underrepresented_negative() {
        let groups = half_and_half(10);
        let pi = Permutation::identity(10); // top-5 all group 0
        assert!(skew_at(&pi, &groups, 5, 0).unwrap() > 0.0);
        assert!(skew_at(&pi, &groups, 5, 1).unwrap().is_infinite());
        assert!(skew_at(&pi, &groups, 5, 1).unwrap() < 0.0);
    }

    #[test]
    fn skew_empty_group_is_zero() {
        let groups = GroupAssignment::new(vec![0, 0, 0], 2).unwrap();
        let pi = Permutation::identity(3);
        assert_eq!(skew_at(&pi, &groups, 2, 1).unwrap(), 0.0);
    }

    #[test]
    fn skew_invalid_group_errors() {
        let groups = half_and_half(4);
        let pi = Permutation::identity(4);
        assert!(skew_at(&pi, &groups, 2, 7).is_err());
    }

    #[test]
    fn min_max_skew_bracket_zero_for_any_prefix() {
        // some group is always ≥ its proportion and some ≤ in any prefix,
        // so min ≤ 0 ≤ max.
        let groups = GroupAssignment::new(vec![0, 1, 2, 0, 1, 2], 3).unwrap();
        let pi = Permutation::from_order(vec![3, 1, 5, 0, 4, 2]).unwrap();
        for k in 1..=6 {
            let lo = min_skew_at(&pi, &groups, k).unwrap();
            let hi = max_skew_at(&pi, &groups, k).unwrap();
            assert!(lo <= 1e-12, "k={k} lo={lo}");
            assert!(hi >= -1e-12, "k={k} hi={hi}");
            assert!(lo <= hi);
        }
    }

    #[test]
    fn skew_of_full_ranking_is_zero() {
        let groups = GroupAssignment::new(vec![0, 1, 1, 0, 1], 2).unwrap();
        let pi = Permutation::from_order(vec![4, 2, 0, 1, 3]).unwrap();
        let n = pi.len();
        assert!((min_skew_at(&pi, &groups, n).unwrap()).abs() < 1e-12);
        assert!((max_skew_at(&pi, &groups, n).unwrap()).abs() < 1e-12);
    }
}
