//! Exposure-based fairness measures (Singh & Joachims, KDD'18 family).
//!
//! P-fairness constrains group *counts* per prefix; exposure measures
//! instead weigh each position by the attention it receives (the same
//! `1/log₂(1+i)` position bias that powers DCG) and ask whether groups
//! receive attention proportionally. The paper's robustness study
//! motivates evaluating a ranking under fairness measures it was *not*
//! optimized for — this module supplies that second family:
//!
//! * [`group_exposures`] — total position-bias attention per group;
//! * [`mean_group_exposures`] — attention per group member;
//! * [`exposure_parity_ratio`] — min/max ratio of mean exposures
//!   (demographic parity of exposure; `1` is perfect parity);
//! * [`disparate_treatment_ratio`] — min/max ratio of exposure-per-
//!   utility across groups (merit-adjusted parity).

use crate::{FairnessError, GroupAssignment, Result};
use ranking_core::quality::Discount;
use ranking_core::Permutation;

fn check_lengths(pi: &Permutation, groups: &GroupAssignment) -> Result<()> {
    if pi.len() != groups.len() {
        return Err(FairnessError::LengthMismatch {
            ranking: pi.len(),
            groups: groups.len(),
        });
    }
    Ok(())
}

/// Total exposure received by each group: the sum over its members of
/// the position bias `discount.at(rank)` at their (1-based) ranks.
pub fn group_exposures(
    pi: &Permutation,
    groups: &GroupAssignment,
    discount: Discount,
) -> Result<Vec<f64>> {
    check_lengths(pi, groups)?;
    let mut exposure = vec![0.0; groups.num_groups()];
    for (idx, &item) in pi.as_order().iter().enumerate() {
        exposure[groups.group_of(item)] += discount.at(idx + 1);
    }
    Ok(exposure)
}

/// Mean exposure per member of each group. Empty groups report `0`.
pub fn mean_group_exposures(
    pi: &Permutation,
    groups: &GroupAssignment,
    discount: Discount,
) -> Result<Vec<f64>> {
    let totals = group_exposures(pi, groups, discount)?;
    let sizes = groups.group_sizes();
    Ok(totals
        .into_iter()
        .zip(sizes)
        .map(|(e, s)| if s == 0 { 0.0 } else { e / s as f64 })
        .collect())
}

/// Demographic parity of exposure as a single ratio in `[0, 1]`:
/// the minimum mean group exposure divided by the maximum, over
/// non-empty groups. `1` means all groups receive identical average
/// attention; `0` means some group receives none.
///
/// Rankings with fewer than two non-empty groups are trivially fair
/// (`1`).
///
/// ```
/// use fairness_metrics::{exposure::exposure_parity_ratio, GroupAssignment};
/// use ranking_core::{quality::Discount, Permutation};
/// let groups = GroupAssignment::binary_split(4, 2);
/// // both group-0 items on top → group 1 under-exposed
/// let top_heavy = Permutation::identity(4);
/// let ratio = exposure_parity_ratio(&top_heavy, &groups, Discount::Log2).unwrap();
/// assert!(ratio < 1.0);
/// ```
pub fn exposure_parity_ratio(
    pi: &Permutation,
    groups: &GroupAssignment,
    discount: Discount,
) -> Result<f64> {
    let means = mean_group_exposures(pi, groups, discount)?;
    let sizes = groups.group_sizes();
    min_over_max(
        means
            .iter()
            .zip(&sizes)
            .filter(|(_, &s)| s > 0)
            .map(|(&m, _)| m),
    )
}

/// Disparate-treatment ratio: min/max over non-empty groups of
/// *exposure per unit of utility* `Exposure(G) / U(G)`, where `U(G)` is
/// the group's total score. `1` means attention is allocated exactly
/// proportionally to merit (the disparate-treatment constraint of Singh
/// & Joachims); smaller means some group is under-exposed relative to
/// its merit.
///
/// Groups with zero total utility are skipped (their merited exposure
/// is undefined); if fewer than two groups remain the ranking is
/// trivially fair (`1`). Errors when `scores` length mismatches.
pub fn disparate_treatment_ratio(
    pi: &Permutation,
    scores: &[f64],
    groups: &GroupAssignment,
    discount: Discount,
) -> Result<f64> {
    if scores.len() != pi.len() {
        return Err(FairnessError::LengthMismatch {
            ranking: pi.len(),
            groups: scores.len(),
        });
    }
    let exposures = group_exposures(pi, groups, discount)?;
    let mut utility = vec![0.0; groups.num_groups()];
    for (item, &s) in scores.iter().enumerate() {
        utility[groups.group_of(item)] += s;
    }
    min_over_max(
        exposures
            .iter()
            .zip(&utility)
            .filter(|(_, &u)| u > 0.0)
            .map(|(&e, &u)| e / u),
    )
}

/// min/max of an iterator of non-negative values; `1` when fewer than
/// two values (trivial parity) and `0` when the max is positive but the
/// min is zero.
fn min_over_max(values: impl Iterator<Item = f64>) -> Result<f64> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut count = 0usize;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
        count += 1;
    }
    if count < 2 || hi <= 0.0 {
        return Ok(1.0);
    }
    Ok(lo / hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposures_sum_to_total_discount_mass() {
        let groups = GroupAssignment::new(vec![0, 1, 0, 1, 1], 2).unwrap();
        let pi = Permutation::from_order(vec![2, 4, 0, 1, 3]).unwrap();
        let e = group_exposures(&pi, &groups, Discount::Log2).unwrap();
        let total: f64 = (1..=5).map(|i| Discount::Log2.at(i)).sum();
        assert!(((e[0] + e[1]) - total).abs() < 1e-12);
    }

    #[test]
    fn top_positions_carry_more_exposure() {
        let groups = GroupAssignment::binary_split(4, 2);
        let top_heavy = Permutation::identity(4); // group 0 at ranks 1–2
        let e = group_exposures(&top_heavy, &groups, Discount::Log2).unwrap();
        assert!(e[0] > e[1]);
    }

    #[test]
    fn mean_exposure_handles_unequal_sizes() {
        let groups = GroupAssignment::new(vec![0, 1, 1, 1], 2).unwrap();
        let pi = Permutation::identity(4);
        let m = mean_group_exposures(&pi, &groups, Discount::Log2).unwrap();
        // group 0 has its single member at rank 1 (exposure 1.0)
        assert!((m[0] - 1.0).abs() < 1e-12);
        assert!(m[1] < m[0]);
    }

    #[test]
    fn mean_exposure_empty_group_is_zero() {
        let groups = GroupAssignment::new(vec![0, 0], 2).unwrap();
        let pi = Permutation::identity(2);
        let m = mean_group_exposures(&pi, &groups, Discount::Log2).unwrap();
        assert_eq!(m[1], 0.0);
    }

    #[test]
    fn parity_ratio_one_for_symmetric_interleaving() {
        // 0,1 alternate and group sizes equal at even n with the *same*
        // rank multiset per group when we interleave twice symmetrically:
        // ranks {1,4} vs {2,3} are not equal-exposure, so build an exactly
        // symmetric case instead: two items, one per group.
        let groups = GroupAssignment::new(vec![0, 1], 2).unwrap();
        let pi = Permutation::identity(2);
        let r = exposure_parity_ratio(&pi, &groups, Discount::None).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parity_ratio_decreases_with_segregation() {
        let groups = GroupAssignment::binary_split(10, 5);
        let segregated = Permutation::identity(10);
        let interleaved =
            Permutation::from_order((0..5).flat_map(|i| [i, i + 5]).collect::<Vec<_>>()).unwrap();
        let rs = exposure_parity_ratio(&segregated, &groups, Discount::Log2).unwrap();
        let ri = exposure_parity_ratio(&interleaved, &groups, Discount::Log2).unwrap();
        assert!(rs < ri, "segregated {rs} vs interleaved {ri}");
        assert!(ri <= 1.0 + 1e-12);
    }

    #[test]
    fn parity_ratio_single_group_is_one() {
        let groups = GroupAssignment::new(vec![0; 4], 1).unwrap();
        let pi = Permutation::identity(4);
        assert_eq!(
            exposure_parity_ratio(&pi, &groups, Discount::Log2).unwrap(),
            1.0
        );
    }

    #[test]
    fn dtr_is_one_when_exposure_tracks_merit_exactly() {
        // Two items, equal scores, Discount::None → equal exposure and
        // equal utility per group.
        let groups = GroupAssignment::new(vec![0, 1], 2).unwrap();
        let pi = Permutation::identity(2);
        let dtr = disparate_treatment_ratio(&pi, &[1.0, 1.0], &groups, Discount::None).unwrap();
        assert!((dtr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dtr_penalizes_meritorious_group_buried_below() {
        // group 1 has all the merit but sits at the bottom.
        let groups = GroupAssignment::binary_split(6, 3);
        let scores = [0.1, 0.1, 0.1, 1.0, 1.0, 1.0];
        let buried = Permutation::identity(6); // low-merit group on top
        let ideal = Permutation::sorted_by_scores_desc(&scores);
        let d_buried =
            disparate_treatment_ratio(&buried, &scores, &groups, Discount::Log2).unwrap();
        let d_ideal = disparate_treatment_ratio(&ideal, &scores, &groups, Discount::Log2).unwrap();
        assert!(d_buried < d_ideal, "buried {d_buried} vs ideal {d_ideal}");
    }

    #[test]
    fn dtr_skips_zero_utility_groups() {
        let groups = GroupAssignment::binary_split(4, 2);
        let scores = [1.0, 1.0, 0.0, 0.0]; // group 1 has zero utility
        let pi = Permutation::identity(4);
        assert_eq!(
            disparate_treatment_ratio(&pi, &scores, &groups, Discount::Log2).unwrap(),
            1.0
        );
    }

    #[test]
    fn dtr_score_length_mismatch_errors() {
        let groups = GroupAssignment::binary_split(4, 2);
        let pi = Permutation::identity(4);
        assert!(disparate_treatment_ratio(&pi, &[1.0], &groups, Discount::Log2).is_err());
    }

    #[test]
    fn exposure_length_mismatch_errors() {
        let groups = GroupAssignment::binary_split(4, 2);
        let pi = Permutation::identity(5);
        assert!(group_exposures(&pi, &groups, Discount::Log2).is_err());
    }
}
