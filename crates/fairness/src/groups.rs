//! Protected-group assignments.

use crate::{FairnessError, Result};

/// Maps each item `i ∈ 0..n` to a protected group id `g ∈ 0..num_groups`.
///
/// Groups are dense integers; multi-valued attributes (e.g. the paper's
/// combined `Sex-Age` with four values) are encoded by enumerating the
/// attribute's values. Use [`GroupAssignment::combine`] to build the
/// product of two attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAssignment {
    groups: Vec<usize>,
    num_groups: usize,
}

impl GroupAssignment {
    /// Build from an explicit item → group vector.
    pub fn new(groups: Vec<usize>, num_groups: usize) -> Result<Self> {
        if let Some(&bad) = groups.iter().find(|&&g| g >= num_groups) {
            return Err(FairnessError::InvalidGroup {
                group: bad,
                num_groups,
            });
        }
        Ok(GroupAssignment { groups, num_groups })
    }

    /// Two equal-sized alternating groups `0, 1, 0, 1, …` over `n` items —
    /// the synthetic workload used by the paper's Figs. 1–4 (group of the
    /// item is its parity; callers re-map as needed).
    pub fn alternating(n: usize) -> Self {
        GroupAssignment {
            groups: (0..n).map(|i| i % 2).collect(),
            num_groups: 2,
        }
    }

    /// Binary split: items `0..first_len` in group 0, the rest in group 1.
    pub fn binary_split(n: usize, first_len: usize) -> Self {
        GroupAssignment {
            groups: (0..n).map(|i| usize::from(i >= first_len)).collect(),
            num_groups: 2,
        }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when there are no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of distinct groups (the paper's `g`).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Group of `item`.
    #[inline]
    pub fn group_of(&self, item: usize) -> usize {
        self.groups[item]
    }

    /// Item → group slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.groups
    }

    /// Size of each group.
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_groups];
        for &g in &self.groups {
            sizes[g] += 1;
        }
        sizes
    }

    /// Proportion of each group among all items (sums to 1 for non-empty
    /// assignments).
    pub fn proportions(&self) -> Vec<f64> {
        let n = self.groups.len().max(1) as f64;
        self.group_sizes()
            .into_iter()
            .map(|s| s as f64 / n)
            .collect()
    }

    /// Items belonging to `group`, in ascending item order.
    pub fn members(&self, group: usize) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(i, &g)| (g == group).then_some(i))
            .collect()
    }

    /// Product attribute: combines two assignments over the same items
    /// into one with `a.num_groups * b.num_groups` groups (the paper's
    /// `Sex − Age` construction).
    pub fn combine(a: &GroupAssignment, b: &GroupAssignment) -> Result<GroupAssignment> {
        if a.len() != b.len() {
            return Err(FairnessError::LengthMismatch {
                ranking: a.len(),
                groups: b.len(),
            });
        }
        let num_groups = a.num_groups * b.num_groups;
        let groups = a
            .groups
            .iter()
            .zip(&b.groups)
            .map(|(&ga, &gb)| ga * b.num_groups + gb)
            .collect();
        Ok(GroupAssignment { groups, num_groups })
    }

    /// Restrict the assignment to a subset of items (given by original
    /// item index), producing a re-indexed assignment over `0..subset.len()`
    /// with the same group ids.
    pub fn subset(&self, items: &[usize]) -> GroupAssignment {
        GroupAssignment {
            groups: items.iter().map(|&i| self.groups[i]).collect(),
            num_groups: self.num_groups,
        }
    }

    /// Count members of `group` among the first `k` entries of the ranking
    /// order (the paper's `count_k(G_p, π)`).
    pub fn count_in_prefix(&self, order: &[usize], k: usize, group: usize) -> usize {
        order[..k.min(order.len())]
            .iter()
            .filter(|&&item| self.groups[item] == group)
            .count()
    }

    /// Per-group counts over every prefix: `counts[k][p]` = members of
    /// group `p` among the first `k+1` ranked items. `O(n·g)` memory;
    /// the workhorse of the infeasible-index computation.
    pub fn prefix_counts(&self, order: &[usize]) -> Vec<Vec<usize>> {
        let mut running = vec![0usize; self.num_groups];
        let mut out = Vec::with_capacity(order.len());
        for &item in order {
            running[self.groups[item]] += 1;
            out.push(running.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range_group() {
        assert!(matches!(
            GroupAssignment::new(vec![0, 2], 2),
            Err(FairnessError::InvalidGroup { group: 2, .. })
        ));
    }

    #[test]
    fn alternating_has_equal_sizes() {
        let g = GroupAssignment::alternating(10);
        assert_eq!(g.group_sizes(), vec![5, 5]);
        assert_eq!(g.proportions(), vec![0.5, 0.5]);
    }

    #[test]
    fn binary_split_sizes() {
        let g = GroupAssignment::binary_split(7, 3);
        assert_eq!(g.group_sizes(), vec![3, 4]);
        assert_eq!(g.group_of(2), 0);
        assert_eq!(g.group_of(3), 1);
    }

    #[test]
    fn members_are_sorted() {
        let g = GroupAssignment::new(vec![1, 0, 1, 0], 2).unwrap();
        assert_eq!(g.members(0), vec![1, 3]);
        assert_eq!(g.members(1), vec![0, 2]);
    }

    #[test]
    fn combine_builds_product_attribute() {
        let sex = GroupAssignment::new(vec![0, 1, 0, 1], 2).unwrap();
        let age = GroupAssignment::new(vec![0, 0, 1, 1], 2).unwrap();
        let combined = GroupAssignment::combine(&sex, &age).unwrap();
        assert_eq!(combined.num_groups(), 4);
        assert_eq!(combined.as_slice(), &[0, 2, 1, 3]);
    }

    #[test]
    fn combine_length_mismatch_errors() {
        let a = GroupAssignment::alternating(4);
        let b = GroupAssignment::alternating(6);
        assert!(GroupAssignment::combine(&a, &b).is_err());
    }

    #[test]
    fn subset_preserves_group_ids() {
        let g = GroupAssignment::new(vec![0, 1, 2, 1], 3).unwrap();
        let s = g.subset(&[3, 0]);
        assert_eq!(s.as_slice(), &[1, 0]);
        assert_eq!(s.num_groups(), 3);
    }

    #[test]
    fn count_in_prefix_counts_correctly() {
        let g = GroupAssignment::new(vec![0, 1, 0, 1], 2).unwrap();
        let order = [1, 3, 0, 2]; // two group-1 items first
        assert_eq!(g.count_in_prefix(&order, 2, 1), 2);
        assert_eq!(g.count_in_prefix(&order, 2, 0), 0);
        assert_eq!(g.count_in_prefix(&order, 4, 0), 2);
        // k beyond length clamps
        assert_eq!(g.count_in_prefix(&order, 10, 1), 2);
    }

    #[test]
    fn prefix_counts_monotone_and_consistent() {
        let g = GroupAssignment::new(vec![0, 1, 0, 1, 0], 2).unwrap();
        let order = [4, 1, 0, 3, 2];
        let pc = g.prefix_counts(&order);
        assert_eq!(pc.len(), 5);
        for k in 0..5 {
            assert_eq!(pc[k][0] + pc[k][1], k + 1);
            assert_eq!(pc[k][0], g.count_in_prefix(&order, k + 1, 0));
        }
    }

    #[test]
    fn empty_assignment() {
        let g = GroupAssignment::new(vec![], 2).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.proportions(), vec![0.0, 0.0]);
    }
}
