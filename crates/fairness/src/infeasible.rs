//! Infeasible Index and P-fair position percentage (Definitions 3–4).
//!
//! Two evaluation paths produce identical integers:
//!
//! * [`infeasible_breakdown_naive`] — the direct Definition 3 scan:
//!   for every prefix `k` recompute `⌊β_p·k⌋` / `⌈α_p·k⌉` for all `g`
//!   groups (`O(n·g)` float multiply/floor/ceil per ranking). Kept as
//!   the independent oracle and the baseline the criterion-kernel
//!   bench measures against.
//! * [`CompiledInfeasible`] — bounds compiled once into
//!   [`BoundSteps`](crate::BoundSteps) event lists, then each ranking
//!   replays `O(n + steps)` integer increments while tracking the
//!   violating-group *counters* incrementally instead of rescanning
//!   all groups at every prefix. This is the hot path of the best-of-`m`
//!   selection loop, where one compile is amortized over `m` samples.

use crate::bounds::BoundSteps;
use crate::pfair::validate;
use crate::{FairnessBounds, GroupAssignment, Result};
use ranking_core::Permutation;

/// Lower and upper violation counts of Definition 3, kept separate so
/// experiments can report them individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfeasibleBreakdown {
    /// Number of prefixes where some group falls below `⌊β_p·k⌋`.
    pub lower_violations: usize,
    /// Number of prefixes where some group exceeds `⌈α_p·k⌉`.
    pub upper_violations: usize,
}

impl InfeasibleBreakdown {
    /// `TwoSidedInfInd = LowerViol + UpperViol`.
    pub fn total(&self) -> usize {
        self.lower_violations + self.upper_violations
    }
}

/// Definition 3 split into its two terms.
///
/// `LowerViol(π)` counts prefixes `k ∈ 1..=n` where **some** group's count
/// falls below its lower bound; `UpperViol(π)` counts prefixes where some
/// group exceeds its upper bound. A prefix can contribute to both terms.
pub fn infeasible_breakdown(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<InfeasibleBreakdown> {
    // one-shot callers skip the compile; repeated evaluation goes
    // through `InfeasibleEvaluator` / `CompiledInfeasible`
    infeasible_breakdown_naive(pi, groups, bounds)
}

/// The direct Definition 3 scan: recompute every group's float bounds
/// at every prefix, `O(n·g)` per ranking.
///
/// This is the reference path — [`CompiledInfeasible`] must produce the
/// same integers (pinned by unit and property tests), and the
/// `criterion_kernels` bench reports `infeasible_speedup` against it.
pub fn infeasible_breakdown_naive(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<InfeasibleBreakdown> {
    validate(pi, groups, bounds)?;
    let g = groups.num_groups();
    let mut running = vec![0usize; g];
    let mut lower = 0usize;
    let mut upper = 0usize;
    for (idx, &item) in pi.as_order().iter().enumerate() {
        running[groups.group_of(item)] += 1;
        let k = idx + 1;
        let mut lo_violated = false;
        let mut hi_violated = false;
        for p in 0..g {
            if running[p] < bounds.min_count(p, k) {
                lo_violated = true;
            }
            if running[p] > bounds.max_count(p, k) {
                hi_violated = true;
            }
        }
        lower += usize::from(lo_violated);
        upper += usize::from(hi_violated);
    }
    Ok(InfeasibleBreakdown {
        lower_violations: lower,
        upper_violations: upper,
    })
}

/// Bounds compiled to [`BoundSteps`] plus the per-scan scratch: the
/// event-driven infeasible-index kernel.
///
/// One compile (`O(n·g)`, the cost of a single naive evaluation) is
/// amortized over every ranking evaluated against the same
/// `(bounds, n)`. A scan then costs `O(n + steps)` with integer
/// compares only: instead of rescanning all `g` groups at each prefix,
/// it tracks *how many* groups currently violate their lower/upper
/// bound and updates those two counters on the (rare) transitions — a
/// bound stepping past a running count, or a placed item stepping its
/// group's count past a bound.
///
/// The scan is resumable position by position ([`CompiledInfeasible::begin`],
/// [`CompiledInfeasible::place`]) so the criterion kernels in
/// `fair_mallows` can fuse it with the NDCG scan and read
/// [`CompiledInfeasible::total`] mid-ranking as an exact lower bound
/// for early abandoning.
#[derive(Debug, Clone)]
pub struct CompiledInfeasible {
    steps: BoundSteps,
    running: Vec<u32>,
    cur_min: Vec<u32>,
    cur_max: Vec<u32>,
    min_pos: usize,
    max_pos: usize,
    lower_violators: u32,
    upper_violators: u32,
    lower: usize,
    upper: usize,
    k: u32,
}

impl CompiledInfeasible {
    /// Compile `bounds` for rankings of `n` items.
    pub fn compile(bounds: &FairnessBounds, n: usize) -> Self {
        let g = bounds.num_groups();
        CompiledInfeasible {
            steps: bounds.steps(n),
            running: vec![0; g],
            cur_min: vec![0; g],
            cur_max: vec![0; g],
            min_pos: 0,
            max_pos: 0,
            lower_violators: 0,
            upper_violators: 0,
            lower: 0,
            upper: 0,
            k: 0,
        }
    }

    /// Ranking length the kernel was compiled for.
    pub fn n(&self) -> usize {
        self.steps.n()
    }

    /// Number of groups the kernel was compiled for.
    pub fn num_groups(&self) -> usize {
        self.running.len()
    }

    /// Reset the scan state for a fresh ranking.
    pub fn begin(&mut self) {
        self.running.fill(0);
        self.cur_min.fill(0);
        self.cur_max.fill(0);
        self.min_pos = 0;
        self.max_pos = 0;
        self.lower_violators = 0;
        self.upper_violators = 0;
        self.lower = 0;
        self.upper = 0;
        self.k = 0;
    }

    /// Process the next ranked item (its group id) — extends the scanned
    /// prefix by one position and tallies its violations. Requires
    /// `group < num_groups()` and at most `n()` calls since
    /// [`CompiledInfeasible::begin`].
    #[inline]
    pub fn place(&mut self, group: usize) {
        self.k += 1;
        let k = self.k;
        // advance the integer bounds from prefix k−1 to prefix k; a
        // group newly outgrown by its lower bound starts violating, a
        // group caught up to by its upper bound stops
        let min_steps = self.steps.min_steps();
        while self.min_pos < min_steps.len() && min_steps[self.min_pos].0 == k {
            let p = min_steps[self.min_pos].1 as usize;
            self.lower_violators += u32::from(self.running[p] == self.cur_min[p]);
            self.cur_min[p] += 1;
            self.min_pos += 1;
        }
        let max_steps = self.steps.max_steps();
        while self.max_pos < max_steps.len() && max_steps[self.max_pos].0 == k {
            let p = max_steps[self.max_pos].1 as usize;
            self.upper_violators -= u32::from(self.running[p] == self.cur_max[p] + 1);
            self.cur_max[p] += 1;
            self.max_pos += 1;
        }
        // place the item: its group may satisfy its lower bound or
        // overshoot its upper bound
        self.lower_violators -= u32::from(self.running[group] + 1 == self.cur_min[group]);
        self.upper_violators += u32::from(self.running[group] == self.cur_max[group]);
        self.running[group] += 1;
        self.lower += usize::from(self.lower_violators > 0);
        self.upper += usize::from(self.upper_violators > 0);
    }

    /// Lower violations of the prefixes scanned so far.
    pub fn lower_violations(&self) -> usize {
        self.lower
    }

    /// Upper violations of the prefixes scanned so far.
    pub fn upper_violations(&self) -> usize {
        self.upper
    }

    /// Violations of the prefixes scanned so far. After `n` calls to
    /// [`CompiledInfeasible::place`] this is `TwoSidedInfInd(π)`;
    /// mid-scan it is an exact lower bound of the final value (the
    /// index only accumulates).
    pub fn total(&self) -> usize {
        self.lower + self.upper
    }

    /// Full-ranking breakdown: `begin` + `place` each item. Caller
    /// guarantees shape compatibility (see [`crate::pfair`] validation);
    /// the higher-level [`InfeasibleEvaluator`] checks it.
    pub fn breakdown(&mut self, pi: &Permutation, groups: &GroupAssignment) -> InfeasibleBreakdown {
        debug_assert_eq!(pi.len(), self.n());
        debug_assert_eq!(groups.num_groups(), self.num_groups());
        self.begin();
        let ids = groups.as_slice();
        for &item in pi.as_order() {
            self.place(ids[item]);
        }
        InfeasibleBreakdown {
            lower_violations: self.lower,
            upper_violations: self.upper,
        }
    }
}

/// Allocation-free infeasible-index evaluator for hot selection loops.
///
/// Compiles the bounds into a [`CompiledInfeasible`] kernel on first
/// use and caches it keyed on `(bounds, n)`, so a best-of-`m` loop (the
/// streaming Algorithm 1) pays the compile once and every evaluation
/// runs the `O(n + steps)` integer scan. Results are identical to the
/// free functions.
///
/// ```
/// use fairness_metrics::infeasible::{two_sided_infeasible_index, InfeasibleEvaluator};
/// use fairness_metrics::{FairnessBounds, GroupAssignment};
/// use ranking_core::Permutation;
///
/// let groups = GroupAssignment::binary_split(6, 3);
/// let bounds = FairnessBounds::from_assignment(&groups);
/// let pi = Permutation::identity(6);
/// let mut eval = InfeasibleEvaluator::new();
/// assert_eq!(
///     eval.index(&pi, &groups, &bounds).unwrap(),
///     two_sided_infeasible_index(&pi, &groups, &bounds).unwrap()
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct InfeasibleEvaluator {
    compiled: Option<(FairnessBounds, CompiledInfeasible)>,
}

impl InfeasibleEvaluator {
    /// Empty evaluator; the kernel is compiled on first use.
    pub fn new() -> Self {
        InfeasibleEvaluator::default()
    }

    /// Per-term violation counts of Definition 3, reusing the cached
    /// compiled kernel when `(bounds, n)` match the previous call.
    pub fn breakdown(
        &mut self,
        pi: &Permutation,
        groups: &GroupAssignment,
        bounds: &FairnessBounds,
    ) -> Result<InfeasibleBreakdown> {
        validate(pi, groups, bounds)?;
        let n = pi.len();
        let cached = self
            .compiled
            .as_ref()
            .is_some_and(|(b, c)| c.n() == n && b == bounds);
        if !cached {
            self.compiled = Some((bounds.clone(), CompiledInfeasible::compile(bounds, n)));
        }
        let (_, kernel) = self.compiled.as_mut().expect("compiled above");
        Ok(kernel.breakdown(pi, groups))
    }

    /// `TwoSidedInfInd(π)`, reusing the cached compiled kernel.
    pub fn index(
        &mut self,
        pi: &Permutation,
        groups: &GroupAssignment,
        bounds: &FairnessBounds,
    ) -> Result<usize> {
        Ok(self.breakdown(pi, groups, bounds)?.total())
    }
}

/// Definition 3 — `TwoSidedInfInd(π) ∈ [0, 2n]`.
pub fn two_sided_infeasible_index(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<usize> {
    Ok(infeasible_breakdown(pi, groups, bounds)?.total())
}

/// Definition 4 — percentage of P-fair positions:
/// `PPfair(π) = 100 · (1 − TwoSidedInfInd(π) / |π|)`.
///
/// Note that because a prefix can violate both bounds, the raw value can
/// in principle go negative; the paper reports it as a percentage of fair
/// positions, so we clamp at 0.
pub fn pfair_percentage(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<f64> {
    let n = pi.len();
    if n == 0 {
        return Ok(100.0);
    }
    let ii = two_sided_infeasible_index(pi, groups, bounds)?;
    Ok((100.0 * (1.0 - ii as f64 / n as f64)).max(0.0))
}

/// Convenience: infeasible index measured against bounds equal to the
/// groups' own proportions (the setting of the paper's synthetic
/// experiments, Figs. 1–4).
pub fn infeasible_index_proportional(pi: &Permutation, groups: &GroupAssignment) -> Result<usize> {
    let bounds = FairnessBounds::from_assignment(groups);
    two_sided_infeasible_index(pi, groups, &bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half() -> FairnessBounds {
        FairnessBounds::exact(vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn alternating_ranking_has_zero_index() {
        let g = GroupAssignment::alternating(10);
        let pi = Permutation::identity(10);
        assert_eq!(two_sided_infeasible_index(&pi, &g, &half()).unwrap(), 0);
    }

    #[test]
    fn fully_segregated_ranking_has_high_index() {
        // groups 0..5 then 5..10: prefixes 2..=5 violate lower bound of
        // group 1 and upper bound of group 0 where applicable
        let g = GroupAssignment::binary_split(10, 5);
        let pi = Permutation::identity(10);
        let b = infeasible_breakdown(&pi, &g, &half()).unwrap();
        assert!(b.lower_violations > 0);
        assert!(b.upper_violations > 0);
        assert!(b.total() >= 8, "got {}", b.total());
    }

    #[test]
    fn index_bounded_by_two_n() {
        let g = GroupAssignment::binary_split(8, 4);
        for pi in Permutation::enumerate_all(8).into_iter().step_by(997) {
            let ii = two_sided_infeasible_index(&pi, &g, &half()).unwrap();
            assert!(ii <= 16);
        }
    }

    #[test]
    fn known_small_example() {
        // n = 4, groups [0,0,1,1], ranking 0,1,2,3:
        // k=1: counts (1,0); min = floor(.5)=0 → ok; max = ceil(.5)=1 → ok
        // k=2: counts (2,0); min(1,1): group1 has 0 < 1 → lower viol;
        //       max: group0 has 2 > 1 → upper viol
        // k=3: counts (2,1); min=floor(1.5)=1 ok; max=ceil(1.5)=2 ok
        // k=4: counts (2,2) ok
        let g = GroupAssignment::binary_split(4, 2);
        let pi = Permutation::identity(4);
        let b = infeasible_breakdown(&pi, &g, &half()).unwrap();
        assert_eq!(b.lower_violations, 1);
        assert_eq!(b.upper_violations, 1);
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn pfair_percentage_complements_index() {
        let g = GroupAssignment::binary_split(4, 2);
        let pi = Permutation::identity(4);
        // II = 2 over 4 positions → 50 %
        assert!((pfair_percentage(&pi, &g, &half()).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pfair_percentage_clamps_at_zero() {
        // adversarial bounds that are violated twice at every prefix
        let g = GroupAssignment::binary_split(4, 2);
        let b = FairnessBounds::new(vec![0.9, 0.9], vec![0.95, 0.95]).unwrap();
        let pi = Permutation::identity(4);
        let v = pfair_percentage(&pi, &g, &b).unwrap();
        assert!((0.0..=100.0).contains(&v));
    }

    #[test]
    fn empty_ranking_is_fully_fair() {
        let g = GroupAssignment::new(vec![], 2).unwrap();
        let pi = Permutation::identity(0);
        assert_eq!(two_sided_infeasible_index(&pi, &g, &half()).unwrap(), 0);
        assert_eq!(pfair_percentage(&pi, &g, &half()).unwrap(), 100.0);
    }

    #[test]
    fn proportional_convenience_matches_explicit() {
        let g = GroupAssignment::new(vec![0, 1, 1, 0, 1, 0], 2).unwrap();
        let pi = Permutation::from_order(vec![1, 0, 2, 5, 4, 3]).unwrap();
        let explicit =
            two_sided_infeasible_index(&pi, &g, &FairnessBounds::from_assignment(&g)).unwrap();
        assert_eq!(infeasible_index_proportional(&pi, &g).unwrap(), explicit);
    }

    #[test]
    fn compiled_kernel_matches_naive_on_exhaustive_small_cases() {
        let assignments = [
            GroupAssignment::binary_split(6, 3),
            GroupAssignment::alternating(6),
            GroupAssignment::new(vec![0, 2, 1, 2, 0, 1], 3).unwrap(),
        ];
        let bounds_list = [
            FairnessBounds::exact(vec![0.5, 0.5]).unwrap(),
            FairnessBounds::new(vec![0.2, 0.1], vec![0.9, 0.8]).unwrap(),
            FairnessBounds::new(vec![0.0, 0.3, 0.2], vec![0.5, 1.0, 0.4]).unwrap(),
        ];
        for groups in &assignments {
            for bounds in &bounds_list {
                if bounds.num_groups() != groups.num_groups() {
                    continue;
                }
                let mut kernel = CompiledInfeasible::compile(bounds, 6);
                for pi in Permutation::enumerate_all(6) {
                    let naive = infeasible_breakdown_naive(&pi, groups, bounds).unwrap();
                    assert_eq!(kernel.breakdown(&pi, groups), naive, "pi {pi:?}");
                }
            }
        }
    }

    #[test]
    fn compiled_total_is_a_monotone_lower_bound_mid_scan() {
        let groups = GroupAssignment::new(vec![0, 0, 1, 1, 2, 2, 0, 1], 3).unwrap();
        let bounds = FairnessBounds::from_assignment(&groups);
        let pi = Permutation::from_order(vec![0, 1, 6, 2, 3, 7, 4, 5]).unwrap();
        let final_total = infeasible_breakdown_naive(&pi, &groups, &bounds)
            .unwrap()
            .total();
        let mut kernel = CompiledInfeasible::compile(&bounds, 8);
        kernel.begin();
        let mut prev = 0;
        for &item in pi.as_order() {
            kernel.place(groups.group_of(item));
            assert!(kernel.total() >= prev, "index only accumulates");
            assert!(kernel.total() <= final_total);
            prev = kernel.total();
        }
        assert_eq!(kernel.total(), final_total);
    }

    #[test]
    fn evaluator_recompiles_when_bounds_or_length_change() {
        let mut eval = InfeasibleEvaluator::new();
        let g6 = GroupAssignment::binary_split(6, 3);
        let g4 = GroupAssignment::binary_split(4, 2);
        let tight = half();
        let loose = FairnessBounds::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        for (groups, bounds) in [(&g6, &tight), (&g6, &loose), (&g4, &tight), (&g6, &tight)] {
            let pi = Permutation::identity(groups.len());
            assert_eq!(
                eval.breakdown(&pi, groups, bounds).unwrap(),
                infeasible_breakdown_naive(&pi, groups, bounds).unwrap()
            );
        }
    }

    #[test]
    fn swapping_adjacent_cross_group_items_changes_index_by_at_most_two() {
        let g = GroupAssignment::alternating(8);
        let mut pi = Permutation::identity(8);
        let before = infeasible_index_proportional(&pi, &g).unwrap() as isize;
        pi.swap_positions(2, 3);
        let after = infeasible_index_proportional(&pi, &g).unwrap() as isize;
        assert!((before - after).abs() <= 2);
    }
}
