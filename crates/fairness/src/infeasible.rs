//! Infeasible Index and P-fair position percentage (Definitions 3–4).

use crate::pfair::validate;
use crate::{FairnessBounds, GroupAssignment, Result};
use ranking_core::Permutation;

/// Lower and upper violation counts of Definition 3, kept separate so
/// experiments can report them individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfeasibleBreakdown {
    /// Number of prefixes where some group falls below `⌊β_p·k⌋`.
    pub lower_violations: usize,
    /// Number of prefixes where some group exceeds `⌈α_p·k⌉`.
    pub upper_violations: usize,
}

impl InfeasibleBreakdown {
    /// `TwoSidedInfInd = LowerViol + UpperViol`.
    pub fn total(&self) -> usize {
        self.lower_violations + self.upper_violations
    }
}

/// Definition 3 split into its two terms.
///
/// `LowerViol(π)` counts prefixes `k ∈ 1..=n` where **some** group's count
/// falls below its lower bound; `UpperViol(π)` counts prefixes where some
/// group exceeds its upper bound. A prefix can contribute to both terms.
pub fn infeasible_breakdown(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<InfeasibleBreakdown> {
    InfeasibleEvaluator::new().breakdown(pi, groups, bounds)
}

/// Allocation-free infeasible-index evaluator for hot selection loops.
///
/// [`infeasible_breakdown`] allocates a fresh running-counts buffer per
/// call; a best-of-`m` loop (the streaming Algorithm 1) evaluates the
/// index `m` times per request, so the evaluator keeps that buffer and
/// reuses it across calls. Results are identical to the free functions.
///
/// ```
/// use fairness_metrics::infeasible::{two_sided_infeasible_index, InfeasibleEvaluator};
/// use fairness_metrics::{FairnessBounds, GroupAssignment};
/// use ranking_core::Permutation;
///
/// let groups = GroupAssignment::binary_split(6, 3);
/// let bounds = FairnessBounds::from_assignment(&groups);
/// let pi = Permutation::identity(6);
/// let mut eval = InfeasibleEvaluator::new();
/// assert_eq!(
///     eval.index(&pi, &groups, &bounds).unwrap(),
///     two_sided_infeasible_index(&pi, &groups, &bounds).unwrap()
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct InfeasibleEvaluator {
    running: Vec<usize>,
}

impl InfeasibleEvaluator {
    /// Empty evaluator; the counts buffer grows on first use.
    pub fn new() -> Self {
        InfeasibleEvaluator::default()
    }

    /// Per-term violation counts of Definition 3, reusing the internal
    /// buffer.
    pub fn breakdown(
        &mut self,
        pi: &Permutation,
        groups: &GroupAssignment,
        bounds: &FairnessBounds,
    ) -> Result<InfeasibleBreakdown> {
        validate(pi, groups, bounds)?;
        let g = groups.num_groups();
        let running = &mut self.running;
        running.clear();
        running.resize(g, 0);
        let mut lower = 0usize;
        let mut upper = 0usize;
        for (idx, &item) in pi.as_order().iter().enumerate() {
            running[groups.group_of(item)] += 1;
            let k = idx + 1;
            let mut lo_violated = false;
            let mut hi_violated = false;
            for p in 0..g {
                if running[p] < bounds.min_count(p, k) {
                    lo_violated = true;
                }
                if running[p] > bounds.max_count(p, k) {
                    hi_violated = true;
                }
            }
            lower += usize::from(lo_violated);
            upper += usize::from(hi_violated);
        }
        Ok(InfeasibleBreakdown {
            lower_violations: lower,
            upper_violations: upper,
        })
    }

    /// `TwoSidedInfInd(π)`, reusing the internal buffer.
    pub fn index(
        &mut self,
        pi: &Permutation,
        groups: &GroupAssignment,
        bounds: &FairnessBounds,
    ) -> Result<usize> {
        Ok(self.breakdown(pi, groups, bounds)?.total())
    }
}

/// Definition 3 — `TwoSidedInfInd(π) ∈ [0, 2n]`.
pub fn two_sided_infeasible_index(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<usize> {
    Ok(infeasible_breakdown(pi, groups, bounds)?.total())
}

/// Definition 4 — percentage of P-fair positions:
/// `PPfair(π) = 100 · (1 − TwoSidedInfInd(π) / |π|)`.
///
/// Note that because a prefix can violate both bounds, the raw value can
/// in principle go negative; the paper reports it as a percentage of fair
/// positions, so we clamp at 0.
pub fn pfair_percentage(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<f64> {
    let n = pi.len();
    if n == 0 {
        return Ok(100.0);
    }
    let ii = two_sided_infeasible_index(pi, groups, bounds)?;
    Ok((100.0 * (1.0 - ii as f64 / n as f64)).max(0.0))
}

/// Convenience: infeasible index measured against bounds equal to the
/// groups' own proportions (the setting of the paper's synthetic
/// experiments, Figs. 1–4).
pub fn infeasible_index_proportional(pi: &Permutation, groups: &GroupAssignment) -> Result<usize> {
    let bounds = FairnessBounds::from_assignment(groups);
    two_sided_infeasible_index(pi, groups, &bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half() -> FairnessBounds {
        FairnessBounds::exact(vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn alternating_ranking_has_zero_index() {
        let g = GroupAssignment::alternating(10);
        let pi = Permutation::identity(10);
        assert_eq!(two_sided_infeasible_index(&pi, &g, &half()).unwrap(), 0);
    }

    #[test]
    fn fully_segregated_ranking_has_high_index() {
        // groups 0..5 then 5..10: prefixes 2..=5 violate lower bound of
        // group 1 and upper bound of group 0 where applicable
        let g = GroupAssignment::binary_split(10, 5);
        let pi = Permutation::identity(10);
        let b = infeasible_breakdown(&pi, &g, &half()).unwrap();
        assert!(b.lower_violations > 0);
        assert!(b.upper_violations > 0);
        assert!(b.total() >= 8, "got {}", b.total());
    }

    #[test]
    fn index_bounded_by_two_n() {
        let g = GroupAssignment::binary_split(8, 4);
        for pi in Permutation::enumerate_all(8).into_iter().step_by(997) {
            let ii = two_sided_infeasible_index(&pi, &g, &half()).unwrap();
            assert!(ii <= 16);
        }
    }

    #[test]
    fn known_small_example() {
        // n = 4, groups [0,0,1,1], ranking 0,1,2,3:
        // k=1: counts (1,0); min = floor(.5)=0 → ok; max = ceil(.5)=1 → ok
        // k=2: counts (2,0); min(1,1): group1 has 0 < 1 → lower viol;
        //       max: group0 has 2 > 1 → upper viol
        // k=3: counts (2,1); min=floor(1.5)=1 ok; max=ceil(1.5)=2 ok
        // k=4: counts (2,2) ok
        let g = GroupAssignment::binary_split(4, 2);
        let pi = Permutation::identity(4);
        let b = infeasible_breakdown(&pi, &g, &half()).unwrap();
        assert_eq!(b.lower_violations, 1);
        assert_eq!(b.upper_violations, 1);
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn pfair_percentage_complements_index() {
        let g = GroupAssignment::binary_split(4, 2);
        let pi = Permutation::identity(4);
        // II = 2 over 4 positions → 50 %
        assert!((pfair_percentage(&pi, &g, &half()).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pfair_percentage_clamps_at_zero() {
        // adversarial bounds that are violated twice at every prefix
        let g = GroupAssignment::binary_split(4, 2);
        let b = FairnessBounds::new(vec![0.9, 0.9], vec![0.95, 0.95]).unwrap();
        let pi = Permutation::identity(4);
        let v = pfair_percentage(&pi, &g, &b).unwrap();
        assert!((0.0..=100.0).contains(&v));
    }

    #[test]
    fn empty_ranking_is_fully_fair() {
        let g = GroupAssignment::new(vec![], 2).unwrap();
        let pi = Permutation::identity(0);
        assert_eq!(two_sided_infeasible_index(&pi, &g, &half()).unwrap(), 0);
        assert_eq!(pfair_percentage(&pi, &g, &half()).unwrap(), 100.0);
    }

    #[test]
    fn proportional_convenience_matches_explicit() {
        let g = GroupAssignment::new(vec![0, 1, 1, 0, 1, 0], 2).unwrap();
        let pi = Permutation::from_order(vec![1, 0, 2, 5, 4, 3]).unwrap();
        let explicit =
            two_sided_infeasible_index(&pi, &g, &FairnessBounds::from_assignment(&g)).unwrap();
        assert_eq!(infeasible_index_proportional(&pi, &g).unwrap(), explicit);
    }

    #[test]
    fn swapping_adjacent_cross_group_items_changes_index_by_at_most_two() {
        let g = GroupAssignment::alternating(8);
        let mut pi = Permutation::identity(8);
        let before = infeasible_index_proportional(&pi, &g).unwrap() as isize;
        pi.swap_positions(2, 3);
        let after = infeasible_index_proportional(&pi, &g).unwrap() as isize;
        assert!((before - after).abs() <= 2);
    }
}
