//! Proportionate-fairness (P-fairness) metrics for rankings.
//!
//! Implements the paper's Section III-B:
//!
//! * [`GroupAssignment`] — the mapping from items to protected groups;
//! * [`FairnessBounds`] — per-group lower (`β`) and upper (`α`)
//!   representation proportions with the prefix-wise integer bounds
//!   `⌊β_p · k⌋ ≤ count_k(G_p, π) ≤ ⌈α_p · k⌉`;
//! * Definition 1 (`(α⃗, β⃗)-k` fairness) — [`pfair::is_k_fair`];
//! * Definition 2 (weak k-fairness) — [`pfair::is_weak_k_fair`];
//! * Definition 3 (two-sided infeasible index) —
//!   [`infeasible::two_sided_infeasible_index`];
//! * Definition 4 (percentage of P-fair positions) —
//!   [`infeasible::pfair_percentage`].
//!
//! Beyond the paper's own P-fairness family, the crate carries the two
//! measure families the robustness study compares against:
//! divergence-based measures ([`divergence`]: NDKL, rKL, skew) and
//! exposure-based measures ([`exposure`]: demographic parity of
//! exposure, disparate-treatment ratio).
//!
//! ## Convention note (α/β)
//!
//! The paper's Definitions 1–2 contain a typographical inversion of α and
//! β; its ILP (Section IV-B) and Infeasible Index (Definition 3) use the
//! consistent convention adopted here: **β is the lower-bound proportion
//! and α is the upper-bound proportion**, i.e. a prefix of length `k` must
//! contain at least `⌊β_p·k⌋` and at most `⌈α_p·k⌉` members of group `p`.

#![forbid(unsafe_code)]

pub mod bounds;
pub mod divergence;
pub mod exposure;
pub mod groups;
pub mod infeasible;
pub mod pfair;
pub mod soft;

pub use bounds::{BoundSteps, FairnessBounds};
pub use groups::GroupAssignment;
pub use soft::SoftGroupAssignment;

/// Errors raised by fairness-metric computations.
#[derive(Debug, Clone, PartialEq)]
pub enum FairnessError {
    /// A group id was out of range for the declared number of groups.
    InvalidGroup {
        /// The offending group id.
        group: usize,
        /// Number of declared groups.
        num_groups: usize,
    },
    /// Bounds vectors must have one entry per group.
    BoundsShapeMismatch {
        /// Entries supplied.
        got: usize,
        /// Entries expected (number of groups).
        expected: usize,
    },
    /// A proportion was outside `[0, 1]` or `lower > upper` for a group.
    InvalidProportion {
        /// The offending group id.
        group: usize,
        /// Lower proportion for the group.
        lower: f64,
        /// Upper proportion for the group.
        upper: f64,
    },
    /// Ranking length does not match the group assignment length.
    LengthMismatch {
        /// Ranking length.
        ranking: usize,
        /// Group-assignment length.
        groups: usize,
    },
}

impl std::fmt::Display for FairnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FairnessError::InvalidGroup { group, num_groups } => {
                write!(f, "group id {group} out of range for {num_groups} groups")
            }
            FairnessError::BoundsShapeMismatch { got, expected } => {
                write!(f, "bounds have {got} entries, expected {expected}")
            }
            FairnessError::InvalidProportion {
                group,
                lower,
                upper,
            } => {
                write!(
                    f,
                    "invalid proportions for group {group}: lower {lower}, upper {upper}"
                )
            }
            FairnessError::LengthMismatch { ranking, groups } => {
                write!(
                    f,
                    "ranking length {ranking} != group assignment length {groups}"
                )
            }
        }
    }
}

impl std::error::Error for FairnessError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FairnessError>;
