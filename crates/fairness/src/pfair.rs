//! P-fairness predicates: Definitions 1 and 2 of the paper.

use crate::{FairnessBounds, FairnessError, GroupAssignment, Result};
use ranking_core::Permutation;

/// Definition 1 — `(α⃗, β⃗)-k` fairness: every prefix `P` of length `≥ k`
/// satisfies `⌊β_p·|P|⌋ ≤ |P ∩ G_p| ≤ ⌈α_p·|P|⌉` for every group `p`.
pub fn is_k_fair(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
    k: usize,
) -> Result<bool> {
    validate(pi, groups, bounds)?;
    let counts = groups.prefix_counts(pi.as_order());
    for prefix_len in k.max(1)..=pi.len() {
        if !prefix_ok(&counts[prefix_len - 1], bounds, prefix_len) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Definition 2 — weak k-fairness: only the length-`k` prefix must satisfy
/// the bounds.
pub fn is_weak_k_fair(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
    k: usize,
) -> Result<bool> {
    validate(pi, groups, bounds)?;
    if k == 0 || k > pi.len() {
        return Ok(true);
    }
    let mut counts = vec![0usize; groups.num_groups()];
    for &item in pi.prefix(k) {
        counts[groups.group_of(item)] += 1;
    }
    Ok(prefix_ok(&counts, bounds, k))
}

/// Positions (1-based prefix lengths) at which the ranking violates the
/// bounds, together with the direction of the violation. Useful for
/// diagnostics and exercised by the repair passes of the baselines.
pub fn violations(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<Vec<Violation>> {
    validate(pi, groups, bounds)?;
    let counts = groups.prefix_counts(pi.as_order());
    let mut out = Vec::new();
    for prefix_len in 1..=pi.len() {
        for p in 0..bounds.num_groups() {
            let c = counts[prefix_len - 1][p];
            let lo = bounds.min_count(p, prefix_len);
            let hi = bounds.max_count(p, prefix_len);
            if c < lo {
                out.push(Violation {
                    prefix: prefix_len,
                    group: p,
                    count: c,
                    bound: lo,
                    kind: ViolationKind::Lower,
                });
            } else if c > hi {
                out.push(Violation {
                    prefix: prefix_len,
                    group: p,
                    count: c,
                    bound: hi,
                    kind: ViolationKind::Upper,
                });
            }
        }
    }
    Ok(out)
}

/// A single prefix-level fairness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Prefix length (1-based) at which the violation occurs.
    pub prefix: usize,
    /// Violating group.
    pub group: usize,
    /// Observed count of the group in the prefix.
    pub count: usize,
    /// The violated bound value.
    pub bound: usize,
    /// Whether the lower or the upper bound was violated.
    pub kind: ViolationKind,
}

/// Direction of a fairness violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Count fell below `⌊β_p·k⌋`.
    Lower,
    /// Count exceeded `⌈α_p·k⌉`.
    Upper,
}

pub(crate) fn prefix_ok(counts: &[usize], bounds: &FairnessBounds, prefix_len: usize) -> bool {
    counts
        .iter()
        .enumerate()
        .all(|(p, &c)| c >= bounds.min_count(p, prefix_len) && c <= bounds.max_count(p, prefix_len))
}

pub(crate) fn validate(
    pi: &Permutation,
    groups: &GroupAssignment,
    bounds: &FairnessBounds,
) -> Result<()> {
    if pi.len() != groups.len() {
        return Err(FairnessError::LengthMismatch {
            ranking: pi.len(),
            groups: groups.len(),
        });
    }
    if bounds.num_groups() != groups.num_groups() {
        return Err(FairnessError::BoundsShapeMismatch {
            got: bounds.num_groups(),
            expected: groups.num_groups(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_bounds() -> FairnessBounds {
        FairnessBounds::exact(vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn alternating_ranking_is_1_fair() {
        // items 0..6 alternate groups; identity keeps them alternating
        let g = GroupAssignment::alternating(6);
        let pi = Permutation::identity(6);
        assert!(is_k_fair(&pi, &g, &half_bounds(), 1).unwrap());
    }

    #[test]
    fn segregated_ranking_is_not_fair() {
        // all of group 0 first
        let g = GroupAssignment::binary_split(6, 3);
        let pi = Permutation::identity(6); // 0,1,2 (group 0) then 3,4,5
        assert!(!is_k_fair(&pi, &g, &half_bounds(), 1).unwrap());
    }

    #[test]
    fn weak_fairness_ignores_longer_prefixes() {
        // top-2 balanced, tail segregated
        let g = GroupAssignment::new(vec![0, 1, 0, 0, 1, 1], 2).unwrap();
        let pi = Permutation::from_order(vec![0, 1, 2, 3, 4, 5]).unwrap();
        assert!(is_weak_k_fair(&pi, &g, &half_bounds(), 2).unwrap());
        assert!(!is_k_fair(&pi, &g, &half_bounds(), 2).unwrap());
    }

    #[test]
    fn weak_fairness_k_zero_or_oversized_is_trivially_true() {
        let g = GroupAssignment::alternating(4);
        let pi = Permutation::identity(4);
        assert!(is_weak_k_fair(&pi, &g, &half_bounds(), 0).unwrap());
        assert!(is_weak_k_fair(&pi, &g, &half_bounds(), 9).unwrap());
    }

    #[test]
    fn violations_report_direction_and_prefix() {
        let g = GroupAssignment::binary_split(4, 2); // 0,1 group 0; 2,3 group 1
        let pi = Permutation::identity(4);
        let v = violations(&pi, &g, &half_bounds()).unwrap();
        // prefix 2 = two group-0 items: group0 over (max ⌈1⌉=1), group1 under (min ⌊1⌋=1)
        assert!(v
            .iter()
            .any(|x| x.prefix == 2 && x.group == 0 && x.kind == ViolationKind::Upper));
        assert!(v
            .iter()
            .any(|x| x.prefix == 2 && x.group == 1 && x.kind == ViolationKind::Lower));
        // the full ranking is balanced: no violation at prefix 4
        assert!(!v.iter().any(|x| x.prefix == 4));
    }

    #[test]
    fn mismatched_lengths_error() {
        let g = GroupAssignment::alternating(4);
        let pi = Permutation::identity(5);
        assert!(is_k_fair(&pi, &g, &half_bounds(), 1).is_err());
    }

    #[test]
    fn mismatched_group_counts_error() {
        let g = GroupAssignment::new(vec![0, 1, 2, 0], 3).unwrap();
        let pi = Permutation::identity(4);
        assert!(is_k_fair(&pi, &g, &half_bounds(), 1).is_err());
    }

    #[test]
    fn zero_lower_bounds_make_everything_fair() {
        let g = GroupAssignment::binary_split(6, 3);
        let b = FairnessBounds::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        for pi in Permutation::enumerate_all(6).into_iter().take(50) {
            assert!(is_k_fair(&pi, &g, &b, 1).unwrap());
        }
    }
}
