//! Probabilistic (soft) group membership.
//!
//! The paper's German-Credit study stresses *imperfect knowledge* of
//! the protected attribute: algorithms receive noisy constraints, and
//! fairness is judged against an attribute they never see. This module
//! models the uncertainty itself: a [`SoftGroupAssignment`] gives each
//! item a probability distribution over groups (e.g. inferred from a
//! noisy proxy such as name or zip code), supporting
//!
//! * [`SoftGroupAssignment::expected_prefix_counts`] — expected group
//!   counts per prefix;
//! * [`SoftGroupAssignment::expected_infeasible_index`] — the expected
//!   two-sided infeasible index under independent memberships, computed
//!   exactly by a per-prefix Poisson-binomial dynamic program;
//! * [`SoftGroupAssignment::sample`] — draw a hard [`GroupAssignment`];
//! * [`SoftGroupAssignment::from_noisy_labels`] — the standard label-
//!   noise channel (true label kept with probability `1 − ε`, otherwise
//!   uniform over the other groups).

use crate::{FairnessBounds, FairnessError, GroupAssignment, Result};
use rand::Rng;
use ranking_core::Permutation;

/// Per-item probability distributions over `g` groups.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftGroupAssignment {
    /// `probs[i][p]` = probability that item `i` belongs to group `p`.
    probs: Vec<Vec<f64>>,
    num_groups: usize,
}

impl SoftGroupAssignment {
    /// Build from explicit per-item distributions. Each row must have
    /// one entry per group, entries in `[0, 1]` summing to 1 (±1e-9).
    pub fn new(probs: Vec<Vec<f64>>, num_groups: usize) -> Result<Self> {
        for (item, row) in probs.iter().enumerate() {
            if row.len() != num_groups {
                return Err(FairnessError::BoundsShapeMismatch {
                    got: row.len(),
                    expected: num_groups,
                });
            }
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p)) || (sum - 1.0).abs() > 1e-9 {
                return Err(FairnessError::InvalidProportion {
                    group: item,
                    lower: sum,
                    upper: sum,
                });
            }
        }
        Ok(SoftGroupAssignment { probs, num_groups })
    }

    /// Deterministic embedding of a hard assignment (each row is an
    /// indicator vector).
    pub fn from_hard(groups: &GroupAssignment) -> Self {
        let g = groups.num_groups();
        let probs = groups
            .as_slice()
            .iter()
            .map(|&gi| {
                let mut row = vec![0.0; g];
                row[gi] = 1.0;
                row
            })
            .collect();
        SoftGroupAssignment {
            probs,
            num_groups: g,
        }
    }

    /// Label-noise channel: each item keeps its true group with
    /// probability `1 − ε` and otherwise is uniform over the remaining
    /// `g − 1` groups. `ε = 0` is [`Self::from_hard`]; `ε = (g−1)/g`
    /// makes every row uniform.
    pub fn from_noisy_labels(groups: &GroupAssignment, epsilon: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(FairnessError::InvalidProportion {
                group: 0,
                lower: epsilon,
                upper: epsilon,
            });
        }
        let g = groups.num_groups();
        if g < 2 {
            return Ok(Self::from_hard(groups));
        }
        let off = epsilon / (g - 1) as f64;
        let probs = groups
            .as_slice()
            .iter()
            .map(|&gi| {
                (0..g)
                    .map(|p| if p == gi { 1.0 - epsilon } else { off })
                    .collect()
            })
            .collect();
        Ok(SoftGroupAssignment {
            probs,
            num_groups: g,
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Membership distribution of `item`.
    pub fn distribution(&self, item: usize) -> &[f64] {
        &self.probs[item]
    }

    /// Expected number of members of each group (marginal sums).
    pub fn expected_sizes(&self) -> Vec<f64> {
        let mut sizes = vec![0.0; self.num_groups];
        for row in &self.probs {
            for (s, &p) in sizes.iter_mut().zip(row) {
                *s += p;
            }
        }
        sizes
    }

    /// Expected per-group counts over every prefix of `pi`:
    /// `out[k][p]` = `E[count_{k+1}(G_p, π)]`.
    pub fn expected_prefix_counts(&self, pi: &Permutation) -> Result<Vec<Vec<f64>>> {
        self.check(pi)?;
        let mut running = vec![0.0; self.num_groups];
        let mut out = Vec::with_capacity(pi.len());
        for &item in pi.as_order() {
            for (r, &p) in running.iter_mut().zip(&self.probs[item]) {
                *r += p;
            }
            out.push(running.clone());
        }
        Ok(out)
    }

    /// Exact expected two-sided infeasible index of `pi` under
    /// independent group memberships.
    ///
    /// For each prefix `k` and group `p`, the count of group-`p` members
    /// is Poisson-binomial with the prefix's membership probabilities;
    /// the violation probability `P[count < min] + P[count > max]` is
    /// read off an incrementally-maintained count distribution
    /// (`O(n²·g)` total). By linearity the expected index is the sum of
    /// per-prefix probabilities that *some* group violates — which is
    /// **not** a sum of independent events, so an inclusion–exclusion-
    /// free upper bound would be wrong; instead we use the union bound
    /// only when `g > 2` and exact complement-counting for `g ≤ 2`
    /// (binary membership makes the two groups' counts complementary).
    /// The returned value is exact for `g ≤ 2` and an upper bound
    /// otherwise (documented by tests).
    pub fn expected_infeasible_index(
        &self,
        pi: &Permutation,
        bounds: &FairnessBounds,
    ) -> Result<f64> {
        self.check(pi)?;
        if bounds.num_groups() != self.num_groups {
            return Err(FairnessError::BoundsShapeMismatch {
                got: bounds.num_groups(),
                expected: self.num_groups,
            });
        }
        let n = pi.len();
        // dist[p] = probability vector over counts for group p in the
        // current prefix, updated one item at a time.
        let mut dist: Vec<Vec<f64>> = vec![vec![1.0]; self.num_groups];
        let mut expected = 0.0;
        for (idx, &item) in pi.as_order().iter().enumerate() {
            let k = idx + 1;
            for (p, d) in dist.iter_mut().enumerate() {
                let q = self.probs[item][p];
                let mut next = vec![0.0; k + 1];
                for (c, &mass) in d.iter().enumerate() {
                    next[c] += mass * (1.0 - q);
                    next[c + 1] += mass * q;
                }
                *d = next;
            }
            // The two-sided index adds one unit per prefix with a lower
            // violation and one per prefix with an upper violation
            // (Definition 3 sums the two indicators), so the two sides
            // are accumulated separately.
            if self.num_groups == 2 {
                // counts are complementary: count₁ = k − count₀, so
                // each side's violation event is an exact window on
                // count₀.
                let lo0 = bounds.min_count(0, k);
                let hi0 = bounds.max_count(0, k);
                let lo1 = bounds.min_count(1, k);
                let hi1 = bounds.max_count(1, k);
                // lower viol: count₀ < lo0 OR count₁ < lo1 ⇔
                //             count₀ < lo0 OR count₀ > k − lo1
                let lower_ok_lo = lo0;
                let lower_ok_hi = k.saturating_sub(lo1).min(k);
                let ok_lower: f64 = if lower_ok_lo > lower_ok_hi {
                    0.0
                } else {
                    dist[0][lower_ok_lo..=lower_ok_hi].iter().sum()
                };
                // upper viol: count₀ > hi0 OR count₁ > hi1 ⇔
                //             count₀ > hi0 OR count₀ < k − hi1
                let upper_ok_lo = k.saturating_sub(hi1);
                let upper_ok_hi = hi0.min(k);
                let ok_upper: f64 = if upper_ok_lo > upper_ok_hi {
                    0.0
                } else {
                    dist[0][upper_ok_lo..=upper_ok_hi].iter().sum()
                };
                expected += (1.0 - ok_lower) + (1.0 - ok_upper);
            } else {
                // union bound per side over the groups, each clamped
                // to 1 (exact for g ≤ 2; an upper bound otherwise).
                let (mut lower, mut upper) = (0.0f64, 0.0f64);
                for (p, d) in dist.iter().enumerate() {
                    let lo = bounds.min_count(p, k);
                    let hi = bounds.max_count(p, k);
                    let p_low: f64 = d.iter().take(lo.min(k + 1)).sum();
                    let p_high: f64 = if hi < k {
                        d[hi + 1..=k].iter().sum()
                    } else {
                        0.0
                    };
                    lower += p_low;
                    upper += p_high;
                }
                expected += lower.min(1.0) + upper.min(1.0);
            }
        }
        let _ = n;
        Ok(expected)
    }

    /// Draw a hard assignment (independent per item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GroupAssignment {
        let groups = self
            .probs
            .iter()
            .map(|row| {
                let mut u: f64 = rng.random();
                for (p, &q) in row.iter().enumerate() {
                    if u < q {
                        return p;
                    }
                    u -= q;
                }
                row.len() - 1
            })
            .collect();
        GroupAssignment::new(groups, self.num_groups)
            .expect("sampled ids are in range by construction")
    }

    /// Most-likely hard assignment (per-item argmax, ties to the lower
    /// group id).
    pub fn map_assignment(&self) -> GroupAssignment {
        let groups = self
            .probs
            .iter()
            .map(|row| {
                let mut best = 0usize;
                for (p, &q) in row.iter().enumerate().skip(1) {
                    if q > row[best] {
                        best = p;
                    }
                }
                best
            })
            .collect();
        GroupAssignment::new(groups, self.num_groups)
            .expect("argmax ids are in range by construction")
    }

    fn check(&self, pi: &Permutation) -> Result<()> {
        if pi.len() != self.len() {
            return Err(FairnessError::LengthMismatch {
                ranking: pi.len(),
                groups: self.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infeasible;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hard(bits: &[usize]) -> GroupAssignment {
        GroupAssignment::new(bits.to_vec(), 2).unwrap()
    }

    #[test]
    fn new_validates_rows() {
        assert!(SoftGroupAssignment::new(vec![vec![0.5, 0.5]], 2).is_ok());
        assert!(SoftGroupAssignment::new(vec![vec![0.5, 0.4]], 2).is_err());
        assert!(SoftGroupAssignment::new(vec![vec![1.5, -0.5]], 2).is_err());
        assert!(SoftGroupAssignment::new(vec![vec![1.0]], 2).is_err());
    }

    #[test]
    fn from_hard_is_indicator() {
        let g = hard(&[0, 1, 0]);
        let s = SoftGroupAssignment::from_hard(&g);
        assert_eq!(s.distribution(0), &[1.0, 0.0]);
        assert_eq!(s.distribution(1), &[0.0, 1.0]);
        assert_eq!(s.expected_sizes(), vec![2.0, 1.0]);
    }

    #[test]
    fn noisy_labels_zero_epsilon_is_hard() {
        let g = hard(&[0, 1, 1, 0]);
        let s = SoftGroupAssignment::from_noisy_labels(&g, 0.0).unwrap();
        assert_eq!(s, SoftGroupAssignment::from_hard(&g));
    }

    #[test]
    fn noisy_labels_rows_are_distributions() {
        let g = GroupAssignment::new(vec![0, 1, 2, 1], 3).unwrap();
        let s = SoftGroupAssignment::from_noisy_labels(&g, 0.3).unwrap();
        for i in 0..4 {
            let row = s.distribution(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!((row[g.group_of(i)] - 0.7).abs() < 1e-12);
        }
        assert!(SoftGroupAssignment::from_noisy_labels(&g, 1.5).is_err());
    }

    #[test]
    fn expected_prefix_counts_match_hard_counts_when_deterministic() {
        let g = hard(&[0, 1, 0, 1, 1]);
        let s = SoftGroupAssignment::from_hard(&g);
        let pi = Permutation::from_order(vec![4, 0, 3, 1, 2]).unwrap();
        let soft = s.expected_prefix_counts(&pi).unwrap();
        let hard_counts = g.prefix_counts(pi.as_order());
        for (k, row) in soft.iter().enumerate() {
            for p in 0..2 {
                assert!((row[p] - hard_counts[k][p] as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expected_ii_matches_hard_ii_when_deterministic() {
        let g = hard(&[0, 0, 0, 1, 1, 1]);
        let s = SoftGroupAssignment::from_hard(&g);
        let bounds = FairnessBounds::from_assignment(&g);
        for pi in [
            Permutation::identity(6),
            Permutation::from_order(vec![3, 0, 4, 1, 5, 2]).unwrap(),
        ] {
            let exact = infeasible::two_sided_infeasible_index(&pi, &g, &bounds).unwrap() as f64;
            let expected = s.expected_infeasible_index(&pi, &bounds).unwrap();
            assert!(
                (exact - expected).abs() < 1e-9,
                "hard II {exact} vs soft expectation {expected}"
            );
        }
    }

    #[test]
    fn expected_ii_matches_monte_carlo_binary() {
        let g = hard(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let s = SoftGroupAssignment::from_noisy_labels(&g, 0.25).unwrap();
        let bounds = FairnessBounds::from_assignment(&g);
        let pi = Permutation::identity(8);
        let analytic = s.expected_infeasible_index(&pi, &bounds).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let draws = 20_000;
        let mc: f64 = (0..draws)
            .map(|_| {
                let hard = s.sample(&mut rng);
                infeasible::two_sided_infeasible_index(&pi, &hard, &bounds).unwrap() as f64
            })
            .sum::<f64>()
            / draws as f64;
        assert!(
            (analytic - mc).abs() < 0.08,
            "analytic {analytic:.4} vs Monte Carlo {mc:.4}"
        );
    }

    #[test]
    fn expected_ii_union_bound_dominates_monte_carlo_multigroup() {
        let g = GroupAssignment::new(vec![0, 1, 2, 0, 1, 2], 3).unwrap();
        let s = SoftGroupAssignment::from_noisy_labels(&g, 0.2).unwrap();
        let bounds = FairnessBounds::from_assignment(&g);
        let pi = Permutation::identity(6);
        let upper = s.expected_infeasible_index(&pi, &bounds).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let draws = 20_000;
        let mc: f64 = (0..draws)
            .map(|_| {
                let hard = s.sample(&mut rng);
                infeasible::two_sided_infeasible_index(&pi, &hard, &bounds).unwrap() as f64
            })
            .sum::<f64>()
            / draws as f64;
        assert!(
            upper >= mc - 0.05,
            "union bound {upper:.4} must dominate Monte Carlo {mc:.4}"
        );
    }

    #[test]
    fn sample_marginals_match_probs() {
        let s = SoftGroupAssignment::new(vec![vec![0.8, 0.2], vec![0.3, 0.7], vec![0.5, 0.5]], 2)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 30_000;
        let mut count0 = [0usize; 3];
        for _ in 0..draws {
            let h = s.sample(&mut rng);
            for i in 0..3 {
                if h.group_of(i) == 0 {
                    count0[i] += 1;
                }
            }
        }
        for (i, expect) in [(0usize, 0.8f64), (1, 0.3), (2, 0.5)] {
            let obs = count0[i] as f64 / draws as f64;
            assert!((obs - expect).abs() < 0.02, "item {i}: {obs} vs {expect}");
        }
    }

    #[test]
    fn map_assignment_takes_argmax() {
        let s = SoftGroupAssignment::new(vec![vec![0.9, 0.1], vec![0.4, 0.6], vec![0.5, 0.5]], 2)
            .unwrap();
        let m = s.map_assignment();
        assert_eq!(m.as_slice(), &[0, 1, 0]); // tie → lower id
    }

    #[test]
    fn length_mismatch_errors() {
        let s = SoftGroupAssignment::from_hard(&hard(&[0, 1]));
        let pi = Permutation::identity(3);
        assert!(s.expected_prefix_counts(&pi).is_err());
        let bounds = FairnessBounds::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(s.expected_infeasible_index(&pi, &bounds).is_err());
    }
}
