//! Property-based tests for the divergence, exposure and soft-group
//! extensions of `fairness-metrics`.

use fairness_metrics::{
    divergence, exposure, infeasible, FairnessBounds, GroupAssignment, SoftGroupAssignment,
};
use proptest::prelude::*;
use ranking_core::quality::Discount;
use ranking_core::Permutation;

fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    prop::collection::vec(any::<u64>(), n).prop_map(|keys| {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by_key(|&i| keys[i]);
        Permutation::from_order(idx).expect("valid permutation")
    })
}

fn assignment(n: usize, g: usize) -> impl Strategy<Value = GroupAssignment> {
    prop::collection::vec(0..g, n)
        .prop_map(move |v| GroupAssignment::new(v, g).expect("groups in range"))
}

/// A probability vector of the given length (strictly positive cells).
fn simplex(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, len).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    })
}

proptest! {
    #[test]
    fn kl_divergence_nonnegative(p in simplex(4), q in simplex(4)) {
        let d = divergence::kl_divergence(&p, &q).unwrap();
        prop_assert!(d >= -1e-12, "Gibbs inequality violated: {}", d);
        prop_assert!(divergence::kl_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn ndkl_nonnegative_and_finite(pi in permutation(12), groups in assignment(12, 3)) {
        let v = divergence::ndkl(&pi, &groups).unwrap();
        prop_assert!(v >= 0.0 && v.is_finite(), "ndkl = {}", v);
    }

    #[test]
    fn ndkl_invariant_under_group_relabelling(pi in permutation(10), groups in assignment(10, 3)) {
        // swap group ids 0 and 1: NDKL compares distributions, so the
        // value must not change.
        let swapped: Vec<usize> = groups
            .as_slice()
            .iter()
            .map(|&g| match g { 0 => 1, 1 => 0, other => other })
            .collect();
        let relabeled = GroupAssignment::new(swapped, 3).unwrap();
        let a = divergence::ndkl(&pi, &groups).unwrap();
        let b = divergence::ndkl(&pi, &relabeled).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }

    #[test]
    fn rkl_nonnegative(pi in permutation(15), groups in assignment(15, 2)) {
        let v = divergence::rkl(&pi, &groups).unwrap();
        prop_assert!(v >= 0.0 && v.is_finite());
    }

    #[test]
    fn skew_brackets_zero(pi in permutation(12), groups in assignment(12, 3), k in 1usize..=12) {
        let lo = divergence::min_skew_at(&pi, &groups, k).unwrap();
        let hi = divergence::max_skew_at(&pi, &groups, k).unwrap();
        prop_assert!(lo <= hi + 1e-12);
        // in any prefix some group is at-or-above its share and some
        // at-or-below, so the extremes bracket zero.
        prop_assert!(lo <= 1e-9, "min skew {} > 0", lo);
        prop_assert!(hi >= -1e-9, "max skew {} < 0", hi);
    }

    #[test]
    fn full_prefix_skew_is_zero(pi in permutation(10), groups in assignment(10, 2)) {
        let lo = divergence::min_skew_at(&pi, &groups, 10).unwrap();
        let hi = divergence::max_skew_at(&pi, &groups, 10).unwrap();
        prop_assert!(lo.abs() < 1e-9 && hi.abs() < 1e-9);
    }

    #[test]
    fn exposure_mass_is_conserved(pi in permutation(11), groups in assignment(11, 3)) {
        let e = exposure::group_exposures(&pi, &groups, Discount::Log2).unwrap();
        let total: f64 = (1..=11).map(|i| Discount::Log2.at(i)).sum();
        prop_assert!((e.iter().sum::<f64>() - total).abs() < 1e-9);
        prop_assert!(e.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exposure_parity_in_unit_interval(pi in permutation(9), groups in assignment(9, 3)) {
        let r = exposure::exposure_parity_ratio(&pi, &groups, Discount::Log2).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r), "ratio {}", r);
    }

    #[test]
    fn dtr_in_unit_interval(
        pi in permutation(8),
        groups in assignment(8, 2),
        scores in prop::collection::vec(0.01f64..1.0, 8),
    ) {
        let r = exposure::disparate_treatment_ratio(&pi, &scores, &groups, Discount::Log2)
            .unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r), "dtr {}", r);
    }

    #[test]
    fn soft_expected_counts_sum_to_prefix_length(
        pi in permutation(10),
        groups in assignment(10, 3),
        eps in 0.0f64..0.6,
    ) {
        let soft = SoftGroupAssignment::from_noisy_labels(&groups, eps).unwrap();
        let counts = soft.expected_prefix_counts(&pi).unwrap();
        for (k, row) in counts.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - (k + 1) as f64).abs() < 1e-9, "prefix {}: {}", k, sum);
        }
    }

    #[test]
    fn soft_expected_ii_bounded(
        pi in permutation(9),
        groups in assignment(9, 2),
        eps in 0.0f64..0.5,
    ) {
        let soft = SoftGroupAssignment::from_noisy_labels(&groups, eps).unwrap();
        let bounds = FairnessBounds::from_assignment(&groups);
        let v = soft.expected_infeasible_index(&pi, &bounds).unwrap();
        prop_assert!((0.0..=2.0 * 9.0 + 1e-9).contains(&v), "E[II] = {}", v);
    }

    #[test]
    fn soft_hard_embedding_matches_exact_index(
        pi in permutation(8),
        groups in assignment(8, 2),
    ) {
        let soft = SoftGroupAssignment::from_hard(&groups);
        let bounds = FairnessBounds::from_assignment(&groups);
        let exact = infeasible::two_sided_infeasible_index(&pi, &groups, &bounds).unwrap();
        let expected = soft.expected_infeasible_index(&pi, &bounds).unwrap();
        prop_assert!((expected - exact as f64).abs() < 1e-9, "{} vs {}", expected, exact);
    }

    #[test]
    fn soft_map_of_hard_is_identity(groups in assignment(12, 4)) {
        let soft = SoftGroupAssignment::from_hard(&groups);
        prop_assert_eq!(soft.map_assignment(), groups);
    }
}
