//! Property-based tests for fairness-metrics invariants.

use fairness_metrics::{infeasible, pfair, FairnessBounds, GroupAssignment};
use proptest::prelude::*;
use ranking_core::Permutation;

fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    prop::collection::vec(any::<u64>(), n).prop_map(|keys| {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by_key(|&i| keys[i]);
        Permutation::from_order(idx).expect("valid permutation")
    })
}

fn assignment(n: usize, g: usize) -> impl Strategy<Value = GroupAssignment> {
    prop::collection::vec(0..g, n)
        .prop_map(move |v| GroupAssignment::new(v, g).expect("groups in range"))
}

proptest! {
    #[test]
    fn infeasible_index_bounded(pi in permutation(12), groups in assignment(12, 3)) {
        let b = FairnessBounds::from_assignment(&groups);
        let ii = infeasible::two_sided_infeasible_index(&pi, &groups, &b).unwrap();
        prop_assert!(ii <= 2 * 12);
    }

    #[test]
    fn pfair_percentage_in_range(pi in permutation(10), groups in assignment(10, 4)) {
        let b = FairnessBounds::from_assignment(&groups);
        let v = infeasible::pfair_percentage(&pi, &groups, &b).unwrap();
        prop_assert!((0.0..=100.0).contains(&v));
    }

    #[test]
    fn zero_index_iff_1_fair(pi in permutation(9), groups in assignment(9, 2)) {
        let b = FairnessBounds::from_assignment(&groups);
        let ii = infeasible::two_sided_infeasible_index(&pi, &groups, &b).unwrap();
        let fair = pfair::is_k_fair(&pi, &groups, &b, 1).unwrap();
        prop_assert_eq!(ii == 0, fair, "infeasible index {} vs fair {}", ii, fair);
    }

    #[test]
    fn widening_bounds_never_increases_index(
        pi in permutation(10),
        groups in assignment(10, 3),
        tol in 0.0f64..0.5,
    ) {
        let tight = FairnessBounds::from_assignment(&groups);
        let loose = FairnessBounds::from_assignment_with_tolerance(&groups, tol);
        let ii_tight = infeasible::two_sided_infeasible_index(&pi, &groups, &tight).unwrap();
        let ii_loose = infeasible::two_sided_infeasible_index(&pi, &groups, &loose).unwrap();
        prop_assert!(ii_loose <= ii_tight);
    }

    #[test]
    fn full_prefix_always_satisfies_exact_proportions(groups in assignment(8, 3), pi in permutation(8)) {
        // the length-n prefix contains every item, so counts equal sizes,
        // and floor/ceil of size never excludes the true size
        let b = FairnessBounds::from_assignment(&groups);
        let sizes = groups.group_sizes();
        let counts = groups.prefix_counts(pi.as_order());
        let last = &counts[7];
        for p in 0..groups.num_groups() {
            prop_assert_eq!(last[p], sizes[p]);
            prop_assert!(last[p] >= b.min_count(p, 8));
            prop_assert!(last[p] <= b.max_count(p, 8));
        }
    }

    #[test]
    fn weak_fairness_weaker_than_strong(
        pi in permutation(10),
        groups in assignment(10, 2),
        k in 1usize..10,
    ) {
        let b = FairnessBounds::from_assignment_with_tolerance(&groups, 0.1);
        if pfair::is_k_fair(&pi, &groups, &b, k).unwrap() {
            prop_assert!(pfair::is_weak_k_fair(&pi, &groups, &b, k).unwrap());
        }
    }

    #[test]
    fn violations_consistent_with_breakdown(pi in permutation(10), groups in assignment(10, 3)) {
        let b = FairnessBounds::from_assignment(&groups);
        let breakdown = infeasible::infeasible_breakdown(&pi, &groups, &b).unwrap();
        let details = pfair::violations(&pi, &groups, &b).unwrap();
        // every prefix counted by the breakdown has at least one detailed violation
        let lower_prefixes: std::collections::HashSet<_> = details
            .iter()
            .filter(|v| v.kind == pfair::ViolationKind::Lower)
            .map(|v| v.prefix)
            .collect();
        let upper_prefixes: std::collections::HashSet<_> = details
            .iter()
            .filter(|v| v.kind == pfair::ViolationKind::Upper)
            .map(|v| v.prefix)
            .collect();
        prop_assert_eq!(breakdown.lower_violations, lower_prefixes.len());
        prop_assert_eq!(breakdown.upper_violations, upper_prefixes.len());
    }
}

/// Arbitrary per-group proportion bounds: each group draws two values
/// in `[0, 1]` and uses the smaller as the lower proportion.
fn arbitrary_bounds(g: usize) -> impl Strategy<Value = FairnessBounds> {
    prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), g).prop_map(|pairs| {
        let (lower, upper): (Vec<f64>, Vec<f64>) = pairs
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .unzip();
        FairnessBounds::new(lower, upper).expect("lower ≤ upper within [0, 1]")
    })
}

proptest! {
    #[test]
    fn bound_step_tables_replay_min_and_max_counts(
        bounds in arbitrary_bounds(4),
        n in 0usize..48,
    ) {
        let steps = bounds.steps(n);
        let tables = steps.materialize();
        prop_assert_eq!(&tables, &bounds.tables(n));
        for k in 1..=n {
            for p in 0..bounds.num_groups() {
                prop_assert_eq!(tables.min[k - 1][p], bounds.min_count(p, k));
                prop_assert_eq!(tables.max[k - 1][p], bounds.max_count(p, k));
            }
        }
    }

    #[test]
    fn compiled_infeasible_kernel_matches_naive_breakdown(
        pi in permutation(14),
        groups in assignment(14, 4),
        bounds in arbitrary_bounds(4),
    ) {
        let naive = infeasible::infeasible_breakdown_naive(&pi, &groups, &bounds).unwrap();
        let mut kernel = infeasible::CompiledInfeasible::compile(&bounds, 14);
        prop_assert_eq!(kernel.breakdown(&pi, &groups), naive);
        // the caching evaluator must agree too (fresh compile path)
        let mut eval = infeasible::InfeasibleEvaluator::new();
        prop_assert_eq!(eval.breakdown(&pi, &groups, &bounds).unwrap(), naive);
    }

    #[test]
    fn compiled_infeasible_matches_naive_under_tolerance_bounds(
        pi in permutation(12),
        groups in assignment(12, 3),
        tol in 0.0f64..0.6,
    ) {
        let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, tol);
        let naive = infeasible::infeasible_breakdown_naive(&pi, &groups, &bounds).unwrap();
        let mut kernel = infeasible::CompiledInfeasible::compile(&bounds, 12);
        prop_assert_eq!(kernel.breakdown(&pi, &groups), naive);
    }
}
