//! A small dense linear-programming and integer-programming solver.
//!
//! This crate is the substrate for the paper's ILP (Section IV-B): the
//! DCG-optimal `(α⃗, β⃗)-k`-fair ranking. The workspace's fast path solves
//! that ILP with an exact dynamic program (`fair-baselines::ilp_ranking`);
//! this general-purpose solver exists to *cross-validate* the DP on small
//! instances and to support the noisy-constraint variants, exactly as a
//! commercial solver would in the authors' setup.
//!
//! * [`Problem`] — build an LP/ILP with bounded variables and
//!   `≤ / ≥ / =` constraints;
//! * [`solve_lp`] — two-phase dense primal simplex (Bland's rule);
//! * [`solve_ilp`] — depth-first branch & bound on fractional variables.
//!
//! ```
//! use lp_solver::{Problem, Relation, solve_ilp};
//! // maximize 3x + 2y  s.t. x + y ≤ 4, x ≤ 2, x,y ∈ ℤ₊
//! let mut p = Problem::maximize(vec![3.0, 2.0]);
//! p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0).unwrap();
//! p.add_constraint(vec![(0, 1.0)], Relation::Le, 2.0).unwrap();
//! p.set_integer(0, true);
//! p.set_integer(1, true);
//! let sol = solve_ilp(&p).unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-6); // x=2, y=2
//! ```

#![forbid(unsafe_code)]

mod problem;
mod simplex;

pub use problem::{Problem, Relation};
pub use simplex::solve_lp;

/// Numerical tolerance used across the solver.
pub(crate) const EPS: f64 = 1e-9;
/// Integrality tolerance for branch & bound.
pub(crate) const INT_EPS: f64 = 1e-6;

/// Errors raised by the LP/ILP solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A variable index was out of range.
    InvalidVariable {
        /// Offending variable index.
        var: usize,
        /// Number of declared variables.
        num_vars: usize,
    },
    /// The simplex exceeded its iteration budget (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::InvalidVariable { var, num_vars } => {
                write!(f, "variable {var} out of range for {num_vars} variables")
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// A solution returned by [`solve_lp`] or [`solve_ilp`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values.
    pub values: Vec<f64>,
    /// Optimal objective value (in the problem's original sense).
    pub objective: f64,
}

/// Solve a mixed-integer program by branch & bound over the LP
/// relaxation.
///
/// Depth-first search branching on the most-fractional integer variable;
/// nodes are pruned against the incumbent with a small tolerance. For the
/// workspace's use (cross-validating the fair-ranking DP on `k ≤ 10`)
/// this explores a few hundred nodes at most.
pub fn solve_ilp(problem: &Problem) -> Result<Solution, LpError> {
    let relaxation = solve_lp(problem)?;
    let mut best: Option<Solution> = None;
    let mut stack = vec![(problem.clone(), relaxation)];
    let mut nodes = 0usize;
    const NODE_LIMIT: usize = 200_000;

    while let Some((node, lp_sol)) = stack.pop() {
        nodes += 1;
        if nodes > NODE_LIMIT {
            return Err(LpError::IterationLimit);
        }
        // prune against the incumbent
        if let Some(ref inc) = best {
            let bound = lp_sol.objective;
            let worse = if problem.is_maximize() {
                bound <= inc.objective + INT_EPS
            } else {
                bound >= inc.objective - INT_EPS
            };
            if worse {
                continue;
            }
        }
        // find most fractional integer variable
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = INT_EPS;
        for (v, &val) in lp_sol.values.iter().enumerate() {
            if !node.is_integer(v) {
                continue;
            }
            let frac = (val - val.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((v, val));
            }
        }
        match branch_var {
            None => {
                // integral solution; round off residual fuzz
                let mut sol = lp_sol;
                for (v, val) in sol.values.iter_mut().enumerate() {
                    if node.is_integer(v) {
                        *val = val.round();
                    }
                }
                let better = match &best {
                    None => true,
                    Some(inc) => {
                        if problem.is_maximize() {
                            sol.objective > inc.objective + INT_EPS
                        } else {
                            sol.objective < inc.objective - INT_EPS
                        }
                    }
                };
                if better {
                    best = Some(sol);
                }
            }
            Some((v, val)) => {
                let floor = val.floor();
                // branch 1: x_v ≤ floor(val)
                let mut lo = node.clone();
                lo.tighten_upper(v, floor);
                // branch 2: x_v ≥ ceil(val)
                let mut hi = node.clone();
                hi.tighten_lower(v, floor + 1.0);
                for child in [lo, hi] {
                    match solve_lp(&child) {
                        Ok(sol) => stack.push((child, sol)),
                        Err(LpError::Infeasible) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
    best.ok_or(LpError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_simple_maximize() {
        // max x + y s.t. x ≤ 3, y ≤ 2 → 5
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0).unwrap();
        p.add_constraint(vec![(1, 1.0)], Relation::Le, 2.0).unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn lp_detects_infeasible() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 5.0).unwrap();
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0).unwrap();
        assert_eq!(solve_lp(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn lp_detects_unbounded() {
        let p = Problem::maximize(vec![1.0, 0.0]);
        assert_eq!(solve_lp(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn lp_minimize_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → x=3? no: min puts weight on x.
        // optimum: x = 4, y = 0 → 8? x≥1 satisfied. 2·4=8 vs x=1,y=3 → 11.
        let mut p = Problem::minimize(vec![2.0, 3.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 4.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 1.0).unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-9, "got {}", s.objective);
    }

    #[test]
    fn lp_equality_constraints() {
        // max x s.t. x + y = 3, y ≥ 1 → x = 2
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0)
            .unwrap();
        p.add_constraint(vec![(1, 1.0)], Relation::Ge, 1.0).unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ilp_knapsack() {
        // max 10a + 6b + 4c s.t. a+b+c ≤ 2 (binary) → 16
        let mut p = Problem::maximize(vec![10.0, 6.0, 4.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 2.0)
            .unwrap();
        for v in 0..3 {
            p.set_integer(v, true);
            p.set_upper_bound(v, 1.0).unwrap();
        }
        let s = solve_ilp(&p).unwrap();
        assert!((s.objective - 16.0).abs() < 1e-6);
    }

    #[test]
    fn ilp_fractional_relaxation_forced_integral() {
        // max x s.t. 2x ≤ 3, x integer → x = 1
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![(0, 2.0)], Relation::Le, 3.0).unwrap();
        p.set_integer(0, true);
        let s = solve_ilp(&p).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ilp_infeasible_propagates() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 2.0).unwrap();
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0).unwrap();
        p.set_integer(0, true);
        assert_eq!(solve_ilp(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn ilp_equality_with_binaries() {
        // choose exactly 2 of 4 binaries maximizing weights
        let w = [3.0, 9.0, 1.0, 7.0];
        let mut p = Problem::maximize(w.to_vec());
        p.add_constraint((0..4).map(|v| (v, 1.0)).collect(), Relation::Eq, 2.0)
            .unwrap();
        for v in 0..4 {
            p.set_integer(v, true);
            p.set_upper_bound(v, 1.0).unwrap();
        }
        let s = solve_ilp(&p).unwrap();
        assert!((s.objective - 16.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
        assert!((s.values[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ilp_assignment_problem_is_integral() {
        // 3×3 assignment: LP relaxation already integral; ILP must agree
        // with the known optimum 5 (see assignment-solver doc example).
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let var = |i: usize, j: usize| i * 3 + j;
        let mut obj = vec![0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                obj[var(i, j)] = costs[i][j];
            }
        }
        let mut p = Problem::minimize(obj);
        for i in 0..3 {
            p.add_constraint(
                (0..3).map(|j| (var(i, j), 1.0)).collect(),
                Relation::Eq,
                1.0,
            )
            .unwrap();
            p.add_constraint(
                (0..3).map(|j| (var(j, i), 1.0)).collect(),
                Relation::Eq,
                1.0,
            )
            .unwrap();
        }
        for v in 0..9 {
            p.set_integer(v, true);
            p.set_upper_bound(v, 1.0).unwrap();
        }
        let s = solve_ilp(&p).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_variable_index_rejected() {
        let mut p = Problem::maximize(vec![1.0]);
        assert!(matches!(
            p.add_constraint(vec![(3, 1.0)], Relation::Le, 1.0),
            Err(LpError::InvalidVariable { var: 3, .. })
        ));
        assert!(p.set_upper_bound(5, 1.0).is_err());
    }
}
