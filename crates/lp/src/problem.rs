//! LP/ILP problem construction.

use crate::LpError;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Constraint {
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear (or mixed-integer) program over non-negative variables.
///
/// Variables are indexed `0..num_vars`, implicitly bounded below by 0
/// (shiftable with the crate-internal `tighten_lower`) and optionally bounded
/// above. Mark variables integral with [`Problem::set_integer`] and solve
/// with [`crate::solve_lp`] / [`crate::solve_ilp`].
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    pub(crate) objective: Vec<f64>,
    pub(crate) maximize: bool,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) integer: Vec<bool>,
    /// per-variable lower bounds (default 0)
    pub(crate) lower: Vec<f64>,
    /// per-variable upper bounds (default +∞)
    pub(crate) upper: Vec<f64>,
}

impl Problem {
    /// A maximization problem with the given objective coefficients.
    pub fn maximize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        Problem {
            objective,
            maximize: true,
            constraints: Vec::new(),
            integer: vec![false; n],
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
        }
    }

    /// A minimization problem with the given objective coefficients.
    pub fn minimize(objective: Vec<f64>) -> Self {
        let mut p = Problem::maximize(objective);
        p.maximize = false;
        p
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Whether this is a maximization problem.
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Whether variable `v` is constrained to be integral.
    pub fn is_integer(&self, v: usize) -> bool {
        self.integer[v]
    }

    /// Add a linear constraint given as sparse `(variable, coefficient)`
    /// pairs. Duplicate variable entries are summed.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        for &(v, _) in &coeffs {
            if v >= self.num_vars() {
                return Err(LpError::InvalidVariable {
                    var: v,
                    num_vars: self.num_vars(),
                });
            }
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        Ok(())
    }

    /// Mark variable `v` as integral (for [`crate::solve_ilp`]).
    pub fn set_integer(&mut self, v: usize, integral: bool) {
        self.integer[v] = integral;
    }

    /// Set an upper bound on variable `v`.
    pub fn set_upper_bound(&mut self, v: usize, ub: f64) -> Result<(), LpError> {
        if v >= self.num_vars() {
            return Err(LpError::InvalidVariable {
                var: v,
                num_vars: self.num_vars(),
            });
        }
        self.upper[v] = self.upper[v].min(ub);
        Ok(())
    }

    /// Set a lower bound on variable `v` (≥ 0; the solver works over the
    /// non-negative orthant).
    pub fn set_lower_bound(&mut self, v: usize, lb: f64) -> Result<(), LpError> {
        if v >= self.num_vars() {
            return Err(LpError::InvalidVariable {
                var: v,
                num_vars: self.num_vars(),
            });
        }
        self.lower[v] = self.lower[v].max(lb.max(0.0));
        Ok(())
    }

    /// Branch & bound internal: tighten the upper bound (never loosens).
    pub(crate) fn tighten_upper(&mut self, v: usize, ub: f64) {
        self.upper[v] = self.upper[v].min(ub);
    }

    /// Branch & bound internal: tighten the lower bound (never loosens).
    pub(crate) fn tighten_lower(&mut self, v: usize, lb: f64) {
        self.lower[v] = self.lower[v].max(lb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_direction() {
        assert!(Problem::maximize(vec![1.0]).is_maximize());
        assert!(!Problem::minimize(vec![1.0]).is_maximize());
    }

    #[test]
    fn bounds_only_tighten() {
        let mut p = Problem::maximize(vec![1.0]);
        p.set_upper_bound(0, 5.0).unwrap();
        p.set_upper_bound(0, 9.0).unwrap(); // looser: ignored
        assert_eq!(p.upper[0], 5.0);
        p.set_lower_bound(0, 2.0).unwrap();
        p.set_lower_bound(0, 1.0).unwrap(); // looser: ignored
        assert_eq!(p.lower[0], 2.0);
    }

    #[test]
    fn negative_lower_bound_clamped_to_zero() {
        let mut p = Problem::maximize(vec![1.0]);
        p.set_lower_bound(0, -3.0).unwrap();
        assert_eq!(p.lower[0], 0.0);
    }
}
