//! Dense two-phase primal simplex.

use crate::problem::{Problem, Relation};
use crate::{LpError, Solution, EPS};

/// Solve the LP relaxation of `problem` with a dense two-phase tableau
/// simplex. Integrality markers are ignored.
///
/// Variable lower bounds are substituted away (`x = y + lb`), finite upper
/// bounds become rows. Bland's rule guarantees termination; a generous
/// iteration cap guards against numerical livelock.
pub fn solve_lp(problem: &Problem) -> Result<Solution, LpError> {
    let n = problem.num_vars();

    // Shift by lower bounds: y = x − lb ≥ 0.
    for v in 0..n {
        if problem.upper[v] - problem.lower[v] < -EPS {
            return Err(LpError::Infeasible);
        }
    }

    // Build rows: (coeffs over original vars, relation, shifted rhs).
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
    for c in &problem.constraints {
        let mut dense = vec![0.0; n];
        for &(v, a) in &c.coeffs {
            dense[v] += a;
        }
        let shift: f64 = (0..n).map(|v| dense[v] * problem.lower[v]).sum();
        rows.push((dense, c.relation, c.rhs - shift));
    }
    // Finite upper bounds as rows: y_v ≤ ub − lb.
    for v in 0..n {
        if problem.upper[v].is_finite() {
            let mut dense = vec![0.0; n];
            dense[v] = 1.0;
            rows.push((dense, Relation::Le, problem.upper[v] - problem.lower[v]));
        }
    }

    // Normalize rhs ≥ 0.
    for (dense, rel, rhs) in &mut rows {
        if *rhs < 0.0 {
            for a in dense.iter_mut() {
                *a = -*a;
            }
            *rhs = -*rhs;
            *rel = match *rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [0..n) structural | [n..n+slacks) slack/surplus |
    // [.., ..+artificials) artificial.
    let num_slack = rows.iter().filter(|(_, r, _)| *r != Relation::Eq).count();
    let num_art = rows.iter().filter(|(_, r, _)| *r != Relation::Le).count();
    let total = n + num_slack + num_art;

    let mut t = vec![vec![0.0f64; total + 1]; m]; // +1: rhs
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + num_slack;
    let mut artificial_cols: Vec<usize> = Vec::new();

    for (r, (dense, rel, rhs)) in rows.iter().enumerate() {
        t[r][..n].copy_from_slice(dense);
        t[r][total] = *rhs;
        match rel {
            Relation::Le => {
                t[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                t[r][slack_idx] = -1.0;
                slack_idx += 1;
                t[r][art_idx] = 1.0;
                basis[r] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                t[r][art_idx] = 1.0;
                basis[r] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let is_artificial = {
        let mut v = vec![false; total];
        for &c in &artificial_cols {
            v[c] = true;
        }
        v
    };

    // Phase 1: maximize −Σ artificials.
    if !artificial_cols.is_empty() {
        let mut z = vec![0.0f64; total + 1];
        // z_j = c_B^T col_j − c_j with c = −1 on artificials, 0 elsewhere.
        for r in 0..m {
            if is_artificial[basis[r]] {
                for j in 0..=total {
                    z[j] -= t[r][j];
                }
            }
        }
        for &c in &artificial_cols {
            z[c] += 1.0; // − c_j with c_j = −1
        }
        run_simplex(&mut t, &mut basis, &mut z, total)?;
        if z[total] < -1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining artificials out of the basis.
        for r in 0..m {
            if is_artificial[basis[r]] {
                if let Some(j) = (0..n + num_slack).find(|&j| t[r][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, &mut vec![0.0; total + 1], r, j);
                }
                // If no pivot column exists the row is redundant (all
                // structural coefficients zero, rhs ~0); keep it inert.
            }
        }
        // Forbid artificial columns from re-entering: zero them out.
        for row in &mut t {
            for &c in &artificial_cols {
                row[c] = 0.0;
            }
        }
    }

    // Phase 2: original objective (internally always maximize).
    let sign = if problem.maximize { 1.0 } else { -1.0 };
    let mut z = vec![0.0f64; total + 1];
    for (j, z_j) in z.iter_mut().take(n).enumerate() {
        *z_j = -sign * problem.objective[j];
    }
    // Make z basic-consistent: z_row must be 0 on basic columns.
    for r in 0..m {
        let b = basis[r];
        if b < total && z[b].abs() > EPS {
            let factor = z[b];
            for j in 0..=total {
                z[j] -= factor * t[r][j];
            }
        }
    }
    run_simplex(&mut t, &mut basis, &mut z, total)?;

    // Extract solution.
    let mut y = vec![0.0f64; total];
    for r in 0..m {
        if basis[r] < total {
            y[basis[r]] = t[r][total];
        }
    }
    let values: Vec<f64> = (0..n).map(|v| y[v] + problem.lower[v]).collect();
    let objective: f64 = values
        .iter()
        .zip(&problem.objective)
        .map(|(x, c)| x * c)
        .sum();
    Ok(Solution { values, objective })
}

/// Pivot until optimal. `z` is the reduced-cost row (maximization form:
/// optimal when all entries ≥ −EPS).
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    z: &mut [f64],
    total: usize,
) -> Result<(), LpError> {
    let m = t.len();
    let max_iter = 50_000 + 200 * (m + total);
    for _ in 0..max_iter {
        // Bland: entering = smallest index with negative reduced cost.
        let Some(enter) = (0..total).find(|&j| z[j] < -EPS) else {
            return Ok(());
        };
        // Ratio test; Bland tie-break on smallest basis variable.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for r in 0..m {
            if t[r][enter] > EPS {
                let ratio = t[r][total] / t[r][enter];
                let better = ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[r] < basis[l]));
                if better {
                    best = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, z, leave, enter);
    }
    Err(LpError::IterationLimit)
}

/// Gaussian pivot on `(row, col)` updating the tableau, basis and z-row.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], z: &mut [f64], row: usize, col: usize) {
    let m = t.len();
    let width = t[row].len();
    let pv = t[row][col];
    debug_assert!(pv.abs() > EPS, "pivot on ~zero element");
    for j in 0..width {
        t[row][j] /= pv;
    }
    for r in 0..m {
        if r != row && t[r][col].abs() > EPS {
            let f = t[r][col];
            for j in 0..width {
                t[r][j] -= f * t[row][j];
            }
        }
    }
    if z[col].abs() > EPS {
        let f = z[col];
        for j in 0..width {
            z[j] -= f * t[row][j];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_problem_terminates() {
        // classic degeneracy: multiple identical constraints
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        for _ in 0..4 {
            p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0)
                .unwrap();
        }
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_variable_bounds() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.set_upper_bound(0, 2.0).unwrap();
        p.set_upper_bound(1, 3.0).unwrap();
        p.set_lower_bound(1, 1.0).unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-9);
        assert!((s.values[0] - 2.0).abs() < 1e-9);
        assert!((s.values[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn crossed_bounds_are_infeasible() {
        let mut p = Problem::maximize(vec![1.0]);
        p.set_lower_bound(0, 3.0).unwrap();
        p.set_upper_bound(0, 2.0).unwrap();
        assert_eq!(solve_lp(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn minimization_with_lower_bounds() {
        // min x + y s.t. x + y ≥ 2, x ≥ 0.5 → 2
        let mut p = Problem::minimize(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        p.set_lower_bound(0, 0.5).unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x − y ≤ −1 with x,y ≤ 5: max x → x = 4 (y = 5)
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Le, -1.0)
            .unwrap();
        p.set_upper_bound(0, 5.0).unwrap();
        p.set_upper_bound(1, 5.0).unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-9, "got {}", s.objective);
    }

    #[test]
    fn redundant_equality_rows_handled() {
        // x + y = 2 stated twice
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        // (x + x) ≤ 4 → x ≤ 2
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![(0, 1.0), (0, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
    }
}
