//! Property-based tests: the branch & bound ILP against exhaustive
//! enumeration on random 0/1 knapsack instances, plus LP sanity.

use lp_solver::{solve_ilp, solve_lp, Problem, Relation};
use proptest::prelude::*;

/// Random 0/1 knapsack: maximize Σ vᵢ xᵢ s.t. Σ wᵢ xᵢ ≤ C, xᵢ ∈ {0, 1}.
fn knapsack(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, f64)> {
    (
        prop::collection::vec(0.1f64..10.0, n),
        prop::collection::vec(0.1f64..10.0, n),
        1.0f64..20.0,
    )
}

fn build_knapsack(values: &[f64], weights: &[f64], capacity: f64) -> Problem {
    let n = values.len();
    let mut p = Problem::maximize(values.to_vec());
    p.add_constraint(
        weights.iter().copied().enumerate().collect(),
        Relation::Le,
        capacity,
    )
    .unwrap();
    for v in 0..n {
        p.set_integer(v, true);
        p.set_upper_bound(v, 1.0).unwrap();
    }
    p
}

fn brute_force_knapsack(values: &[f64], weights: &[f64], capacity: f64) -> f64 {
    let n = values.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let (mut v, mut w) = (0.0, 0.0);
        for i in 0..n {
            if mask & (1 << i) != 0 {
                v += values[i];
                w += weights[i];
            }
        }
        if w <= capacity + 1e-9 {
            best = best.max(v);
        }
    }
    best
}

proptest! {
    #[test]
    fn branch_and_bound_matches_brute_force((values, weights, capacity) in knapsack(8)) {
        let p = build_knapsack(&values, &weights, capacity);
        let sol = solve_ilp(&p).unwrap();
        let brute = brute_force_knapsack(&values, &weights, capacity);
        prop_assert!(
            (sol.objective - brute).abs() < 1e-6,
            "B&B {} vs brute force {}",
            sol.objective,
            brute
        );
        // the reported values are integral and feasible
        let mut w = 0.0;
        for (i, &x) in sol.values.iter().enumerate() {
            prop_assert!((x - x.round()).abs() < 1e-6, "fractional x[{}] = {}", i, x);
            w += weights[i] * x;
        }
        prop_assert!(w <= capacity + 1e-6, "capacity violated: {} > {}", w, capacity);
    }

    #[test]
    fn lp_relaxation_bounds_the_ilp((values, weights, capacity) in knapsack(7)) {
        let p = build_knapsack(&values, &weights, capacity);
        let relaxed = solve_lp(&p).unwrap();
        let integral = solve_ilp(&p).unwrap();
        prop_assert!(
            relaxed.objective >= integral.objective - 1e-6,
            "LP bound {} below ILP {}",
            relaxed.objective,
            integral.objective
        );
    }

    #[test]
    fn lp_scaling_invariance(values in prop::collection::vec(0.1f64..10.0, 5), scale in 0.1f64..5.0) {
        // maximizing c·x and (s·c)·x over the same polytope scales the
        // optimum by s.
        let mut p1 = Problem::maximize(values.clone());
        let mut p2 =
            Problem::maximize(values.iter().map(|v| v * scale).collect::<Vec<_>>());
        for p in [&mut p1, &mut p2] {
            p.add_constraint(
                (0..5).map(|i| (i, 1.0)).collect(),
                Relation::Le,
                3.0,
            )
            .unwrap();
            for v in 0..5 {
                p.set_upper_bound(v, 1.0).unwrap();
            }
        }
        let a = solve_lp(&p1).unwrap();
        let b = solve_lp(&p2).unwrap();
        prop_assert!(
            (b.objective - scale * a.objective).abs() < 1e-6 * (1.0 + a.objective.abs()),
            "{} vs {}",
            b.objective,
            scale * a.objective
        );
    }
}
