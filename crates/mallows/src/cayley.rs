//! Mallows model under the **Cayley distance**.
//!
//! The paper's conclusions propose exploring different "noise
//! distributions" beyond Kendall-tau Mallows; the Cayley variant is the
//! natural first alternative because its partition function and exact
//! sampler are both closed-form:
//!
//! * `P[π | π₀, θ] = e^{−θ·d_C(π, π₀)} / Z_n(θ)` with
//!   `Z_n(θ) = Π_{j=1}^{n−1} (1 + j·e^{−θ})`;
//! * `d_C(π, π₀) = n − cycles(π·π₀⁻¹)`, so with `α = e^{θ}` the model is
//!   the Ewens distribution `P ∝ α^{cycles}` relabelled by the centre,
//!   and the **Chinese restaurant process** with concentration `α`
//!   samples it exactly;
//! * `E[d_C] = Σ_{j=1}^{n−1} j·e^{−θ} / (1 + j·e^{−θ})` — a sum of
//!   independent Bernoulli means, used for dispersion tuning.
//!
//! Swapping [`CayleyMallows`] for [`MallowsModel`](crate::MallowsModel)
//! in Algorithm 1 changes the *geometry* of the noise (transpositions
//! anywhere rather than adjacent-swap mass): the `ext_noise` experiment
//! compares the fairness/utility trade-off of the two.

use crate::{MallowsError, Result};
use rand::Rng;
use ranking_core::{distance, Permutation};

/// A Mallows distribution under Cayley distance (see module docs).
#[derive(Debug, Clone)]
pub struct CayleyMallows {
    center: Permutation,
    theta: f64,
}

impl CayleyMallows {
    /// Create a model with centre `π₀` and dispersion `θ ≥ 0`.
    pub fn new(center: Permutation, theta: f64) -> Result<Self> {
        if !theta.is_finite() || theta < 0.0 {
            return Err(MallowsError::InvalidTheta { theta });
        }
        Ok(CayleyMallows { center, theta })
    }

    /// The centre (location) permutation `π₀`.
    pub fn center(&self) -> &Permutation {
        &self.center
    }

    /// The dispersion parameter `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of ranked items.
    pub fn len(&self) -> usize {
        self.center.len()
    }

    /// True for the degenerate empty model.
    pub fn is_empty(&self) -> bool {
        self.center.is_empty()
    }

    /// Draw one exact sample via the Chinese restaurant process with
    /// concentration `α = e^{θ}`.
    ///
    /// The CRP seating of `n` customers induces a permutation `τ` (each
    /// customer maps to the next at their table) with
    /// `P[τ] ∝ α^{cycles(τ)}`; relabelling by the centre turns the cycle
    /// deficit into Cayley distance from `π₀`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Permutation {
        let mut out = Permutation::identity(0);
        self.sample_into(&mut out, rng);
        out
    }

    /// Draw one sample into `out`, reusing its buffer (one transient
    /// CRP seating vector is still allocated per call).
    ///
    /// ```
    /// use mallows_model::CayleyMallows;
    /// use ranking_core::Permutation;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let model = CayleyMallows::new(Permutation::identity(7), 1.0).unwrap();
    /// let mut rng = StdRng::seed_from_u64(2);
    /// let mut out = Permutation::identity(0);
    /// model.sample_into(&mut out, &mut rng);
    /// assert_eq!(out.len(), 7);
    /// ```
    pub fn sample_into<R: Rng + ?Sized>(&self, out: &mut Permutation, rng: &mut R) {
        let n = self.center.len();
        let alpha = self.theta.exp();
        // next[i] = customer to the right of i at its table. (Customers
        // are seated in index order, so "a uniformly random seated
        // customer" is just a uniform draw from 0..i.)
        let mut next: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            let p_new = alpha / (alpha + i as f64);
            if rng.random::<f64>() < p_new {
                next.push(i); // opens a new table: fixed point for now
            } else {
                let j = rng.random_range(0..i);
                next.push(next[j]);
                next[j] = i;
            }
        }
        // π.order[τ[k]] = π₀.order[k] makes relative_to(π, π₀) equal τ.
        out.refill_unchecked(|order| {
            order.clear();
            order.resize(n, usize::MAX);
            for (k, &tk) in next.iter().enumerate() {
                order[tk] = self.center.item_at(k);
            }
        });
    }

    /// Draw `m` independent samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<Permutation> {
        let mut out = Vec::with_capacity(m);
        for _ in 0..m {
            out.push(self.sample(rng));
        }
        out
    }

    /// Natural log of the partition function
    /// `Z_n(θ) = Π_{j=1}^{n−1} (1 + j·e^{−θ})`.
    pub fn ln_partition(&self) -> f64 {
        ln_partition_cayley(self.center.len(), self.theta)
    }

    /// Probability mass of `pi` under the model.
    pub fn pmf(&self, pi: &Permutation) -> Result<f64> {
        Ok(self.ln_pmf(pi)?.exp())
    }

    /// Log probability mass of `pi` under the model.
    pub fn ln_pmf(&self, pi: &Permutation) -> Result<f64> {
        if pi.len() != self.center.len() {
            return Err(MallowsError::LengthMismatch {
                center: self.center.len(),
                other: pi.len(),
            });
        }
        let d = distance::cayley(pi, &self.center).expect("lengths checked") as f64;
        Ok(-self.theta * d - self.ln_partition())
    }

    /// Closed-form expected Cayley distance from the centre:
    /// `E[d_C] = Σ_{j=1}^{n−1} j·e^{−θ} / (1 + j·e^{−θ})`.
    pub fn expected_cayley(&self) -> f64 {
        expected_cayley(self.center.len(), self.theta)
    }
}

/// `ln Z_n(θ)` for the Cayley model; free function for estimators.
pub fn ln_partition_cayley(n: usize, theta: f64) -> f64 {
    let e = (-theta).exp();
    (1..n).map(|j| (1.0 + j as f64 * e).ln()).sum()
}

/// Closed-form `E[d_C]` for `n` items at dispersion `theta`.
pub fn expected_cayley(n: usize, theta: f64) -> f64 {
    let e = (-theta).exp();
    (1..n)
        .map(|j| {
            let je = j as f64 * e;
            je / (1.0 + je)
        })
        .sum()
}

/// Dispersion whose expected Cayley distance equals `target`, by
/// bisection on the strictly decreasing map `θ ↦ E[d_C]`. Targets at or
/// above the `θ = 0` mean return `0`; non-positive targets return a
/// large `θ` (concentration).
pub fn theta_for_expected_cayley(n: usize, target: f64) -> f64 {
    const THETA_MAX: f64 = 50.0;
    if n < 2 || target >= expected_cayley(n, 0.0) {
        return 0.0;
    }
    if target <= expected_cayley(n, THETA_MAX) {
        return THETA_MAX;
    }
    let (mut lo, mut hi) = (0.0f64, THETA_MAX);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected_cayley(n, mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn rejects_invalid_theta() {
        assert!(CayleyMallows::new(Permutation::identity(3), -0.1).is_err());
        assert!(CayleyMallows::new(Permutation::identity(3), f64::INFINITY).is_err());
    }

    #[test]
    fn samples_are_valid_permutations() {
        let m = CayleyMallows::new(Permutation::identity(15), 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = m.sample(&mut rng);
            let mut v = s.as_order().to_vec();
            v.sort_unstable();
            assert_eq!(v, (0..15).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for theta in [0.0, 0.5, 1.5] {
            let m = CayleyMallows::new(Permutation::identity(5), theta).unwrap();
            let total: f64 = Permutation::enumerate_all(5)
                .iter()
                .map(|p| m.pmf(p).unwrap())
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "θ={theta}: Σpmf = {total}");
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let m = CayleyMallows::new(Permutation::identity(3), 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let draws = 6000;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..draws {
            *counts.entry(m.sample(&mut rng).into_order()).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        for (_, c) in counts {
            let expected = draws as f64 / 6.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "count {c}"
            );
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let center = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        let m = CayleyMallows::new(center, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let draws = 40_000;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..draws {
            *counts.entry(m.sample(&mut rng).into_order()).or_default() += 1;
        }
        for pi in Permutation::enumerate_all(4) {
            let p = m.pmf(&pi).unwrap();
            let observed = *counts.get(pi.as_order()).unwrap_or(&0) as f64 / draws as f64;
            let sigma = (p * (1.0 - p) / draws as f64).sqrt();
            assert!(
                (observed - p).abs() < 5.0 * sigma + 1e-4,
                "π={pi}: pmf {p:.5} vs observed {observed:.5}"
            );
        }
    }

    #[test]
    fn high_theta_concentrates_on_center() {
        let center = Permutation::from_order(vec![4, 2, 0, 3, 1]).unwrap();
        let m = CayleyMallows::new(center.clone(), 20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let same = (0..200).filter(|_| m.sample(&mut rng) == center).count();
        assert!(
            same > 190,
            "only {same}/200 samples equal the centre at θ=20"
        );
    }

    #[test]
    fn expected_cayley_matches_monte_carlo() {
        let n = 12;
        for theta in [0.3, 1.0, 2.0] {
            let m = CayleyMallows::new(Permutation::identity(n), theta).unwrap();
            let mut rng = StdRng::seed_from_u64(41);
            let draws = 4000;
            let mean: f64 = (0..draws)
                .map(|_| distance::cayley(&m.sample(&mut rng), m.center()).unwrap() as f64)
                .sum::<f64>()
                / draws as f64;
            let expect = m.expected_cayley();
            assert!(
                (mean - expect).abs() < 0.08 * expect.max(1.0),
                "θ={theta}: MC {mean:.3} vs closed form {expect:.3}"
            );
        }
    }

    #[test]
    fn partition_at_zero_is_factorial() {
        // Z_n(0) = Π (1+j) = n!
        assert!((ln_partition_cayley(6, 0.0) - 720f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn expected_cayley_decreases_in_theta() {
        let mut last = f64::INFINITY;
        for theta in [0.0, 0.2, 0.5, 1.0, 2.0, 4.0] {
            let v = expected_cayley(10, theta);
            assert!(v < last);
            last = v;
        }
    }

    #[test]
    fn theta_for_expected_cayley_inverts() {
        let n = 30;
        for theta in [0.2, 0.8, 1.7] {
            let target = expected_cayley(n, theta);
            let recovered = theta_for_expected_cayley(n, target);
            assert!(
                (recovered - theta).abs() < 1e-6,
                "θ={theta} got {recovered}"
            );
        }
        assert_eq!(theta_for_expected_cayley(20, 1e9), 0.0);
    }

    #[test]
    fn ln_pmf_length_mismatch_errors() {
        let m = CayleyMallows::new(Permutation::identity(4), 1.0).unwrap();
        assert!(m.ln_pmf(&Permutation::identity(3)).is_err());
    }
}
