//! Dispersion tuning: pick `θ` to achieve a target noise level.
//!
//! The paper's conclusion proposes "a systematic methodology for
//! incorporating noise into rankings … such as tuning the dispersion in
//! the case of Mallows' model". This module provides the two natural
//! knobs:
//!
//! * [`theta_for_expected_distance`] — target an absolute expected
//!   Kendall tau distance;
//! * [`theta_for_normalized_distance`] — target a fraction of the maximum
//!   distance `n(n−1)/2`, which transfers across ranking sizes.

use crate::mle::solve_theta_for_distance;
use crate::model::expected_kendall_tau;

/// `θ` such that `E[d_KT]` under `M(·, θ)` equals `target` (clamped to
/// the achievable range `[0, n(n−1)/4]`).
pub fn theta_for_expected_distance(n: usize, target: f64) -> f64 {
    solve_theta_for_distance(n, target.max(0.0))
}

/// `θ` such that the expected Kendall tau distance is `fraction` of the
/// maximum `n(n−1)/2`. A fraction of `0.5` corresponds to the uniform
/// distribution; fractions above that are unreachable and clamp to
/// `θ = 0`.
pub fn theta_for_normalized_distance(n: usize, fraction: f64) -> f64 {
    let max_d = n as f64 * (n as f64 - 1.0) / 2.0;
    theta_for_expected_distance(n, fraction.clamp(0.0, 1.0) * max_d)
}

/// Expected *normalized* Kendall tau distance (fraction of maximum) at a
/// given dispersion — the inverse view of
/// [`theta_for_normalized_distance`].
pub fn normalized_expected_distance(n: usize, theta: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let max_d = n as f64 * (n as f64 - 1.0) / 2.0;
    expected_kendall_tau(n, theta) / max_d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_target_round_trips() {
        let theta = theta_for_expected_distance(20, 30.0);
        assert!((expected_kendall_tau(20, theta) - 30.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_target_round_trips() {
        let theta = theta_for_normalized_distance(15, 0.1);
        assert!((normalized_expected_distance(15, theta) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn unreachable_fraction_clamps_to_zero_theta() {
        assert_eq!(theta_for_normalized_distance(10, 0.9), 0.0);
        assert_eq!(theta_for_normalized_distance(10, 0.5), 0.0);
    }

    #[test]
    fn negative_target_gives_max_concentration() {
        let theta = theta_for_expected_distance(10, -5.0);
        assert!(theta >= 29.0, "θ should saturate, got {theta}");
    }

    #[test]
    fn normalized_distance_monotone_in_theta() {
        let mut last = f64::INFINITY;
        for theta in [0.0, 0.5, 1.0, 2.0, 5.0] {
            let v = normalized_expected_distance(25, theta);
            assert!(v <= last);
            last = v;
        }
    }

    #[test]
    fn tiny_rankings_are_degenerate() {
        assert_eq!(normalized_expected_distance(1, 2.0), 0.0);
        assert_eq!(theta_for_expected_distance(1, 3.0), 0.0);
    }
}
