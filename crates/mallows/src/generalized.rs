//! The Generalized Mallows Model (Fligner & Verducci, 1986).
//!
//! Instead of one dispersion θ, the GMM carries a vector
//! `θ⃗ = (θ₁, …, θ_{n−1})`, one per insertion stage: stage `j` of the
//! repeated insertion model draws its inversion count `V_j` from the
//! truncated geometric at `θ_j`. Position-dependent dispersion lets the
//! noise concentrate at the top of the ranking (large θ for early
//! stages) or the bottom — the "tuning parameters within the noise
//! distribution" the paper's conclusion proposes to explore.
//!
//! With all components equal the GMM coincides with the standard
//! [`crate::MallowsModel`].

use crate::tables::sample_truncated_geometric;
use crate::{MallowsError, Result};
use rand::Rng;
use ranking_core::Permutation;

/// A generalized Mallows distribution with per-stage dispersions.
#[derive(Debug, Clone)]
pub struct GeneralizedMallows {
    center: Permutation,
    thetas: Vec<f64>,
}

impl GeneralizedMallows {
    /// Create a GMM; `thetas.len()` must be `center.len().saturating_sub(1)`
    /// (stage `j ∈ 2..=n` uses `thetas[j−2]`; stage 1 has no freedom).
    pub fn new(center: Permutation, thetas: Vec<f64>) -> Result<Self> {
        if thetas.len() != center.len().saturating_sub(1) {
            return Err(MallowsError::LengthMismatch {
                center: center.len().saturating_sub(1),
                other: thetas.len(),
            });
        }
        if let Some(&bad) = thetas.iter().find(|t| !t.is_finite() || **t < 0.0) {
            return Err(MallowsError::InvalidTheta { theta: bad });
        }
        Ok(GeneralizedMallows { center, thetas })
    }

    /// Uniform-dispersion constructor (equivalent to the standard model).
    pub fn uniform(center: Permutation, theta: f64) -> Result<Self> {
        let n = center.len();
        GeneralizedMallows::new(center, vec![theta; n.saturating_sub(1)])
    }

    /// Head-mixing dispersion: θ grows geometrically across the
    /// insertion stages, from `theta_max · decay^{n−2}` at stage 2 up to
    /// `theta_max` at the last stage. Late stages (which insert the
    /// low-ranked items) are concentrated, so tail items stay anchored
    /// at the bottom; early stages are loose, so the top items shuffle
    /// *among themselves*. The net effect is localized randomization of
    /// the head — exactly where prefix-fairness metrics bite — while
    /// deep prefixes keep the centre's order. `decay ∈ (0, 1]`.
    pub fn head_mixing(center: Permutation, theta_max: f64, decay: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&decay) || decay == 0.0 {
            return Err(MallowsError::InvalidTheta { theta: decay });
        }
        let n = center.len();
        let thetas = (0..n.saturating_sub(1))
            .map(|i| theta_max * decay.powi((n.saturating_sub(2) - i) as i32))
            .collect();
        GeneralizedMallows::new(center, thetas)
    }

    /// The centre permutation.
    pub fn center(&self) -> &Permutation {
        &self.center
    }

    /// The per-stage dispersions.
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    /// Draw one exact sample via the stage-wise RIM.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Permutation {
        let n = self.center.len();
        let code: Vec<usize> = (1..=n)
            .map(|j| {
                if j == 1 {
                    0
                } else {
                    sample_truncated_geometric((-self.thetas[j - 2]).exp(), j, rng)
                }
            })
            .collect();
        ranking_core::lehmer::decode_insertion_code(&self.center, &code)
            .expect("sampled code is stage-valid by construction")
    }

    /// Draw one sample into `out`, reusing its buffer (no allocation
    /// beyond `out`'s capacity).
    ///
    /// Decodes by streaming insertion, which moves `Σ V_j` elements in
    /// total — cheap at the concentrated dispersions the GMM is used
    /// with, `O(n²)` in the uniform `θ⃗ = 0` worst case.
    ///
    /// ```
    /// use mallows_model::GeneralizedMallows;
    /// use ranking_core::Permutation;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let gmm = GeneralizedMallows::uniform(Permutation::identity(8), 1.5).unwrap();
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let mut out = Permutation::identity(0);
    /// gmm.sample_into(&mut out, &mut rng);
    /// assert_eq!(out.len(), 8);
    /// ```
    pub fn sample_into<R: Rng + ?Sized>(&self, out: &mut Permutation, rng: &mut R) {
        ranking_core::lehmer::decode_streaming_into(&self.center, out, |j| {
            if j == 1 {
                0
            } else {
                sample_truncated_geometric((-self.thetas[j - 2]).exp(), j, rng)
            }
        });
    }

    /// Closed-form expected Kendall tau distance:
    /// `Σ_j E[V_j(θ_j)]` with the truncated-geometric mean per stage.
    pub fn expected_kendall_tau(&self) -> f64 {
        (2..=self.center.len())
            .map(|j| truncated_geometric_mean((-self.thetas[j - 2]).exp(), j))
            .sum()
    }
}

/// Mean of `V ∈ {0..j−1}`, `P(V = v) ∝ q^v`.
fn truncated_geometric_mean(q: f64, j: usize) -> f64 {
    if q >= 1.0 {
        return (j as f64 - 1.0) / 2.0;
    }
    let qj = q.powi(j as i32);
    q / (1.0 - q) - j as f64 * qj / (1.0 - qj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MallowsModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ranking_core::distance;

    #[test]
    fn shape_validation() {
        assert!(GeneralizedMallows::new(Permutation::identity(4), vec![1.0, 1.0]).is_err());
        assert!(GeneralizedMallows::new(Permutation::identity(4), vec![1.0, -1.0, 1.0]).is_err());
        assert!(GeneralizedMallows::new(Permutation::identity(4), vec![1.0, 1.0, 1.0]).is_ok());
    }

    #[test]
    fn uniform_gmm_matches_standard_mallows_statistics() {
        let center = Permutation::identity(10);
        let gmm = GeneralizedMallows::uniform(center.clone(), 0.8).unwrap();
        let std_model = MallowsModel::new(center, 0.8).unwrap();
        assert!((gmm.expected_kendall_tau() - std_model.expected_kendall_tau()).abs() < 1e-9);

        let mut rng = StdRng::seed_from_u64(1);
        let draws = 4000;
        let mean: f64 = (0..draws)
            .map(|_| distance::kendall_tau(&gmm.sample(&mut rng), gmm.center()).unwrap() as f64)
            .sum::<f64>()
            / draws as f64;
        assert!(
            (mean - gmm.expected_kendall_tau()).abs() < 0.1 * gmm.expected_kendall_tau(),
            "MC mean {mean} vs {}",
            gmm.expected_kendall_tau()
        );
    }

    #[test]
    fn samples_are_valid_permutations() {
        let gmm = GeneralizedMallows::head_mixing(Permutation::identity(12), 3.0, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = gmm.sample(&mut rng);
            let mut v = s.as_order().to_vec();
            v.sort_unstable();
            assert_eq!(v, (0..12).collect::<Vec<_>>());
        }
    }

    #[test]
    fn head_mixing_perturbs_the_head_more_than_the_tail() {
        let n = 20;
        let center = Permutation::identity(n);
        let gmm = GeneralizedMallows::head_mixing(center.clone(), 4.0, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 800;
        let mut head_disp = 0.0;
        let mut tail_disp = 0.0;
        for _ in 0..draws {
            let s = gmm.sample(&mut rng);
            let pos = s.positions();
            for i in 0..5 {
                head_disp += (pos[i] as f64 - i as f64).abs();
            }
            for i in n - 5..n {
                tail_disp += (pos[i] as f64 - i as f64).abs();
            }
        }
        assert!(
            tail_disp < head_disp * 0.8,
            "tail displacement {tail_disp} should be well below head {head_disp}"
        );
    }

    #[test]
    fn singleton_and_empty_centers() {
        let g = GeneralizedMallows::uniform(Permutation::identity(1), 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(g.sample(&mut rng).len(), 1);
        assert_eq!(g.expected_kendall_tau(), 0.0);
        let e = GeneralizedMallows::uniform(Permutation::identity(0), 2.0).unwrap();
        assert_eq!(e.sample(&mut rng).len(), 0);
    }
}
