//! The Mallows permutation model `M(π₀, θ)` under the Kendall tau
//! distance (paper Section III-E).
//!
//! The probability of a permutation `π` is
//! `P[π | π₀, θ] = exp(−θ·d_KT(π, π₀)) / Z_n(θ)`, where the partition
//! function `Z_n(θ) = Π_{j=1..n} (1 − e^{−jθ}) / (1 − e^{−θ})` depends
//! only on `θ` and `n`.
//!
//! Provided here:
//!
//! * [`MallowsModel`] — exact sampling via the repeated insertion model
//!   (RIM), PMF / log-PMF, partition function and closed-form expected
//!   Kendall tau distance;
//! * [`mle`] — dispersion estimation (bisection on the monotone expected
//!   distance) and Borda centre estimation;
//! * [`dispersion`] — tuning `θ` to hit a target expected distance, the
//!   knob the paper's conclusions propose for a systematic noise
//!   methodology;
//! * [`tables`] — precomputed per-`(n, θ)` insertion-CDF tables
//!   ([`SamplerTables`]) and the zero-allocation [`RimSampler`] fast
//!   path the serving engine caches across requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cayley;
pub mod dispersion;
pub mod generalized;
pub mod mixture;
pub mod mle;
mod model;
pub mod plackett_luce;
pub mod privacy;
pub mod tables;
pub mod truncated;

pub use cayley::CayleyMallows;
pub use generalized::GeneralizedMallows;
pub use mixture::MallowsMixture;
pub use model::MallowsModel;
pub use plackett_luce::PlackettLuce;
pub use tables::{RimSampler, SamplerTables};
pub use truncated::TopKMallows;

/// Errors raised by the Mallows model.
#[derive(Debug, Clone, PartialEq)]
pub enum MallowsError {
    /// θ must be non-negative and finite.
    InvalidTheta {
        /// The offending dispersion value.
        theta: f64,
    },
    /// Ranking-length mismatch with the centre.
    LengthMismatch {
        /// Length of the centre ranking.
        center: usize,
        /// Length of the queried ranking.
        other: usize,
    },
    /// Empty sample set where at least one sample is required.
    NoSamples,
}

impl std::fmt::Display for MallowsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MallowsError::InvalidTheta { theta } => write!(f, "invalid dispersion θ = {theta}"),
            MallowsError::LengthMismatch { center, other } => {
                write!(
                    f,
                    "centre has length {center} but ranking has length {other}"
                )
            }
            MallowsError::NoSamples => write!(f, "at least one sample is required"),
        }
    }
}

impl std::error::Error for MallowsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MallowsError>;
