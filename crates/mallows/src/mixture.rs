//! Mixtures of Mallows models, fitted by expectation–maximization.
//!
//! A population of rankings rarely concentrates around a single centre:
//! voters split into camps, recruiters weigh criteria differently. The
//! mixture `P[π] = Σ_c w_c · M(π; π_c, θ_c)` captures such
//! heterogeneity, and fitting it to observed rankings (e.g. the output
//! of repeated fair post-processing) reveals how many "modes" a noisy
//! ranking process has — supporting the paper's proposed future work on
//! systematic noise methodology.
//!
//! [`MallowsMixture::fit`] runs standard EM:
//!
//! * **E-step** — responsibilities `r_{sc} ∝ w_c · P_c[π_s]` computed in
//!   log space;
//! * **M-step** — weights from responsibility mass; per-component
//!   centres by *weighted* Borda; per-component `θ` by inverting the
//!   closed-form expected distance at the responsibility-weighted mean
//!   Kendall tau (the exact stationarity condition of the Mallows
//!   likelihood).
//!
//! EM on rank data converges to local optima; callers control restarts
//! through the seed.

use crate::mle::solve_theta_for_distance;
use crate::{MallowsError, MallowsModel, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use ranking_core::{distance, Permutation};

/// A finite mixture of Kendall-tau Mallows components.
#[derive(Debug, Clone)]
pub struct MallowsMixture {
    components: Vec<MallowsModel>,
    weights: Vec<f64>,
}

impl MallowsMixture {
    /// Build a mixture from components and (unnormalized, positive)
    /// weights. Weights are normalized to sum to 1.
    pub fn new(components: Vec<MallowsModel>, weights: Vec<f64>) -> Result<Self> {
        if components.is_empty() {
            return Err(MallowsError::NoSamples);
        }
        if components.len() != weights.len() {
            return Err(MallowsError::LengthMismatch {
                center: components.len(),
                other: weights.len(),
            });
        }
        let n = components[0].len();
        if components.iter().any(|c| c.len() != n) {
            return Err(MallowsError::LengthMismatch {
                center: n,
                other: 0,
            });
        }
        let total: f64 = weights.iter().sum();
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || weights.iter().any(|&w| w.is_nan() || w < 0.0)
        {
            return Err(MallowsError::InvalidTheta { theta: total });
        }
        let weights = weights.into_iter().map(|w| w / total).collect();
        Ok(MallowsMixture {
            components,
            weights,
        })
    }

    /// The mixture components.
    pub fn components(&self) -> &[MallowsModel] {
        &self.components
    }

    /// Normalized mixing weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Log probability mass of `pi` under the mixture (log-sum-exp over
    /// components).
    pub fn ln_pmf(&self, pi: &Permutation) -> Result<f64> {
        let mut terms = Vec::with_capacity(self.components.len());
        for (c, &w) in self.components.iter().zip(&self.weights) {
            if w > 0.0 {
                terms.push(w.ln() + c.ln_pmf(pi)?);
            }
        }
        Ok(log_sum_exp(&terms))
    }

    /// Probability mass of `pi` under the mixture.
    pub fn pmf(&self, pi: &Permutation) -> Result<f64> {
        Ok(self.ln_pmf(pi)?.exp())
    }

    /// Total log-likelihood of a sample set.
    pub fn ln_likelihood(&self, samples: &[Permutation]) -> Result<f64> {
        samples.iter().map(|s| self.ln_pmf(s)).sum()
    }

    /// Draw one sample: pick a component by weight, then sample it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Permutation {
        let mut u: f64 = rng.random();
        for (c, &w) in self.components.iter().zip(&self.weights) {
            if u < w {
                return c.sample(rng);
            }
            u -= w;
        }
        self.components
            .last()
            .expect("non-empty by construction")
            .sample(rng)
    }

    /// Posterior component responsibilities for each sample:
    /// `out[s][c] = P[component c | π_s]`.
    pub fn responsibilities(&self, samples: &[Permutation]) -> Result<Vec<Vec<f64>>> {
        samples
            .iter()
            .map(|s| {
                let ln_joint: Vec<f64> = self
                    .components
                    .iter()
                    .zip(&self.weights)
                    .map(|(c, &w)| {
                        if w > 0.0 {
                            Ok(w.ln() + c.ln_pmf(s)?)
                        } else {
                            Ok(f64::NEG_INFINITY)
                        }
                    })
                    .collect::<Result<_>>()?;
                let norm = log_sum_exp(&ln_joint);
                Ok(ln_joint.into_iter().map(|l| (l - norm).exp()).collect())
            })
            .collect()
    }

    /// Fit a `k`-component mixture by EM.
    ///
    /// Initialization picks `k` distinct samples as centres (uniformly
    /// without replacement) with `θ = 1` and uniform weights, then
    /// alternates E/M for `max_iters` iterations or until the
    /// log-likelihood improves by less than `tol`.
    pub fn fit<R: Rng + ?Sized>(
        samples: &[Permutation],
        k: usize,
        max_iters: usize,
        tol: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if samples.is_empty() || k == 0 {
            return Err(MallowsError::NoSamples);
        }
        let n = samples[0].len();
        if samples.iter().any(|s| s.len() != n) {
            return Err(MallowsError::LengthMismatch {
                center: n,
                other: 0,
            });
        }
        let mut idx: Vec<usize> = (0..samples.len()).collect();
        idx.shuffle(rng);
        let components: Vec<MallowsModel> = idx
            .iter()
            .take(k)
            .chain(std::iter::repeat_n(
                &idx[0],
                k.saturating_sub(samples.len()),
            ))
            .map(|&i| MallowsModel::new(samples[i].clone(), 1.0))
            .collect::<Result<_>>()?;
        let mut mixture = MallowsMixture::new(components, vec![1.0; k])?;

        let mut last_ll = f64::NEG_INFINITY;
        for _ in 0..max_iters {
            let resp = mixture.responsibilities(samples)?;
            mixture = mixture.m_step(samples, &resp)?;
            let ll = mixture.ln_likelihood(samples)?;
            if (ll - last_ll).abs() < tol {
                break;
            }
            last_ll = ll;
        }
        Ok(mixture)
    }

    /// One M-step: re-estimate weights, centres (weighted Borda) and
    /// dispersions (weighted mean distance inversion).
    fn m_step(&self, samples: &[Permutation], resp: &[Vec<f64>]) -> Result<Self> {
        let n = samples[0].len();
        let k = self.components.len();
        let mut components = Vec::with_capacity(k);
        let mut weights = Vec::with_capacity(k);
        for c in 0..k {
            let mass: f64 = resp.iter().map(|r| r[c]).sum();
            if mass <= f64::EPSILON {
                // Dead component: keep its parameters, assign zero weight.
                components.push(self.components[c].clone());
                weights.push(f64::EPSILON);
                continue;
            }
            let center = weighted_borda(samples, resp, c, n);
            let mean_dist: f64 = samples
                .iter()
                .zip(resp)
                .map(|(s, r)| {
                    r[c] * distance::kendall_tau(s, &center).expect("lengths checked") as f64
                })
                .sum::<f64>()
                / mass;
            let theta = solve_theta_for_distance(n, mean_dist);
            components.push(MallowsModel::new(center, theta)?);
            weights.push(mass);
        }
        MallowsMixture::new(components, weights)
    }
}

/// Responsibility-weighted Borda: rank items by their weighted mean
/// position under component `c`.
fn weighted_borda(samples: &[Permutation], resp: &[Vec<f64>], c: usize, n: usize) -> Permutation {
    let mut score = vec![0.0f64; n];
    for (s, r) in samples.iter().zip(resp) {
        for (pos, &item) in s.as_order().iter().enumerate() {
            score[item] += r[c] * pos as f64;
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    items.sort_by(|&a, &b| {
        score[a]
            .partial_cmp(&score[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    Permutation::from_order_unchecked(items)
}

/// `ln Σ exp(xᵢ)` computed stably; `−∞` for an empty slice.
fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cluster_data(
        n: usize,
        per_cluster: usize,
        seed: u64,
    ) -> (Vec<Permutation>, Permutation, Permutation) {
        let c1 = Permutation::identity(n);
        let c2 = Permutation::from_order((0..n).rev().collect::<Vec<_>>()).unwrap();
        let m1 = MallowsModel::new(c1.clone(), 2.0).unwrap();
        let m2 = MallowsModel::new(c2.clone(), 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = m1.sample_many(per_cluster, &mut rng);
        samples.extend(m2.sample_many(per_cluster, &mut rng));
        (samples, c1, c2)
    }

    #[test]
    fn new_normalizes_weights() {
        let c = MallowsModel::new(Permutation::identity(4), 1.0).unwrap();
        let mix = MallowsMixture::new(vec![c.clone(), c], vec![2.0, 6.0]).unwrap();
        assert!((mix.weights()[0] - 0.25).abs() < 1e-12);
        assert!((mix.weights()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn new_rejects_bad_input() {
        let c = MallowsModel::new(Permutation::identity(4), 1.0).unwrap();
        assert!(MallowsMixture::new(vec![], vec![]).is_err());
        assert!(MallowsMixture::new(vec![c.clone()], vec![1.0, 1.0]).is_err());
        assert!(MallowsMixture::new(vec![c.clone()], vec![-1.0]).is_err());
        let c5 = MallowsModel::new(Permutation::identity(5), 1.0).unwrap();
        assert!(MallowsMixture::new(vec![c, c5], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn mixture_pmf_sums_to_one() {
        let a = MallowsModel::new(Permutation::identity(4), 0.8).unwrap();
        let b = MallowsModel::new(Permutation::from_order(vec![3, 2, 1, 0]).unwrap(), 1.4).unwrap();
        let mix = MallowsMixture::new(vec![a, b], vec![0.3, 0.7]).unwrap();
        let total: f64 = Permutation::enumerate_all(4)
            .iter()
            .map(|p| mix.pmf(p).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "Σpmf = {total}");
    }

    #[test]
    fn responsibilities_sum_to_one_per_sample() {
        let (samples, c1, c2) = two_cluster_data(6, 30, 3);
        let mix = MallowsMixture::new(
            vec![
                MallowsModel::new(c1, 1.0).unwrap(),
                MallowsModel::new(c2, 1.0).unwrap(),
            ],
            vec![0.5, 0.5],
        )
        .unwrap();
        for r in mix.responsibilities(&samples).unwrap() {
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        }
    }

    #[test]
    fn em_recovers_two_separated_clusters() {
        let (samples, c1, c2) = two_cluster_data(8, 120, 99);
        let mut rng = StdRng::seed_from_u64(5);
        let mix = MallowsMixture::fit(&samples, 2, 30, 1e-6, &mut rng).unwrap();
        // the two fitted centres must be the two true centres (order-free)
        let centers: Vec<&Permutation> = mix
            .components()
            .iter()
            .map(super::super::model::MallowsModel::center)
            .collect();
        assert!(
            (centers[0] == &c1 && centers[1] == &c2) || (centers[0] == &c2 && centers[1] == &c1),
            "centres {centers:?} differ from truth"
        );
        // weights near 1/2 each
        for &w in mix.weights() {
            assert!((w - 0.5).abs() < 0.1, "weight {w}");
        }
        // dispersions near 2.0
        for c in mix.components() {
            assert!((c.theta() - 2.0).abs() < 0.5, "theta {}", c.theta());
        }
    }

    #[test]
    fn em_single_component_matches_plain_mle() {
        let center = Permutation::identity(10);
        let model = MallowsModel::new(center.clone(), 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let samples = model.sample_many(800, &mut rng);
        let mix = MallowsMixture::fit(&samples, 1, 20, 1e-9, &mut rng).unwrap();
        let direct_center = crate::mle::estimate_center_borda(&samples).unwrap();
        assert_eq!(mix.components()[0].center(), &direct_center);
        let direct_theta = crate::mle::estimate_theta(&direct_center, &samples).unwrap();
        assert!((mix.components()[0].theta() - direct_theta).abs() < 1e-9);
        assert!((mix.weights()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn em_likelihood_does_not_decrease() {
        let (samples, _, _) = two_cluster_data(7, 60, 17);
        let mut rng = StdRng::seed_from_u64(8);
        // run EM manually to observe the likelihood trajectory
        let mut mix = MallowsMixture::fit(&samples, 2, 1, 0.0, &mut rng).unwrap();
        let mut last = mix.ln_likelihood(&samples).unwrap();
        for _ in 0..10 {
            let resp = mix.responsibilities(&samples).unwrap();
            mix = mix.m_step(&samples, &resp).unwrap();
            let ll = mix.ln_likelihood(&samples).unwrap();
            assert!(ll >= last - 1e-6, "likelihood decreased: {last} → {ll}");
            last = ll;
        }
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(MallowsMixture::fit(&[], 2, 5, 1e-6, &mut rng).is_err());
        let samples = vec![Permutation::identity(4)];
        assert!(MallowsMixture::fit(&samples, 0, 5, 1e-6, &mut rng).is_err());
    }

    #[test]
    fn sampling_respects_weights() {
        let a = MallowsModel::new(Permutation::identity(5), 25.0).unwrap();
        let b =
            MallowsModel::new(Permutation::from_order(vec![4, 3, 2, 1, 0]).unwrap(), 25.0).unwrap();
        let mix = MallowsMixture::new(vec![a, b], vec![0.8, 0.2]).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let from_a = (0..2000)
            .filter(|_| mix.sample(&mut rng).as_order()[0] == 0)
            .count();
        // at θ=25 samples equal their centre almost surely
        let frac = from_a as f64 / 2000.0;
        assert!((frac - 0.8).abs() < 0.05, "component-a fraction {frac}");
    }

    #[test]
    fn log_sum_exp_stability() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + 2f64.ln())).abs() < 1e-9);
    }
}
