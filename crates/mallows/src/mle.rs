//! Parameter estimation for the Mallows model.
//!
//! * [`estimate_theta`] — maximum-likelihood dispersion given a known
//!   centre. The log-likelihood of i.i.d. samples is
//!   `−θ Σ d_KT(πᵢ, π₀) − m·ln Z_n(θ)`, whose stationarity condition is
//!   `E_θ[D] = d̄` (mean observed distance). Since `E_θ[D]` is strictly
//!   decreasing in `θ`, bisection solves it to machine precision.
//! * [`estimate_center_borda`] — Borda (mean-rank) centre estimation,
//!   which is a consistent estimator of `π₀` for Mallows data.

use crate::model::expected_kendall_tau;
use crate::{MallowsError, Result};
use ranking_core::{distance, Permutation};

/// Upper bracket for dispersion search; `E[D]` at θ = 30 is numerically 0
/// for any practical `n`.
const THETA_MAX: f64 = 30.0;

/// Maximum-likelihood estimate of `θ` for samples drawn around a known
/// centre. Returns `THETA_MAX` when every sample equals the centre
/// (the MLE diverges) and 0 when the data are at least as dispersed as
/// the uniform distribution.
pub fn estimate_theta(center: &Permutation, samples: &[Permutation]) -> Result<f64> {
    if samples.is_empty() {
        return Err(MallowsError::NoSamples);
    }
    let n = center.len();
    let mut total = 0.0f64;
    for s in samples {
        if s.len() != n {
            return Err(MallowsError::LengthMismatch {
                center: n,
                other: s.len(),
            });
        }
        total += distance::kendall_tau(s, center).expect("lengths checked") as f64;
    }
    let mean = total / samples.len() as f64;
    Ok(solve_theta_for_distance(n, mean))
}

/// Invert `E_θ[D] = target` by bisection (monotone decreasing).
pub fn solve_theta_for_distance(n: usize, target: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let uniform = n as f64 * (n as f64 - 1.0) / 4.0;
    if target >= uniform {
        return 0.0;
    }
    if target <= expected_kendall_tau(n, THETA_MAX) {
        return THETA_MAX;
    }
    let (mut lo, mut hi) = (0.0f64, THETA_MAX);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected_kendall_tau(n, mid) > target {
            lo = mid; // still too dispersed → increase θ
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Maximum-likelihood `θ` from **top-k lists** around a known centre.
///
/// Under the sequential-selection view of Mallows, each observed list
/// contributes independent truncated-geometric displacements
/// `v_j ∈ {0, …, m_j − 1}` (`m_j` = items remaining before the `j`-th
/// pick; `v_j` = the pick's rank among them in centre order). The MLE
/// solves the stationarity condition
///
/// ```text
/// Σ_j v_j = Σ_j E_θ[V_{m_j}],   E_θ[V_m] = q/(1−q) − m·q^m/(1−q^m)
/// ```
///
/// by bisection (the right-hand side is strictly decreasing in `θ`).
/// Lists may have different lengths `k ≤ n`; items must be distinct and
/// in range. Returns `THETA_MAX` for perfectly centre-consistent data
/// and `0` for data at least as dispersed as uniform.
pub fn estimate_theta_topk(center: &Permutation, lists: &[Vec<usize>]) -> Result<f64> {
    if lists.is_empty() {
        return Err(MallowsError::NoSamples);
    }
    let n = center.len();
    let mut total_v = 0.0f64;
    let mut stages: Vec<usize> = Vec::new(); // remaining-count m per pick
    for list in lists {
        if list.len() > n {
            return Err(MallowsError::LengthMismatch {
                center: n,
                other: list.len(),
            });
        }
        // displacement of each pick among the surviving centre positions
        let mut alive = vec![true; n];
        for (j, &item) in list.iter().enumerate() {
            if item >= n || !alive[center.position_of(item)] {
                return Err(MallowsError::LengthMismatch {
                    center: n,
                    other: list.len(),
                });
            }
            let pos = center.position_of(item);
            let v = alive.iter().take(pos).filter(|&&a| a).count();
            alive[pos] = false;
            total_v += v as f64;
            stages.push(n - j);
        }
    }
    if stages.is_empty() {
        return Err(MallowsError::NoSamples);
    }
    let expected_at = |theta: f64| -> f64 {
        stages
            .iter()
            .map(|&m| expected_truncated_geometric(m, theta))
            .sum()
    };
    if total_v >= expected_at(0.0) {
        return Ok(0.0);
    }
    if total_v <= expected_at(THETA_MAX) {
        return Ok(THETA_MAX);
    }
    let (mut lo, mut hi) = (0.0f64, THETA_MAX);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected_at(mid) > total_v {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// `E[V]` for the truncated geometric on `{0, …, m − 1}` with weight
/// `q^v`, `q = e^{−θ}`; `(m − 1)/2` at `θ = 0`.
fn expected_truncated_geometric(m: usize, theta: f64) -> f64 {
    if m <= 1 {
        return 0.0;
    }
    if theta == 0.0 {
        return (m as f64 - 1.0) / 2.0;
    }
    let q = (-theta).exp();
    let qm = q.powi(m as i32);
    q / (1.0 - q) - m as f64 * qm / (1.0 - qm)
}

/// Borda centre estimation: rank items by their mean position across the
/// samples (ties broken by item index).
pub fn estimate_center_borda(samples: &[Permutation]) -> Result<Permutation> {
    let Some(first) = samples.first() else {
        return Err(MallowsError::NoSamples);
    };
    let n = first.len();
    let mut mean_pos = vec![0.0f64; n];
    for s in samples {
        if s.len() != n {
            return Err(MallowsError::LengthMismatch {
                center: n,
                other: s.len(),
            });
        }
        for (pos, &item) in s.as_order().iter().enumerate() {
            mean_pos[item] += pos as f64;
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    items.sort_by(|&a, &b| {
        mean_pos[a]
            .partial_cmp(&mean_pos[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    Ok(Permutation::from_order_unchecked(items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MallowsModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_theta_within_tolerance() {
        let center = Permutation::identity(12);
        for true_theta in [0.3, 0.8, 1.5] {
            let model = MallowsModel::new(center.clone(), true_theta).unwrap();
            let mut rng = StdRng::seed_from_u64(77);
            let samples = model.sample_many(3000, &mut rng);
            let est = estimate_theta(&center, &samples).unwrap();
            assert!(
                (est - true_theta).abs() < 0.15,
                "true θ {true_theta} estimated {est}"
            );
        }
    }

    #[test]
    fn degenerate_samples_give_theta_max() {
        let center = Permutation::identity(6);
        let samples = vec![center.clone(); 10];
        assert_eq!(estimate_theta(&center, &samples).unwrap(), THETA_MAX);
    }

    #[test]
    fn uniform_samples_give_theta_zero() {
        let center = Permutation::identity(8);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<_> = (0..2000)
            .map(|_| Permutation::random(8, &mut rng))
            .collect();
        let est = estimate_theta(&center, &samples).unwrap();
        assert!(est < 0.1, "uniform data must give θ ≈ 0, got {est}");
    }

    #[test]
    fn no_samples_is_an_error() {
        assert!(matches!(
            estimate_theta(&Permutation::identity(3), &[]),
            Err(MallowsError::NoSamples)
        ));
        assert!(matches!(
            estimate_center_borda(&[]),
            Err(MallowsError::NoSamples)
        ));
    }

    #[test]
    fn topk_theta_recovery_matches_truth() {
        use crate::TopKMallows;
        let center = Permutation::identity(20);
        for true_theta in [0.4, 1.0, 2.0] {
            let sampler = TopKMallows::new(center.clone(), true_theta, 6).unwrap();
            let mut rng = StdRng::seed_from_u64(91);
            let lists = sampler.sample_many(2500, &mut rng);
            let est = estimate_theta_topk(&center, &lists).unwrap();
            assert!(
                (est - true_theta).abs() < 0.15,
                "true θ {true_theta} estimated {est} from top-6 lists"
            );
        }
    }

    #[test]
    fn topk_theta_full_lists_agree_with_full_mle() {
        let center = Permutation::identity(10);
        let model = MallowsModel::new(center.clone(), 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let samples = model.sample_many(1000, &mut rng);
        let full = estimate_theta(&center, &samples).unwrap();
        let lists: Vec<Vec<usize>> = samples.iter().map(|s| s.as_order().to_vec()).collect();
        let topk = estimate_theta_topk(&center, &lists).unwrap();
        // Σv over a full list equals d_KT, and Σ E[V_m] over stages
        // equals E[D_n]: both estimators solve the same equation.
        assert!((full - topk).abs() < 1e-9, "full {full} vs top-k {topk}");
    }

    #[test]
    fn topk_theta_rejects_bad_lists() {
        let center = Permutation::identity(5);
        assert!(estimate_theta_topk(&center, &[]).is_err());
        assert!(estimate_theta_topk(&center, &[vec![0, 0]]).is_err());
        assert!(estimate_theta_topk(&center, &[vec![9]]).is_err());
        assert!(estimate_theta_topk(&center, &[vec![0, 1, 2, 3, 4, 4]]).is_err());
    }

    #[test]
    fn topk_theta_degenerate_cases() {
        let center = Permutation::identity(6);
        // always the centre prefix → maximal concentration
        let lists = vec![vec![0, 1, 2]; 50];
        assert_eq!(estimate_theta_topk(&center, &lists).unwrap(), THETA_MAX);
        // always the worst prefix → θ = 0
        let worst = vec![vec![5, 4, 3]; 50];
        assert_eq!(estimate_theta_topk(&center, &worst).unwrap(), 0.0);
    }

    #[test]
    fn borda_recovers_center_at_high_theta() {
        let center = Permutation::from_order(vec![4, 2, 0, 3, 1]).unwrap();
        let model = MallowsModel::new(center.clone(), 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let samples = model.sample_many(2000, &mut rng);
        let est = estimate_center_borda(&samples).unwrap();
        assert_eq!(est, center);
    }

    #[test]
    fn borda_length_mismatch_errors() {
        let samples = vec![Permutation::identity(3), Permutation::identity(4)];
        assert!(estimate_center_borda(&samples).is_err());
    }

    #[test]
    fn solve_theta_round_trips_expected_distance() {
        for n in [5usize, 20, 60] {
            for theta in [0.25, 1.0, 2.5] {
                let d = expected_kendall_tau(n, theta);
                let back = solve_theta_for_distance(n, d);
                assert!((back - theta).abs() < 1e-6, "n={n} θ={theta} → {back}");
            }
        }
    }
}
