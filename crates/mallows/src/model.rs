//! Exact Mallows model: sampling, partition function, PMF.

use crate::tables::{RimSampler, SamplerTables};
use crate::{MallowsError, Result};
use rand::Rng;
use ranking_core::{distance, Permutation};
use std::sync::Arc;

/// A Mallows distribution `M(π₀, θ)` under Kendall tau distance.
///
/// `θ = 0` is the uniform distribution over `S_n`; as `θ → ∞` the mass
/// concentrates on the centre `π₀`.
///
/// ```
/// use mallows_model::MallowsModel;
/// use ranking_core::Permutation;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let center = Permutation::identity(8);
/// let model = MallowsModel::new(center, 1.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let sample = model.sample(&mut rng);
/// assert_eq!(sample.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct MallowsModel {
    center: Permutation,
    theta: f64,
}

impl MallowsModel {
    /// Create a model with centre `π₀` and dispersion `θ ≥ 0`.
    pub fn new(center: Permutation, theta: f64) -> Result<Self> {
        if !theta.is_finite() || theta < 0.0 {
            return Err(MallowsError::InvalidTheta { theta });
        }
        Ok(MallowsModel { center, theta })
    }

    /// The centre (location) permutation `π₀`.
    pub fn center(&self) -> &Permutation {
        &self.center
    }

    /// The dispersion (spread) parameter `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of ranked items `n`.
    pub fn len(&self) -> usize {
        self.center.len()
    }

    /// True for the degenerate empty model.
    pub fn is_empty(&self) -> bool {
        self.center.is_empty()
    }

    /// Draw one exact sample via the repeated insertion model (RIM).
    ///
    /// The centre's item at rank `j` (1-based) is inserted into the
    /// growing prefix so that it creates `V_j` new inversions, where
    /// `V_j` follows the truncated geometric law
    /// `P(V_j = v) ∝ e^{−θ v}` on `{0, …, j−1}`. The total inversion
    /// count equals `d_KT(sample, centre)`, which yields the exact
    /// Mallows distribution. Stage draws go through the table-driven
    /// inverse CDF of [`SamplerTables`]; hold a [`RimSampler`] (see
    /// [`MallowsModel::sampler`]) to amortize the table build and the
    /// buffers across many draws.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Permutation {
        let mut out = Permutation::identity(0);
        self.sample_into(&mut out, rng);
        out
    }

    /// Draw one sample into `out`, reusing its buffer.
    ///
    /// The stage table is rebuilt per call (`O(n)`); for repeated
    /// draws use [`MallowsModel::sampler`], which also reuses the code
    /// and decode scratch and is allocation-free after warm-up.
    ///
    /// ```
    /// use mallows_model::MallowsModel;
    /// use ranking_core::Permutation;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let model = MallowsModel::new(Permutation::identity(6), 1.0).unwrap();
    /// let mut rng = StdRng::seed_from_u64(5);
    /// let mut out = Permutation::identity(0);
    /// model.sample_into(&mut out, &mut rng);
    /// assert_eq!(out.len(), 6);
    /// ```
    pub fn sample_into<R: Rng + ?Sized>(&self, out: &mut Permutation, rng: &mut R) {
        let tables = self.tables();
        let n = self.center.len();
        let mut code = Vec::with_capacity(n);
        tables.sample_code_into(n, &mut code, rng);
        let mut scratch = ranking_core::lehmer::DecodeScratch::new();
        ranking_core::lehmer::decode_insertion_code_into(&self.center, &code, &mut scratch, out)
            .expect("sampled code is stage-valid by construction");
    }

    /// Draw `m` independent samples through one shared table and
    /// decode scratch (the fast path benchmarked by
    /// `bench/benches/sampler_tables.rs`).
    pub fn sample_many<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<Permutation> {
        let mut sampler = self.sampler();
        let mut out = Vec::with_capacity(m);
        for _ in 0..m {
            out.push(sampler.sample(rng));
        }
        out
    }

    /// The per-`(n, θ)` stage table for this model, freshly built.
    /// Serving layers cache the returned value keyed on `(n, θ)`.
    pub fn tables(&self) -> SamplerTables {
        SamplerTables::new(self.center.len(), self.theta).expect("theta validated at construction")
    }

    /// A zero-allocation sampler owning a fresh table plus reusable
    /// code/decode buffers.
    pub fn sampler(&self) -> RimSampler {
        RimSampler::from_tables(self.center.clone(), Arc::new(self.tables()))
            .expect("table sized to the centre")
    }

    /// Natural log of the partition function
    /// `Z_n(θ) = Π_{j=1..n} (1 − e^{−jθ}) / (1 − e^{−θ})`;
    /// `Z_n(0) = n!`.
    pub fn ln_partition(&self) -> f64 {
        ln_partition(self.center.len(), self.theta)
    }

    /// Probability mass of `pi` under the model.
    pub fn pmf(&self, pi: &Permutation) -> Result<f64> {
        Ok(self.ln_pmf(pi)?.exp())
    }

    /// Log probability mass of `pi` under the model.
    pub fn ln_pmf(&self, pi: &Permutation) -> Result<f64> {
        if pi.len() != self.center.len() {
            return Err(MallowsError::LengthMismatch {
                center: self.center.len(),
                other: pi.len(),
            });
        }
        let d = distance::kendall_tau(pi, &self.center).expect("lengths checked") as f64;
        Ok(-self.theta * d - self.ln_partition())
    }

    /// Closed-form expected Kendall tau distance from the centre:
    /// `E[D_n] = Σ_{j=1..n} ( q/(1−q) − j·q^j/(1−q^j) )` with
    /// `q = e^{−θ}`; for `θ = 0` this is `n(n−1)/4`.
    pub fn expected_kendall_tau(&self) -> f64 {
        expected_kendall_tau(self.center.len(), self.theta)
    }
}

/// `ln Z_n(θ)`; free function so estimators can evaluate it without a
/// model instance.
pub(crate) fn ln_partition(n: usize, theta: f64) -> f64 {
    if theta == 0.0 {
        return (1..=n).map(|j| (j as f64).ln()).sum();
    }
    let q = (-theta).exp();
    let ln_denominator = (1.0 - q).ln();
    (1..=n)
        .map(|j| ((1.0 - q.powi(j as i32)).ln()) - ln_denominator)
        .sum()
}

/// Closed-form `E[d_KT]` for `n` items at dispersion `theta`.
pub(crate) fn expected_kendall_tau(n: usize, theta: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if theta == 0.0 {
        return n as f64 * (n as f64 - 1.0) / 4.0;
    }
    let q = (-theta).exp();
    let head = q / (1.0 - q);
    (1..=n)
        .map(|j| {
            let qj = q.powi(j as i32);
            head - j as f64 * qj / (1.0 - qj)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn rejects_negative_theta() {
        assert!(MallowsModel::new(Permutation::identity(3), -1.0).is_err());
        assert!(MallowsModel::new(Permutation::identity(3), f64::NAN).is_err());
    }

    #[test]
    fn samples_are_valid_permutations() {
        let m = MallowsModel::new(Permutation::identity(20), 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = m.sample(&mut rng);
            let mut v = s.as_order().to_vec();
            v.sort_unstable();
            assert_eq!(v, (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn high_theta_concentrates_on_center() {
        let center = Permutation::from_order(vec![3, 1, 4, 0, 2]).unwrap();
        let m = MallowsModel::new(center.clone(), 20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let same = (0..200).filter(|_| m.sample(&mut rng) == center).count();
        assert!(
            same > 190,
            "only {same}/200 samples equal the centre at θ=20"
        );
    }

    #[test]
    fn theta_zero_is_uniform() {
        // χ²-style sanity check on n = 3 (6 cells, 6000 draws)
        let m = MallowsModel::new(Permutation::identity(3), 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        let draws = 6000;
        for _ in 0..draws {
            *counts.entry(m.sample(&mut rng).into_order()).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        for (_, c) in counts {
            let expected = draws as f64 / 6.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "count {c}"
            );
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let center = Permutation::identity(4);
        let m = MallowsModel::new(center, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let draws = 40_000;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..draws {
            *counts.entry(m.sample(&mut rng).into_order()).or_default() += 1;
        }
        for pi in Permutation::enumerate_all(4) {
            let p = m.pmf(&pi).unwrap();
            let observed = *counts.get(pi.as_order()).unwrap_or(&0) as f64 / draws as f64;
            // 5σ binomial tolerance
            let sigma = (p * (1.0 - p) / draws as f64).sqrt();
            assert!(
                (observed - p).abs() < 5.0 * sigma + 1e-4,
                "π={pi}: pmf {p:.5} vs observed {observed:.5}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for theta in [0.0, 0.3, 1.0, 3.0] {
            let m = MallowsModel::new(Permutation::identity(5), theta).unwrap();
            let total: f64 = Permutation::enumerate_all(5)
                .iter()
                .map(|p| m.pmf(p).unwrap())
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "θ={theta}: Σpmf = {total}");
        }
    }

    #[test]
    fn partition_at_zero_is_factorial() {
        let m = MallowsModel::new(Permutation::identity(6), 0.0).unwrap();
        assert!((m.ln_partition() - (720f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn expected_kt_matches_monte_carlo() {
        let n = 10;
        for theta in [0.2, 0.5, 1.0, 2.0] {
            let m = MallowsModel::new(Permutation::identity(n), theta).unwrap();
            let mut rng = StdRng::seed_from_u64(31);
            let draws = 4000;
            let mean: f64 = (0..draws)
                .map(|_| distance::kendall_tau(&m.sample(&mut rng), m.center()).unwrap() as f64)
                .sum::<f64>()
                / draws as f64;
            let expect = m.expected_kendall_tau();
            assert!(
                (mean - expect).abs() < 0.08 * expect.max(1.0),
                "θ={theta}: MC {mean:.3} vs closed form {expect:.3}"
            );
        }
    }

    #[test]
    fn expected_kt_zero_theta_is_quarter() {
        let m = MallowsModel::new(Permutation::identity(9), 0.0).unwrap();
        assert!((m.expected_kendall_tau() - 9.0 * 8.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn expected_kt_decreases_in_theta() {
        let mut last = f64::INFINITY;
        for theta in [0.1, 0.2, 0.5, 1.0, 2.0, 4.0] {
            let v = expected_kendall_tau(12, theta);
            assert!(v < last, "E[D] must decrease in θ");
            last = v;
        }
    }

    #[test]
    fn ln_pmf_length_mismatch_errors() {
        let m = MallowsModel::new(Permutation::identity(4), 1.0).unwrap();
        assert!(m.ln_pmf(&Permutation::identity(5)).is_err());
    }

    #[test]
    fn single_item_model() {
        let m = MallowsModel::new(Permutation::identity(1), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(m.sample(&mut rng).len(), 1);
        assert!((m.pmf(&Permutation::identity(1)).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m.expected_kendall_tau(), 0.0);
    }
}
