//! Plackett–Luce noise: an alternative "noise distribution" for
//! randomized post-processing (the paper's conclusion explicitly calls
//! for exploring such alternatives).
//!
//! A Plackett–Luce model draws a ranking by sampling items without
//! replacement with probability proportional to positive strengths
//! `w_i`. Centred on a ranking `π₀` with temperature `γ`, we set
//! `w_i = exp(−γ · π₀(i))`: at `γ = 0` the draw is uniform, as
//! `γ → ∞` it concentrates on `π₀`. Unlike Mallows, PL perturbs the
//! *top* of the ranking less than the tail for the same parameter,
//! giving a differently-shaped fairness/utility trade-off.

use crate::{MallowsError, Result};
use rand::Rng;
use ranking_core::Permutation;

/// A Plackett–Luce distribution over rankings of `n` items.
#[derive(Debug, Clone)]
pub struct PlackettLuce {
    /// Positive strength per item.
    weights: Vec<f64>,
}

impl PlackettLuce {
    /// From explicit positive strengths.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if let Some(&bad) = weights.iter().find(|w| !w.is_finite() || **w <= 0.0) {
            return Err(MallowsError::InvalidTheta { theta: bad });
        }
        Ok(PlackettLuce { weights })
    }

    /// Centred on `center` with temperature `gamma ≥ 0`:
    /// `w_i = exp(−γ · position_of(i))`.
    pub fn from_center(center: &Permutation, gamma: f64) -> Result<Self> {
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(MallowsError::InvalidTheta { theta: gamma });
        }
        let pos = center.positions();
        PlackettLuce::new(pos.iter().map(|&p| (-gamma * p as f64).exp()).collect())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when no items.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Item strengths.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Draw one ranking: repeatedly pick among remaining items with
    /// probability ∝ strength. `O(n²)` — fine at experiment scale.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Permutation {
        let n = self.weights.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let total: f64 = remaining.iter().map(|&i| self.weights[i]).sum();
            let mut u = rng.random::<f64>() * total;
            let mut chosen = remaining.len() - 1;
            for (slot, &i) in remaining.iter().enumerate() {
                u -= self.weights[i];
                if u <= 0.0 {
                    chosen = slot;
                    break;
                }
            }
            order.push(remaining.swap_remove(chosen));
        }
        Permutation::from_order_unchecked(order)
    }

    /// Exact probability of a ranking: `Π_k w_{π(k)} / Σ_{j ≥ k} w_{π(j)}`.
    pub fn pmf(&self, pi: &Permutation) -> Result<f64> {
        if pi.len() != self.weights.len() {
            return Err(MallowsError::LengthMismatch {
                center: self.weights.len(),
                other: pi.len(),
            });
        }
        let mut remaining: f64 = self.weights.iter().sum();
        let mut p = 1.0;
        for &item in pi.as_order() {
            p *= self.weights[item] / remaining;
            remaining -= self.weights[item];
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_nonpositive_weights() {
        assert!(PlackettLuce::new(vec![1.0, 0.0]).is_err());
        assert!(PlackettLuce::new(vec![1.0, -2.0]).is_err());
        assert!(PlackettLuce::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn samples_are_valid_permutations() {
        let pl = PlackettLuce::from_center(&Permutation::identity(15), 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = pl.sample(&mut rng);
            let mut v = s.as_order().to_vec();
            v.sort_unstable();
            assert_eq!(v, (0..15).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let pl = PlackettLuce::new(vec![3.0, 1.0, 2.0, 0.5]).unwrap();
        let total: f64 = Permutation::enumerate_all(4)
            .iter()
            .map(|p| pl.pmf(p).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_first_place_matches_weights() {
        let pl = PlackettLuce::new(vec![6.0, 3.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let draws = 30_000;
        let mut firsts = [0usize; 3];
        for _ in 0..draws {
            firsts[pl.sample(&mut rng).item_at(0)] += 1;
        }
        let f0 = firsts[0] as f64 / draws as f64;
        assert!((f0 - 0.6).abs() < 0.02, "P(first = 0) = {f0}");
    }

    #[test]
    fn high_gamma_concentrates_on_center() {
        let center = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        let pl = PlackettLuce::from_center(&center, 12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let same = (0..200).filter(|_| pl.sample(&mut rng) == center).count();
        assert!(same > 180, "{same}/200");
    }

    #[test]
    fn gamma_zero_is_uniform() {
        let pl = PlackettLuce::from_center(&Permutation::identity(3), 0.0).unwrap();
        for pi in Permutation::enumerate_all(3) {
            assert!((pl.pmf(&pi).unwrap() - 1.0 / 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_length_mismatch_errors() {
        let pl = PlackettLuce::new(vec![1.0, 1.0]).unwrap();
        assert!(pl.pmf(&Permutation::identity(3)).is_err());
    }
}
