//! The differential-privacy view of Mallows randomization.
//!
//! The paper motivates its method as "inspired by approaches of
//! differential privacy, where noise is admixed to data". The
//! connection is exact: sampling from `M(π₀(D), θ)` is the exponential
//! mechanism with utility `u(D, π) = −d_KT(π, π₀(D))`, which satisfies
//! `ε`-differential privacy with `ε = 2·θ·Δ`, where `Δ` is the
//! sensitivity of the Kendall tau distance to the change of one
//! individual's data.
//!
//! For rankings, changing one individual's score moves one item, which
//! alters `d_KT` by at most `n − 1` (the item can cross every other
//! item), so `Δ ≤ n − 1`. These helpers convert between θ and the ε
//! ledger so deployments can reason about the noise level in privacy
//! units — and, dually, pick θ from an ε budget.

/// Sensitivity of `d_KT` under a single-item move in a ranking of `n`
/// items: `n − 1` (tight: moving an item from top to bottom crosses all
/// others).
pub fn kendall_tau_sensitivity(n: usize) -> u64 {
    (n as u64).saturating_sub(1)
}

/// ε guaranteed by the exponential mechanism at dispersion `theta` and
/// sensitivity `delta`: `ε = 2·θ·Δ`.
pub fn epsilon_for_theta(theta: f64, delta: u64) -> f64 {
    2.0 * theta * delta as f64
}

/// The dispersion θ allowed by an ε budget at sensitivity `delta`
/// (θ = ε / (2Δ)); returns +∞ for Δ = 0 (no privacy cost).
pub fn theta_for_epsilon(epsilon: f64, delta: u64) -> f64 {
    if delta == 0 {
        return f64::INFINITY;
    }
    epsilon / (2.0 * delta as f64)
}

/// Convenience: θ for an ε budget over rankings of `n` items with the
/// worst-case single-item sensitivity.
pub fn theta_for_epsilon_ranking(epsilon: f64, n: usize) -> f64 {
    theta_for_epsilon(epsilon, kendall_tau_sensitivity(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MallowsModel;
    use ranking_core::{distance, Permutation};

    #[test]
    fn epsilon_theta_round_trip() {
        let theta = theta_for_epsilon(2.0, 9);
        assert!((epsilon_for_theta(theta, 9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_sensitivity_is_free() {
        assert!(theta_for_epsilon(1.0, 0).is_infinite());
    }

    #[test]
    fn sensitivity_is_n_minus_one() {
        assert_eq!(kendall_tau_sensitivity(10), 9);
        assert_eq!(kendall_tau_sensitivity(1), 0);
        assert_eq!(kendall_tau_sensitivity(0), 0);
    }

    #[test]
    fn mechanism_satisfies_the_epsilon_bound_empirically() {
        // For two centres differing by one adjacent swap (distance
        // change ≤ 1 per permutation), the likelihood ratio
        // P_a(π)/P_b(π) must be ≤ exp(2θ) pointwise (sensitivity-1
        // neighbouring databases).
        let n = 5;
        let theta = 0.9;
        let a = Permutation::identity(n);
        let mut b = Permutation::identity(n);
        b.swap_positions(2, 3);
        let ma = MallowsModel::new(a, theta).unwrap();
        let mb = MallowsModel::new(b, theta).unwrap();
        let bound = (2.0 * theta).exp();
        for pi in Permutation::enumerate_all(n) {
            let ratio = ma.pmf(&pi).unwrap() / mb.pmf(&pi).unwrap();
            assert!(
                ratio <= bound + 1e-9,
                "ratio {ratio} exceeds e^2θ = {bound}"
            );
        }
    }

    #[test]
    fn worst_case_single_move_shifts_distance_by_n_minus_one() {
        // move the top item to the bottom: d_KT changes by exactly n−1
        let n = 7;
        let id = Permutation::identity(n);
        let mut order: Vec<usize> = (1..n).collect();
        order.push(0);
        let moved = Permutation::from_order(order).unwrap();
        assert_eq!(
            distance::kendall_tau(&moved, &id).unwrap(),
            kendall_tau_sensitivity(n)
        );
    }
}
