//! Precomputed sampler tables and the zero-allocation RIM fast path.
//!
//! Every stage `j` of the repeated insertion model draws an inversion
//! count `V_j ∈ {0, …, j−1}` from the truncated geometric law
//! `P(V = v) ∝ q^v` with `q = e^{−θ}`. The closed-form inversion used
//! by [`sample_truncated_geometric`] pays two `ln` calls and a `powi`
//! per stage; at serving scale (the engine re-runs Algorithm 1 for
//! every request) that arithmetic — plus the per-sample allocations of
//! the naive path — dominates the hot loop.
//!
//! [`SamplerTables`] removes both costs for a fixed `(n, θ)` pair:
//!
//! * one shared prefix table `S[v] = Σ_{u ≤ v} q^u` (`n` entries, L1
//!   resident for `n` in the thousands) serves **all** stages, because
//!   stage `j`'s CDF is `S[v] / S[j−1]`;
//! * [`SamplerTables::sample_stage`] inverts the CDF with a galloping
//!   search from `v = 0` — for concentrated dispersions (`E[V] =
//!   q/(1−q)`, below 1 for `θ ≥ 0.7`) that is two or three comparisons
//!   instead of transcendental math;
//! * [`RimSampler`] owns the table plus code/decode scratch and writes
//!   samples into caller-provided [`Permutation`] buffers, so a
//!   best-of-`m` loop performs no allocation after warm-up.
//!
//! Tables are cheap to build (`O(n)` multiplications) and immutable, so
//! the serving engine caches them per `(n, θ)` across requests.
//!
//! ```
//! use mallows_model::tables::{RimSampler, SamplerTables};
//! use ranking_core::Permutation;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! let tables = Arc::new(SamplerTables::new(50, 1.0).unwrap());
//! let mut sampler = RimSampler::from_tables(Permutation::identity(50), tables).unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut out = Permutation::identity(0);
//! for _ in 0..10 {
//!     sampler.sample_into(&mut out, &mut rng); // reuses `out`'s buffer
//!     assert_eq!(out.len(), 50);
//! }
//! ```

use crate::{MallowsError, Result};
use rand::Rng;
use ranking_core::lehmer::{self, DecodeScratch};
use ranking_core::Permutation;
use std::sync::Arc;

/// Precomputed per-`(n, θ)` insertion-CDF table for RIM sampling.
///
/// Immutable and `Send + Sync`; share it behind an [`Arc`] across
/// samplers, worker threads and the engine's table cache.
#[derive(Debug, Clone)]
pub struct SamplerTables {
    n: usize,
    theta: f64,
    /// `prefix[v] = Σ_{u=0..=v} q^u`; saturates harmlessly once `q^u`
    /// underflows (the tail mass is below one ulp of the total).
    prefix: Vec<f64>,
}

impl SamplerTables {
    /// Build the table for rankings of `n` items at dispersion
    /// `θ ≥ 0`. Costs `O(n)` time and `n` floats of memory.
    ///
    /// ```
    /// use mallows_model::tables::SamplerTables;
    /// let t = SamplerTables::new(100, 0.5).unwrap();
    /// assert_eq!((t.n(), t.theta()), (100, 0.5));
    /// assert!(SamplerTables::new(100, -1.0).is_err());
    /// ```
    pub fn new(n: usize, theta: f64) -> Result<Self> {
        if !theta.is_finite() || theta < 0.0 {
            return Err(MallowsError::InvalidTheta { theta });
        }
        let q = (-theta).exp();
        let mut prefix = Vec::with_capacity(n);
        let mut power = 1.0f64;
        let mut sum = 0.0f64;
        for _ in 0..n {
            sum += power;
            prefix.push(sum);
            power *= q;
        }
        Ok(SamplerTables { n, theta, prefix })
    }

    /// Maximum ranking length the table supports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The dispersion `θ` the table was built for.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Approximate heap footprint in bytes (engine cache accounting).
    pub fn bytes(&self) -> usize {
        self.prefix.len() * std::mem::size_of::<f64>()
    }

    /// Draw `V ∈ {0, …, j−1}` with `P(V = v) ∝ q^v` by inverse-CDF
    /// lookup in the prefix table. Requires `j ≤ n`; consumes exactly
    /// one `f64` from `rng` for `j ≥ 2` and none for `j ≤ 1`.
    ///
    /// The search gallops from `v = 0` (doubling steps, then a binary
    /// search in the final gap), so concentrated stages resolve in a
    /// couple of L1 reads while the uniform `θ = 0` worst case stays
    /// `O(log j)`.
    #[inline]
    pub fn sample_stage<R: Rng + ?Sized>(&self, j: usize, rng: &mut R) -> usize {
        if j <= 1 {
            return 0;
        }
        debug_assert!(j <= self.n, "stage {j} exceeds table size {}", self.n);
        let s = &self.prefix[..j];
        let u: f64 = rng.random();
        // smallest v with CDF(v) = s[v]/s[j−1] ≥ u; u < 1 guarantees
        // v = j−1 qualifies, so the search cannot fall off the end
        let target = u * s[j - 1];
        if s[0] >= target {
            return 0;
        }
        let mut lo = 0usize; // invariant: s[lo] < target
        let mut step = 1usize;
        while lo + step < j && s[lo + step] < target {
            lo += step;
            step <<= 1;
        }
        let mut hi = (lo + step).min(j - 1); // s[hi] ≥ target
        while hi > lo + 1 {
            let mid = lo + (hi - lo) / 2;
            if s[mid] < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Fill `code` with a fresh stage-valid insertion code (`code[j−1]`
    /// is stage `j`'s inversion count) for a ranking of `len ≤ n`
    /// items, reusing the buffer.
    pub fn sample_code_into<R: Rng + ?Sized>(
        &self,
        len: usize,
        code: &mut Vec<usize>,
        rng: &mut R,
    ) {
        debug_assert!(len <= self.n);
        code.clear();
        code.reserve(len);
        for j in 1..=len {
            code.push(self.sample_stage(j, rng));
        }
    }
}

/// Sample `V ∈ {0, …, j−1}` with `P(V = v) ∝ q^v` (`q = e^{−θ}`) by
/// closed-form CDF inversion — the table-free reference sampler.
///
/// Uniform for `q ≥ 1` (`θ = 0`); falls back to an exact linear scan
/// when floating-point inversion lands out of range. [`SamplerTables`]
/// draws from the same distribution without the per-draw `ln`/`powi`
/// cost; this form remains for one-off draws, the per-stage-θ
/// generalized model, and as the independent reference the golden
/// distribution tests compare the table path against.
///
/// ```
/// use mallows_model::tables::sample_truncated_geometric;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(3);
/// let v = sample_truncated_geometric(0.5f64.exp().recip(), 6, &mut rng);
/// assert!(v < 6);
/// ```
pub fn sample_truncated_geometric<R: Rng + ?Sized>(q: f64, j: usize, rng: &mut R) -> usize {
    if j <= 1 {
        return 0;
    }
    if q >= 1.0 {
        return rng.random_range(0..j);
    }
    let u: f64 = rng.random::<f64>();
    // CDF(v) = (1 − q^{v+1}) / (1 − q^j); solve CDF(v) ≥ u.
    let mass = 1.0 - q.powi(j as i32);
    let x = 1.0 - u * mass;
    let v = (x.ln() / q.ln()).ceil() as isize - 1;
    if (0..j as isize).contains(&v) {
        return v as usize;
    }
    // Numerical edge: fall back to exact linear scan.
    let mut acc = 0.0;
    let norm: f64 = (0..j).map(|v| q.powi(v as i32)).sum();
    for v in 0..j {
        acc += q.powi(v as i32) / norm;
        if u <= acc {
            return v;
        }
    }
    j - 1
}

/// One full draw of the pre-table reference sampler: closed-form stage
/// inversion ([`sample_truncated_geometric`]) plus an allocating
/// decode — exactly the original `MallowsModel::sample` implementation.
///
/// This is **not** a fast path. It exists as the independent baseline
/// that the golden distribution tests
/// (`crates/mallows/tests/golden_distribution.rs`) and the
/// before/after benches (`bench/benches/sampler_tables.rs`) compare
/// the table-driven sampler against; keeping it here prevents the two
/// from reconstructing — and silently diverging on — their own copies.
///
/// ```
/// use mallows_model::tables::sample_reference;
/// use ranking_core::Permutation;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(6);
/// let s = sample_reference(&Permutation::identity(9), 1.0, &mut rng);
/// assert_eq!(s.len(), 9);
/// ```
pub fn sample_reference<R: Rng + ?Sized>(
    center: &Permutation,
    theta: f64,
    rng: &mut R,
) -> Permutation {
    let n = center.len();
    let q = (-theta).exp();
    let code: Vec<usize> = (1..=n)
        .map(|j| sample_truncated_geometric(q, j, rng))
        .collect();
    lehmer::decode_insertion_code(center, &code).expect("sampled code is stage-valid")
}

/// Zero-allocation Mallows sampler: shared [`SamplerTables`] plus owned
/// code and decode scratch.
///
/// After the first sample has grown the buffers, every further
/// [`RimSampler::sample_into`] performs no heap allocation. The
/// two-phase API ([`RimSampler::sample_code`] then
/// [`RimSampler::decode_code_into`]) lets selection loops that only
/// need the Kendall tau distance (`d_KT = Σ code`) skip decoding
/// non-winning samples entirely.
#[derive(Debug, Clone)]
pub struct RimSampler {
    center: Permutation,
    tables: Arc<SamplerTables>,
    code: Vec<usize>,
    scratch: DecodeScratch,
}

impl RimSampler {
    /// Build a sampler around `center` at dispersion `θ`, constructing
    /// a fresh table.
    pub fn new(center: Permutation, theta: f64) -> Result<Self> {
        let tables = Arc::new(SamplerTables::new(center.len(), theta)?);
        RimSampler::from_tables(center, tables)
    }

    /// Build a sampler from a shared (possibly cached) table. Errors
    /// when the table is too small for the centre.
    pub fn from_tables(center: Permutation, tables: Arc<SamplerTables>) -> Result<Self> {
        if tables.n() < center.len() {
            return Err(MallowsError::LengthMismatch {
                center: center.len(),
                other: tables.n(),
            });
        }
        Ok(RimSampler {
            center,
            tables,
            code: Vec::new(),
            scratch: DecodeScratch::new(),
        })
    }

    /// The centre permutation samples are drawn around.
    pub fn center(&self) -> &Permutation {
        &self.center
    }

    /// The shared stage table.
    pub fn tables(&self) -> &Arc<SamplerTables> {
        &self.tables
    }

    /// Draw a fresh insertion code into the internal buffer and return
    /// it. The code alone determines the sample; decode lazily via
    /// [`RimSampler::decode_code_into`].
    pub fn sample_code<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &[usize] {
        self.tables
            .sample_code_into(self.center.len(), &mut self.code, rng);
        &self.code
    }

    /// `Σ code` of the last drawn code — exactly the Kendall tau
    /// distance between the (not yet decoded) sample and the centre.
    pub fn code_total(&self) -> u64 {
        self.code.iter().map(|&v| v as u64).sum()
    }

    /// Decode the last drawn code into `out`, reusing its buffer.
    pub fn decode_code_into(&mut self, out: &mut Permutation) {
        lehmer::decode_insertion_code_into(&self.center, &self.code, &mut self.scratch, out)
            .expect("sampled code is stage-valid by construction");
    }

    /// Decode a caller-held insertion code (as drawn by
    /// [`SamplerTables::sample_code_into`]) into `out`, reusing the
    /// sampler's decode scratch. Blocked selection loops draw a batch
    /// of codes into their own row buffers first, then decode the rows
    /// they still need — identically to interleaved
    /// [`RimSampler::sample_code`]/[`RimSampler::decode_code_into`]
    /// calls, since decoding consumes no randomness.
    ///
    /// # Panics
    /// When `code` is not stage-valid for this sampler's centre.
    pub fn decode_external_code_into(&mut self, code: &[usize], out: &mut Permutation) {
        lehmer::decode_insertion_code_into(&self.center, code, &mut self.scratch, out)
            .expect("caller-provided code must be stage-valid");
    }

    /// Draw one exact Mallows sample into `out`, reusing its buffer —
    /// the allocation-free equivalent of
    /// [`MallowsModel::sample`](crate::MallowsModel::sample).
    pub fn sample_into<R: Rng + ?Sized>(&mut self, out: &mut Permutation, rng: &mut R) {
        self.sample_code(rng);
        self.decode_code_into(out);
    }

    /// Convenience allocating form of [`RimSampler::sample_into`].
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Permutation {
        let mut out = Permutation::identity(0);
        self.sample_into(&mut out, rng);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_theta() {
        assert!(SamplerTables::new(5, -0.1).is_err());
        assert!(SamplerTables::new(5, f64::NAN).is_err());
    }

    #[test]
    fn prefix_matches_geometric_series() {
        let t = SamplerTables::new(6, 1.0).unwrap();
        let q = (-1.0f64).exp();
        let mut expect = 0.0;
        for v in 0..6 {
            expect += q.powi(v as i32);
            assert!((t.prefix[v] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn stage_one_never_draws() {
        let t = SamplerTables::new(4, 0.7).unwrap();
        // a panicking RNG proves no randomness is consumed for j ≤ 1
        struct NoDraw;
        impl rand::RngCore for NoDraw {
            fn next_u64(&mut self) -> u64 {
                panic!("stage 1 must not draw");
            }
        }
        assert_eq!(t.sample_stage(1, &mut NoDraw), 0);
        assert_eq!(t.sample_stage(0, &mut NoDraw), 0);
    }

    #[test]
    fn table_inversion_matches_closed_form_distribution() {
        // per-stage χ²-style check against exact probabilities
        let theta = 0.8f64;
        let q = (-theta).exp();
        let t = SamplerTables::new(8, theta).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let draws = 40_000;
        for j in [2usize, 5, 8] {
            let mut counts = vec![0usize; j];
            for _ in 0..draws {
                counts[t.sample_stage(j, &mut rng)] += 1;
            }
            let norm: f64 = (0..j).map(|v| q.powi(v as i32)).sum();
            for v in 0..j {
                let p = q.powi(v as i32) / norm;
                let observed = counts[v] as f64 / draws as f64;
                let sigma = (p * (1.0 - p) / draws as f64).sqrt();
                assert!(
                    (observed - p).abs() < 5.0 * sigma + 1e-4,
                    "j={j} v={v}: exact {p:.5} vs observed {observed:.5}"
                );
            }
        }
    }

    #[test]
    fn theta_zero_stage_is_uniform() {
        let t = SamplerTables::new(5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 25_000;
        let mut counts = vec![0usize; 5];
        for _ in 0..draws {
            counts[t.sample_stage(5, &mut rng)] += 1;
        }
        for &c in &counts {
            let expected = draws as f64 / 5.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "count {c}"
            );
        }
    }

    #[test]
    fn extreme_theta_underflow_is_safe() {
        // q^v underflows almost immediately at θ = 40; every draw must
        // still be the centre's choice (v = 0)
        let t = SamplerTables::new(2000, 40.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for j in [2usize, 100, 2000] {
            for _ in 0..50 {
                assert_eq!(t.sample_stage(j, &mut rng), 0);
            }
        }
    }

    #[test]
    fn sampler_reuses_buffers_and_produces_valid_permutations() {
        let center = Permutation::random(300, &mut StdRng::seed_from_u64(1));
        let mut sampler = RimSampler::new(center, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = Permutation::identity(0);
        for _ in 0..20 {
            sampler.sample_into(&mut out, &mut rng);
            let mut sorted = out.as_order().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..300).collect::<Vec<_>>());
        }
    }

    #[test]
    fn code_total_equals_kendall_tau() {
        use ranking_core::distance;
        let center = Permutation::random(40, &mut StdRng::seed_from_u64(7));
        let mut sampler = RimSampler::new(center.clone(), 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut out = Permutation::identity(0);
        for _ in 0..25 {
            sampler.sample_into(&mut out, &mut rng);
            assert_eq!(
                sampler.code_total(),
                distance::kendall_tau(&out, &center).unwrap()
            );
        }
    }

    #[test]
    fn external_code_decode_matches_internal_path() {
        let center = Permutation::random(60, &mut StdRng::seed_from_u64(21));
        let tables = Arc::new(SamplerTables::new(60, 0.4).unwrap());
        let mut a = RimSampler::from_tables(center.clone(), Arc::clone(&tables)).unwrap();
        let mut b = RimSampler::from_tables(center, Arc::clone(&tables)).unwrap();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut out_a = Permutation::identity(0);
        let mut out_b = Permutation::identity(0);
        let mut code = Vec::new();
        for _ in 0..15 {
            a.sample_into(&mut out_a, &mut rng_a);
            tables.sample_code_into(60, &mut code, &mut rng_b);
            b.decode_external_code_into(&code, &mut out_b);
            assert_eq!(out_a, out_b);
        }
    }

    #[test]
    fn from_tables_rejects_short_tables() {
        let tables = Arc::new(SamplerTables::new(3, 1.0).unwrap());
        assert!(RimSampler::from_tables(Permutation::identity(5), tables).is_err());
    }

    #[test]
    fn shared_tables_support_shorter_centers() {
        let tables = Arc::new(SamplerTables::new(64, 1.0).unwrap());
        let mut sampler =
            RimSampler::from_tables(Permutation::identity(10), Arc::clone(&tables)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sampler.sample(&mut rng).len(), 10);
    }
}
