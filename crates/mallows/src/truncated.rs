//! Top-`k` (truncated) Mallows sampling for shortlist workloads.
//!
//! The paper's motivating HR scenario shortlists `k` of `n` candidates;
//! materializing a full Mallows permutation of all `n` only to discard
//! the tail wastes `O(n log n)` work per sample when `k ≪ n`. The
//! Kendall-tau Mallows model admits an exact *sequential selection*
//! view: the item placed at the next rank is the `v`-th best remaining
//! item in centre order, where `v` follows the truncated geometric law
//! `P(v) ∝ q^v` over the `m` remaining items (`q = e^{−θ}`). Stopping
//! after `k` selections yields an exact sample of the top-`k` marginal
//! in `O(k log n)` using a Fenwick tree over the surviving centre
//! positions.
//!
//! Equivalence with the repeated insertion model: inserting centre
//! items `1..n` with truncated-geometric displacement is well known to
//! equal Mallows; reading the same distribution "from the top" gives
//! the selection form (each selection contributes `v` inversions
//! against the centre independently, and `Σ v` reproduces the Kendall
//! tau exponent). The tests cross-validate the k = n case against
//! [`MallowsModel`](crate::MallowsModel)'s PMF.

use crate::tables::SamplerTables;
use crate::{MallowsError, Result};
use rand::Rng;
use ranking_core::Permutation;

/// Exact sampler for the top-`k` prefix of a Mallows distribution.
#[derive(Debug, Clone)]
pub struct TopKMallows {
    center: Permutation,
    theta: f64,
    k: usize,
    /// Stage table built once at construction; selection step `s`
    /// draws from the truncated geometric over the `n − s` survivors.
    tables: SamplerTables,
}

impl TopKMallows {
    /// Create a sampler for the first `k ≤ n` positions of
    /// `M(π₀, θ)`.
    pub fn new(center: Permutation, theta: f64, k: usize) -> Result<Self> {
        if k > center.len() {
            return Err(MallowsError::LengthMismatch {
                center: center.len(),
                other: k,
            });
        }
        let tables = SamplerTables::new(center.len(), theta)?;
        Ok(TopKMallows {
            center,
            theta,
            k,
            tables,
        })
    }

    /// The centre permutation.
    pub fn center(&self) -> &Permutation {
        &self.center
    }

    /// The dispersion parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Prefix length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Draw the top-`k` items (in rank order) of one exact Mallows
    /// sample. `O(k log n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.k);
        self.sample_into(&mut out, rng);
        out
    }

    /// Draw one top-`k` sample into `out`, reusing its buffer (the
    /// Fenwick survivor tree is still allocated per call).
    ///
    /// ```
    /// use mallows_model::TopKMallows;
    /// use ranking_core::Permutation;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let sampler = TopKMallows::new(Permutation::identity(20), 1.0, 5).unwrap();
    /// let mut rng = StdRng::seed_from_u64(8);
    /// let mut out = Vec::new();
    /// sampler.sample_into(&mut out, &mut rng);
    /// assert_eq!(out.len(), 5);
    /// ```
    pub fn sample_into<R: Rng + ?Sized>(&self, out: &mut Vec<usize>, rng: &mut R) {
        let n = self.center.len();
        let mut alive = Fenwick::all_alive(n);
        out.clear();
        out.reserve(self.k);
        for step in 0..self.k {
            let remaining = n - step;
            let v = self.tables.sample_stage(remaining, rng);
            let center_pos = alive.select_kth_alive(v);
            alive.kill(center_pos);
            out.push(self.center.item_at(center_pos));
        }
    }

    /// Draw `m` independent top-`k` samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<Vec<usize>> {
        (0..m).map(|_| self.sample(rng)).collect()
    }

    /// Closed-form marginal probability that the item at centre rank
    /// `j` (0-based) occupies the **first** position of a sample:
    /// `q^j (1 − q) / (1 − q^n)` (uniform `1/n` at `θ = 0`).
    pub fn first_position_marginal(&self, j: usize) -> f64 {
        let n = self.center.len();
        debug_assert!(j < n);
        if self.theta == 0.0 {
            return 1.0 / n as f64;
        }
        let q = (-self.theta).exp();
        q.powi(j as i32) * (1.0 - q) / (1.0 - q.powi(n as i32))
    }
}

/// Fenwick tree over `n` slots supporting "kill slot" and "select the
/// `v`-th alive slot" in `O(log n)`.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<usize>,
    log2n: u32,
}

impl Fenwick {
    fn all_alive(n: usize) -> Self {
        let mut f = Fenwick {
            tree: vec![0; n + 1],
            log2n: usize::BITS - n.leading_zeros(),
        };
        for i in 1..=n {
            f.add(i, 1);
        }
        f
    }

    fn add(&mut self, mut i: usize, delta: isize) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as isize + delta) as usize;
            i += i & i.wrapping_neg();
        }
    }

    /// Mark 0-based slot `pos` dead.
    fn kill(&mut self, pos: usize) {
        self.add(pos + 1, -1);
    }

    /// 0-based index of the `v`-th (0-based) alive slot.
    fn select_kth_alive(&self, v: usize) -> usize {
        let mut target = v + 1; // 1-based rank among alive
        let mut pos = 0usize;
        let mut step = 1usize << self.log2n;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] < target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // pos is 1-based prefix end; slot index is pos (0-based: pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MallowsModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn fenwick_select_and_kill() {
        let mut f = Fenwick::all_alive(7);
        assert_eq!(f.select_kth_alive(0), 0);
        assert_eq!(f.select_kth_alive(6), 6);
        f.kill(0);
        f.kill(3);
        assert_eq!(f.select_kth_alive(0), 1);
        assert_eq!(f.select_kth_alive(2), 4);
        assert_eq!(f.select_kth_alive(4), 6);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(TopKMallows::new(Permutation::identity(5), -1.0, 3).is_err());
        assert!(TopKMallows::new(Permutation::identity(5), 1.0, 6).is_err());
    }

    #[test]
    fn sample_has_k_distinct_items() {
        let s = TopKMallows::new(Permutation::identity(40), 0.6, 10).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let top = s.sample(&mut rng);
            assert_eq!(top.len(), 10);
            let mut sorted = top.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicate items in top-k sample");
            assert!(sorted.iter().all(|&i| i < 40));
        }
    }

    #[test]
    fn full_length_sample_matches_mallows_pmf() {
        // k = n: the sequential sampler must reproduce the full Mallows
        // distribution exactly.
        let center = Permutation::from_order(vec![1, 3, 0, 2]).unwrap();
        let theta = 0.7;
        let s = TopKMallows::new(center.clone(), theta, 4).unwrap();
        let model = MallowsModel::new(center, theta).unwrap();
        let mut rng = StdRng::seed_from_u64(37);
        let draws = 40_000;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..draws {
            *counts.entry(s.sample(&mut rng)).or_default() += 1;
        }
        for pi in Permutation::enumerate_all(4) {
            let p = model.pmf(&pi).unwrap();
            let observed = *counts.get(pi.as_order()).unwrap_or(&0) as f64 / draws as f64;
            let sigma = (p * (1.0 - p) / draws as f64).sqrt();
            assert!(
                (observed - p).abs() < 5.0 * sigma + 1e-4,
                "π={pi}: pmf {p:.5} vs observed {observed:.5}"
            );
        }
    }

    #[test]
    fn first_position_marginal_matches_empirical() {
        let n = 6;
        let theta = 0.9;
        let s = TopKMallows::new(Permutation::identity(n), theta, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let draws = 60_000;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[s.sample(&mut rng)[0]] += 1;
        }
        for j in 0..n {
            let p = s.first_position_marginal(j);
            let observed = counts[j] as f64 / draws as f64;
            let sigma = (p * (1.0 - p) / draws as f64).sqrt();
            assert!(
                (observed - p).abs() < 5.0 * sigma + 1e-4,
                "rank {j}: marginal {p:.5} vs observed {observed:.5}"
            );
        }
    }

    #[test]
    fn first_position_marginals_sum_to_one() {
        let s = TopKMallows::new(Permutation::identity(9), 1.3, 1).unwrap();
        let total: f64 = (0..9).map(|j| s.first_position_marginal(j)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theta_zero_first_position_uniform() {
        let s = TopKMallows::new(Permutation::identity(8), 0.0, 1).unwrap();
        for j in 0..8 {
            assert!((s.first_position_marginal(j) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn high_theta_yields_center_prefix() {
        let center = Permutation::from_order(vec![5, 3, 1, 0, 2, 4]).unwrap();
        let s = TopKMallows::new(center.clone(), 25.0, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let hits = (0..100)
            .filter(|_| s.sample(&mut rng) == center.prefix(3))
            .count();
        assert!(
            hits > 95,
            "only {hits}/100 samples match the centre prefix at θ=25"
        );
    }

    #[test]
    fn empty_prefix_is_allowed() {
        let s = TopKMallows::new(Permutation::identity(4), 1.0, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.sample(&mut rng).is_empty());
    }
}
