//! Golden-statistics tests: the table-driven sampler must draw from
//! exactly the Mallows distribution the original closed-form sampler
//! drew from.
//!
//! The "old" sampler is
//! [`mallows_model::tables::sample_reference`] — per-stage truncated
//! geometric via closed-form CDF inversion plus an allocating decode,
//! kept bit-faithful to the original implementation — compared to the
//! table path ([`mallows_model::RimSampler`]) under fixed seeds:
//!
//! * a two-sample χ² test over the Kendall-distance histogram at
//!   realistic sizes, and
//! * an exact-PMF χ² test on a fully enumerable `n = 4` model.

use mallows_model::tables::sample_reference;
use mallows_model::{MallowsModel, RimSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranking_core::{distance, Permutation};
use std::collections::HashMap;

/// Two-sample χ² statistic over equal-size histograms, merging sparse
/// cells (combined count < 10) into their left neighbour.
fn two_sample_chi_square(a: &[u64], b: &[u64]) -> (f64, usize) {
    let len = a.len().max(b.len());
    let at = |h: &[u64], i: usize| h.get(i).copied().unwrap_or(0) as f64;
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for i in 0..len {
        acc.0 += at(a, i);
        acc.1 += at(b, i);
        if acc.0 + acc.1 >= 10.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.0 + acc.1 > 0.0 {
        match cells.last_mut() {
            Some(last) => {
                last.0 += acc.0;
                last.1 += acc.1;
            }
            None => cells.push(acc),
        }
    }
    let statistic = cells
        .iter()
        .map(|&(x, y)| {
            let d = x - y;
            d * d / (x + y)
        })
        .sum();
    (statistic, cells.len().saturating_sub(1))
}

#[test]
fn kendall_distance_histograms_match_across_samplers() {
    let draws = 20_000usize;
    for (theta, seed) in [(0.2f64, 101u64), (1.0, 202), (3.0, 303)] {
        let center = Permutation::random(30, &mut StdRng::seed_from_u64(seed));
        let max_d = distance::max_kendall_tau(30) as usize;

        let mut old_hist = vec![0u64; max_d + 1];
        let mut rng = StdRng::seed_from_u64(seed + 1);
        for _ in 0..draws {
            let s = sample_reference(&center, theta, &mut rng);
            old_hist[distance::kendall_tau(&s, &center).unwrap() as usize] += 1;
        }

        let mut new_hist = vec![0u64; max_d + 1];
        let mut sampler = RimSampler::new(center.clone(), theta).unwrap();
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let mut out = Permutation::identity(0);
        for _ in 0..draws {
            sampler.sample_into(&mut out, &mut rng);
            new_hist[distance::kendall_tau(&out, &center).unwrap() as usize] += 1;
        }

        let (statistic, dof) = two_sample_chi_square(&old_hist, &new_hist);
        // far beyond the 99.99th percentile of χ²_dof; a distribution
        // shift (not noise) is needed to trip it
        let threshold = dof as f64 + 5.0 * (2.0 * dof as f64).sqrt() + 10.0;
        assert!(
            statistic < threshold,
            "θ={theta}: χ² = {statistic:.1} over {dof} dof (threshold {threshold:.1})"
        );
    }
}

#[test]
fn table_sampler_matches_exact_pmf_on_enumerable_model() {
    let center = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
    let theta = 0.8;
    let model = MallowsModel::new(center.clone(), theta).unwrap();
    let mut sampler = RimSampler::new(center, theta).unwrap();
    let mut rng = StdRng::seed_from_u64(404);
    let draws = 60_000;
    let mut counts: HashMap<Vec<usize>, u64> = HashMap::new();
    let mut out = Permutation::identity(0);
    for _ in 0..draws {
        sampler.sample_into(&mut out, &mut rng);
        *counts.entry(out.as_order().to_vec()).or_default() += 1;
    }
    // one-sample χ² against the exact PMF over all 24 permutations
    let mut statistic = 0.0;
    for pi in Permutation::enumerate_all(4) {
        let expected = model.pmf(&pi).unwrap() * draws as f64;
        let observed = *counts.get(pi.as_order()).unwrap_or(&0) as f64;
        let d = observed - expected;
        statistic += d * d / expected;
    }
    // χ²_23: 99.99th percentile ≈ 58.6
    assert!(statistic < 70.0, "χ² = {statistic:.1} over 23 dof");
}

#[test]
fn expected_kendall_distance_is_preserved() {
    // the closed-form E[d_KT] was derived for the original sampler;
    // the table sampler must reproduce it
    let n = 200;
    for theta in [0.1f64, 0.5, 1.5] {
        let model = MallowsModel::new(Permutation::identity(n), theta).unwrap();
        let mut sampler = model.sampler();
        let mut rng = StdRng::seed_from_u64(707);
        let draws = 3_000;
        let mut total = 0u64;
        let mut out = Permutation::identity(0);
        for _ in 0..draws {
            sampler.sample_into(&mut out, &mut rng);
            total += sampler.code_total();
        }
        let mean = total as f64 / draws as f64;
        let expect = model.expected_kendall_tau();
        assert!(
            (mean - expect).abs() < 0.05 * expect.max(1.0),
            "θ={theta}: MC mean {mean:.2} vs closed form {expect:.2}"
        );
    }
}
