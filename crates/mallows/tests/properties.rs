//! Property-based tests for the Mallows model family.

use mallows_model::{CayleyMallows, MallowsMixture, MallowsModel, TopKMallows};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranking_core::{distance, Permutation};

fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    prop::collection::vec(any::<u64>(), n).prop_map(|keys| {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by_key(|&i| keys[i]);
        Permutation::from_order(idx).expect("valid permutation")
    })
}

fn is_permutation_of(items: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    items.iter().all(|&i| {
        if i < n && !seen[i] {
            seen[i] = true;
            true
        } else {
            false
        }
    })
}

proptest! {
    #[test]
    fn kt_samples_are_valid(center in permutation(12), theta in 0.0f64..4.0, seed in any::<u64>()) {
        let model = MallowsModel::new(center, theta).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = model.sample(&mut rng);
        prop_assert!(is_permutation_of(s.as_order(), 12));
    }

    #[test]
    fn cayley_samples_are_valid(center in permutation(11), theta in 0.0f64..4.0, seed in any::<u64>()) {
        let model = CayleyMallows::new(center.clone(), theta).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = model.sample(&mut rng);
        prop_assert!(is_permutation_of(s.as_order(), 11));
        // Cayley distance is at most n − 1
        prop_assert!(distance::cayley(&s, &center).unwrap() <= 10);
    }

    #[test]
    fn topk_samples_are_valid_prefixes(
        center in permutation(15),
        theta in 0.0f64..4.0,
        k in 0usize..=15,
        seed in any::<u64>(),
    ) {
        let sampler = TopKMallows::new(center, theta, k).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let top = sampler.sample(&mut rng);
        prop_assert_eq!(top.len(), k);
        let mut sorted = top.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "duplicates in top-k sample");
        prop_assert!(top.iter().all(|&i| i < 15));
    }

    #[test]
    fn ln_pmf_is_log_probability(center in permutation(6), pi in permutation(6), theta in 0.0f64..3.0) {
        let model = MallowsModel::new(center, theta).unwrap();
        let lp = model.ln_pmf(&pi).unwrap();
        prop_assert!(lp <= 1e-12, "ln pmf {} > 0", lp);
        let p = model.pmf(&pi).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    #[test]
    fn cayley_ln_pmf_is_log_probability(center in permutation(6), pi in permutation(6), theta in 0.0f64..3.0) {
        let model = CayleyMallows::new(center, theta).unwrap();
        let lp = model.ln_pmf(&pi).unwrap();
        prop_assert!(lp <= 1e-12);
    }

    #[test]
    fn center_is_the_mode(center in permutation(7), pi in permutation(7), theta in 0.1f64..3.0) {
        let model = MallowsModel::new(center.clone(), theta).unwrap();
        prop_assert!(
            model.ln_pmf(&pi).unwrap() <= model.ln_pmf(&center).unwrap() + 1e-12,
            "centre must maximize the pmf"
        );
    }

    #[test]
    fn expected_distances_decrease_in_theta(n in 2usize..20) {
        let a = MallowsModel::new(Permutation::identity(n), 0.3).unwrap();
        let b = MallowsModel::new(Permutation::identity(n), 1.3).unwrap();
        prop_assert!(b.expected_kendall_tau() < a.expected_kendall_tau());
        let ca = CayleyMallows::new(Permutation::identity(n), 0.3).unwrap();
        let cb = CayleyMallows::new(Permutation::identity(n), 1.3).unwrap();
        prop_assert!(cb.expected_cayley() < ca.expected_cayley());
    }

    #[test]
    fn first_position_marginals_form_distribution(n in 2usize..30, theta in 0.0f64..4.0) {
        let sampler = TopKMallows::new(Permutation::identity(n), theta, 1).unwrap();
        let total: f64 = (0..n).map(|j| sampler.first_position_marginal(j)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "Σ = {}", total);
        // monotone decreasing in centre rank for θ > 0
        if theta > 1e-9 {
            for j in 1..n {
                prop_assert!(
                    sampler.first_position_marginal(j) <= sampler.first_position_marginal(j - 1) + 1e-12
                );
            }
        }
    }

    #[test]
    fn mixture_responsibilities_are_distributions(
        c1 in permutation(6),
        c2 in permutation(6),
        samples in prop::collection::vec(0u64..,.. 4),
    ) {
        let mix = MallowsMixture::new(
            vec![
                MallowsModel::new(c1, 0.8).unwrap(),
                MallowsModel::new(c2, 1.2).unwrap(),
            ],
            vec![0.4, 0.6],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(samples.first().copied().unwrap_or(7));
        let data: Vec<Permutation> = (0..5).map(|_| mix.sample(&mut rng)).collect();
        for row in mix.responsibilities(&data).unwrap() {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&r| (0.0..=1.0 + 1e-12).contains(&r)));
        }
    }

    #[test]
    fn mixture_pmf_bounded_by_component_max(pi in permutation(5), w in 0.05f64..0.95) {
        let a = MallowsModel::new(Permutation::identity(5), 0.7).unwrap();
        let b = MallowsModel::new(Permutation::from_order(vec![4, 3, 2, 1, 0]).unwrap(), 1.1)
            .unwrap();
        let pa = a.pmf(&pi).unwrap();
        let pb = b.pmf(&pi).unwrap();
        let mix = MallowsMixture::new(vec![a, b], vec![w, 1.0 - w]).unwrap();
        let pm = mix.pmf(&pi).unwrap();
        prop_assert!(pm <= pa.max(pb) + 1e-12);
        prop_assert!(pm >= pa.min(pb) - 1e-12);
    }
}
