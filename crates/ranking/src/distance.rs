//! Distance metrics between rankings (paper Section III-C).
//!
//! All distances are right-invariant: `d(π, σ) = d(π∘ρ, σ∘ρ)`, so each is
//! computed on the relabelled sequence `π` relative to `σ` (see
//! [`Permutation::relative_to`]) against the identity.

use crate::{Permutation, RankingError, Result};

/// Kendall tau distance: number of discordant pairs between `pi` and
/// `sigma`. `O(n log n)` via inversion counting (merge sort).
///
/// ```
/// use ranking_core::{Permutation, distance::kendall_tau};
/// let id = Permutation::identity(3);
/// let rev = Permutation::from_order(vec![2, 1, 0]).unwrap();
/// assert_eq!(kendall_tau(&rev, &id).unwrap(), 3);
/// ```
pub fn kendall_tau(pi: &Permutation, sigma: &Permutation) -> Result<u64> {
    let rel = pi.relative_to(sigma)?;
    Ok(count_inversions(&rel))
}

/// Naive `O(n²)` Kendall tau used as a test oracle and for tiny inputs
/// where it beats the merge-sort constant factor.
pub fn kendall_tau_naive(pi: &Permutation, sigma: &Permutation) -> Result<u64> {
    let rel = pi.relative_to(sigma)?;
    let mut d = 0u64;
    for i in 0..rel.len() {
        for j in (i + 1)..rel.len() {
            if rel[i] > rel[j] {
                d += 1;
            }
        }
    }
    Ok(d)
}

/// Kendall's tau coefficient `kτ = 1 − 4·d_KT / (n(n−1)) ∈ [−1, 1]`.
///
/// Returns an error on rankings with fewer than two items (the
/// normalization is undefined there).
pub fn kendall_tau_coefficient(pi: &Permutation, sigma: &Permutation) -> Result<f64> {
    let n = pi.len() as u64;
    if n < 2 {
        return Err(RankingError::Empty);
    }
    let d = kendall_tau(pi, sigma)?;
    Ok(1.0 - 4.0 * d as f64 / (n * (n - 1)) as f64)
}

/// Maximum possible Kendall tau distance for `n` items: `n(n−1)/2`.
pub fn max_kendall_tau(n: usize) -> u64 {
    (n as u64) * (n as u64).saturating_sub(1) / 2
}

/// Spearman distance `d₂(π, σ) = Σᵢ (π(i) − σ(i))²` over item positions.
pub fn spearman(pi: &Permutation, sigma: &Permutation) -> Result<u64> {
    if pi.len() != sigma.len() {
        return Err(RankingError::LengthMismatch {
            left: pi.len(),
            right: sigma.len(),
        });
    }
    let pp = pi.positions();
    let sp = sigma.positions();
    Ok(pp
        .iter()
        .zip(&sp)
        .map(|(&a, &b)| {
            let d = a.abs_diff(b) as u64;
            d * d
        })
        .sum())
}

/// Spearman footrule `d₁(π, σ) = Σᵢ |π(i) − σ(i)|` over item positions.
/// This is the efficiency objective of ApproxMultiValuedIPF (Wei et al.).
pub fn footrule(pi: &Permutation, sigma: &Permutation) -> Result<u64> {
    if pi.len() != sigma.len() {
        return Err(RankingError::LengthMismatch {
            left: pi.len(),
            right: sigma.len(),
        });
    }
    let pp = pi.positions();
    let sp = sigma.positions();
    Ok(pp
        .iter()
        .zip(&sp)
        .map(|(&a, &b)| a.abs_diff(b) as u64)
        .sum())
}

/// Ulam distance: `n` minus the length of the longest increasing
/// subsequence of `π` relative to `σ` (minimum number of
/// delete-and-reinsert moves). `O(n log n)` patience sorting.
pub fn ulam(pi: &Permutation, sigma: &Permutation) -> Result<u64> {
    let rel = pi.relative_to(sigma)?;
    let lis = longest_increasing_subsequence_len(&rel);
    Ok((rel.len() - lis) as u64)
}

/// Cayley distance: minimum number of transpositions transforming `σ`
/// into `π`, i.e. `n` minus the number of cycles of `π∘σ⁻¹`.
pub fn cayley(pi: &Permutation, sigma: &Permutation) -> Result<u64> {
    let rel = pi.relative_to(sigma)?;
    let n = rel.len();
    let mut seen = vec![false; n];
    let mut cycles = 0usize;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        cycles += 1;
        let mut cur = start;
        while !seen[cur] {
            seen[cur] = true;
            cur = rel[cur];
        }
    }
    Ok((n - cycles) as u64)
}

/// Hamming distance: number of positions holding different items.
pub fn hamming(pi: &Permutation, sigma: &Permutation) -> Result<u64> {
    if pi.len() != sigma.len() {
        return Err(RankingError::LengthMismatch {
            left: pi.len(),
            right: sigma.len(),
        });
    }
    Ok(pi
        .as_order()
        .iter()
        .zip(sigma.as_order())
        .filter(|(a, b)| a != b)
        .count() as u64)
}

/// Count inversions of an integer sequence in `O(n log n)` with an
/// iterative bottom-up merge sort over index buffers.
pub fn count_inversions(seq: &[usize]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mut buf: Vec<usize> = seq.to_vec();
    let mut tmp: Vec<usize> = vec![0; n];
    let mut inversions = 0u64;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            inversions += merge_count(&buf[lo..mid], &buf[mid..hi], &mut tmp[lo..hi]);
            buf[lo..hi].copy_from_slice(&tmp[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

fn merge_count(left: &[usize], right: &[usize], out: &mut [usize]) -> u64 {
    let (mut i, mut j, mut k) = (0, 0, 0);
    let mut inv = 0u64;
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            out[k] = left[i];
            i += 1;
        } else {
            out[k] = right[j];
            j += 1;
            inv += (left.len() - i) as u64;
        }
        k += 1;
    }
    while i < left.len() {
        out[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        out[k] = right[j];
        j += 1;
        k += 1;
    }
    inv
}

/// Length of the longest strictly increasing subsequence (patience
/// sorting with binary search).
pub fn longest_increasing_subsequence_len(seq: &[usize]) -> usize {
    let mut tails: Vec<usize> = Vec::new();
    for &x in seq {
        match tails.binary_search(&x) {
            // strictly increasing: equal elements replace
            Ok(pos) | Err(pos) => {
                if pos == tails.len() {
                    tails.push(x);
                } else {
                    tails[pos] = x;
                }
            }
        }
    }
    tails.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn perm(v: Vec<usize>) -> Permutation {
        Permutation::from_order(v).unwrap()
    }

    #[test]
    fn kendall_identity_is_zero() {
        let p = perm(vec![2, 0, 1, 3]);
        assert_eq!(kendall_tau(&p, &p).unwrap(), 0);
    }

    #[test]
    fn kendall_reverse_is_max() {
        let id = Permutation::identity(6);
        let rev = perm((0..6).rev().collect());
        assert_eq!(kendall_tau(&rev, &id).unwrap(), max_kendall_tau(6));
    }

    #[test]
    fn kendall_is_symmetric() {
        let a = perm(vec![3, 1, 4, 0, 2]);
        let b = perm(vec![0, 4, 2, 3, 1]);
        assert_eq!(kendall_tau(&a, &b).unwrap(), kendall_tau(&b, &a).unwrap());
    }

    #[test]
    fn kendall_fast_matches_naive_randomized() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [0usize, 1, 2, 5, 17, 64] {
            for _ in 0..20 {
                let a = Permutation::random(n, &mut rng);
                let b = Permutation::random(n, &mut rng);
                assert_eq!(
                    kendall_tau(&a, &b).unwrap(),
                    kendall_tau_naive(&a, &b).unwrap(),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn kendall_coefficient_bounds() {
        let id = Permutation::identity(5);
        let rev = perm((0..5).rev().collect());
        assert!((kendall_tau_coefficient(&id, &id).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau_coefficient(&rev, &id).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_coefficient_rejects_singleton() {
        let one = Permutation::identity(1);
        assert!(kendall_tau_coefficient(&one, &one).is_err());
    }

    #[test]
    fn spearman_known_value() {
        // identity vs reverse on 3 items: positions (0,1,2) vs (2,1,0) → 4+0+4
        let id = Permutation::identity(3);
        let rev = perm(vec![2, 1, 0]);
        assert_eq!(spearman(&rev, &id).unwrap(), 8);
    }

    #[test]
    fn footrule_known_value() {
        let id = Permutation::identity(3);
        let rev = perm(vec![2, 1, 0]);
        assert_eq!(footrule(&rev, &id).unwrap(), 4);
    }

    #[test]
    fn footrule_diaconis_graham_sandwich() {
        // d_KT ≤ footrule ≤ 2 d_KT (Diaconis–Graham inequality)
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = Permutation::random(12, &mut rng);
            let b = Permutation::random(12, &mut rng);
            let kt = kendall_tau(&a, &b).unwrap();
            let fr = footrule(&a, &b).unwrap();
            assert!(kt <= fr && fr <= 2 * kt, "kt={kt} fr={fr}");
        }
    }

    #[test]
    fn ulam_single_move() {
        // moving one item: [1,2,3,0] relative to identity → LIS = 3 → d = 1
        let id = Permutation::identity(4);
        let moved = perm(vec![1, 2, 3, 0]);
        assert_eq!(ulam(&moved, &id).unwrap(), 1);
    }

    #[test]
    fn ulam_identity_zero_reverse_max() {
        let id = Permutation::identity(5);
        let rev = perm((0..5).rev().collect());
        assert_eq!(ulam(&id, &id).unwrap(), 0);
        assert_eq!(ulam(&rev, &id).unwrap(), 4);
    }

    #[test]
    fn cayley_one_swap() {
        let id = Permutation::identity(4);
        let mut sw = Permutation::identity(4);
        sw.swap_positions(1, 3);
        assert_eq!(cayley(&sw, &id).unwrap(), 1);
    }

    #[test]
    fn cayley_at_most_n_minus_one() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let a = Permutation::random(9, &mut rng);
            let b = Permutation::random(9, &mut rng);
            assert!(cayley(&a, &b).unwrap() <= 8);
        }
    }

    #[test]
    fn hamming_counts_mismatches() {
        let id = Permutation::identity(4);
        let p = perm(vec![0, 2, 1, 3]);
        assert_eq!(hamming(&p, &id).unwrap(), 2);
    }

    #[test]
    fn distances_error_on_length_mismatch() {
        let a = Permutation::identity(3);
        let b = Permutation::identity(4);
        assert!(kendall_tau(&a, &b).is_err());
        assert!(spearman(&a, &b).is_err());
        assert!(footrule(&a, &b).is_err());
        assert!(ulam(&a, &b).is_err());
        assert!(cayley(&a, &b).is_err());
        assert!(hamming(&a, &b).is_err());
    }

    #[test]
    fn count_inversions_empty_and_single() {
        assert_eq!(count_inversions(&[]), 0);
        assert_eq!(count_inversions(&[5]), 0);
    }

    #[test]
    fn lis_handles_decreasing() {
        assert_eq!(longest_increasing_subsequence_len(&[4, 3, 2, 1, 0]), 1);
        assert_eq!(longest_increasing_subsequence_len(&[0, 1, 2]), 3);
    }
}
