//! Insertion codes (Lehmer-style) and their efficient decoding.
//!
//! The repeated insertion model (RIM) behind Mallows sampling describes
//! a permutation by an *insertion code* `v`: item `j` (1-based rank in
//! some reference order) is inserted so that `v[j−1] ∈ {0, …, j−1}` of
//! the previously inserted items end up after it. Decoding the code
//! naively costs `O(n²)` (`Vec::insert`); [`decode_insertion_code`]
//! selects between the naive decoder and an `O(n log n)` Fenwick-tree
//! free-slot decoder. Both produce identical output for the same code,
//! so samplers stay deterministic under a fixed RNG regardless of size.

use crate::{Permutation, RankingError, Result};

/// Size at which the Fenwick decoder overtakes the insert-based one
/// (measured by `bench/benches/ablation_sampler.rs`).
const FENWICK_THRESHOLD: usize = 128;

/// Decode an insertion code against a reference ordering.
///
/// `reference.item_at(j-1)` is inserted with `code[j-1]` of the earlier
/// items placed after it. Errors when the code length mismatches or an
/// entry is out of its stage range (`code[j-1] ≥ j`).
pub fn decode_insertion_code(reference: &Permutation, code: &[usize]) -> Result<Permutation> {
    let n = reference.len();
    if code.len() != n {
        return Err(RankingError::LengthMismatch {
            left: n,
            right: code.len(),
        });
    }
    for (idx, &v) in code.iter().enumerate() {
        if v > idx {
            return Err(RankingError::NotAPermutation {
                len: n,
                offending: Some(v),
            });
        }
    }
    if n < FENWICK_THRESHOLD {
        Ok(decode_insert(reference, code))
    } else {
        Ok(decode_fenwick(reference, code))
    }
}

/// Streaming insert decode: stage `j`'s inversion count is produced on
/// the fly by `stage(j)` (which must return a value in `0..j`) and the
/// item is inserted immediately, so no code buffer exists at all. `out`
/// is refilled in place, reusing its buffer.
///
/// Cost is `Σ stage(j)` moved elements — the right tool for samplers
/// whose stage values are concentrated near zero. For adversarial or
/// uniform codes prefer [`decode_insertion_code_into`], which can fall
/// back to the `O(n log n)` Fenwick path.
///
/// # Panics
/// Panics when `stage(j)` returns a value outside `0..j`.
pub fn decode_streaming_into(
    reference: &Permutation,
    out: &mut Permutation,
    mut stage: impl FnMut(usize) -> usize,
) {
    let n = reference.len();
    let order = out.order_mut();
    order.clear();
    order.reserve(n);
    for j in 1..=n {
        let v = stage(j);
        assert!(v < j, "stage {j} produced out-of-range inversion count {v}");
        order.insert(j - 1 - v, reference.item_at(j - 1));
    }
}

/// Reusable buffers for [`decode_insertion_code_into`], so hot sampling
/// loops decode without touching the allocator.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    tree: Vec<usize>,
}

impl DecodeScratch {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        DecodeScratch::default()
    }
}

/// Decode an insertion code into an existing permutation, reusing both
/// the output buffer and `scratch` — zero allocations once the buffers
/// have grown to size `n`.
///
/// The decode strategy is chosen per call from the code itself: the
/// insert-based decoder moves `Σ code` elements in total (tiny for the
/// concentrated codes Mallows sampling produces at moderate `θ`), the
/// Fenwick decoder costs `O(n log n)` regardless; whichever bound is
/// smaller wins. Output is identical either way.
///
/// Errors (leaving `out` in an unspecified but valid-to-drop state)
/// when the code length mismatches or an entry is out of stage range.
pub fn decode_insertion_code_into(
    reference: &Permutation,
    code: &[usize],
    scratch: &mut DecodeScratch,
    out: &mut Permutation,
) -> Result<()> {
    let n = reference.len();
    if code.len() != n {
        return Err(RankingError::LengthMismatch {
            left: n,
            right: code.len(),
        });
    }
    for (idx, &v) in code.iter().enumerate() {
        if v > idx {
            return Err(RankingError::NotAPermutation {
                len: n,
                offending: Some(v),
            });
        }
    }
    let total: usize = code.iter().sum();
    let fenwick_cost = 2 * n * (usize::BITS - n.leading_zeros()) as usize;
    if n < FENWICK_THRESHOLD || total <= fenwick_cost {
        let order = out.order_mut();
        order.clear();
        order.reserve(n);
        for j in 1..=n {
            order.insert(j - 1 - code[j - 1], reference.item_at(j - 1));
        }
    } else {
        let order = out.order_mut();
        order.clear();
        order.resize(n, usize::MAX);
        let tree = &mut scratch.tree;
        tree.clear();
        tree.resize(n + 1, 0);
        for i in 1..=n {
            tree[i] += 1;
            let next = i + (i & i.wrapping_neg());
            if next <= n {
                tree[next] += tree[i];
            }
        }
        let log = usize::BITS - n.leading_zeros();
        for j in (1..=n).rev() {
            let rank = j - code[j - 1];
            // find the slot holding the `rank`-th remaining unit …
            let mut k = rank;
            let mut pos = 0usize;
            let mut step = 1usize << log;
            while step > 0 {
                let next = pos + step;
                if next <= n && tree[next] < k {
                    k -= tree[next];
                    pos = next;
                }
                step >>= 1;
            }
            // … remove it and place the item there
            let mut i = pos + 1;
            while i <= n {
                tree[i] -= 1;
                i += i & i.wrapping_neg();
            }
            order[pos] = reference.item_at(j - 1);
        }
    }
    Ok(())
}

/// Inverse of decoding: the insertion code of `pi` relative to
/// `reference` (such that `decode_insertion_code(reference, code) == pi`).
pub fn encode_insertion_code(reference: &Permutation, pi: &Permutation) -> Result<Vec<usize>> {
    if reference.len() != pi.len() {
        return Err(RankingError::LengthMismatch {
            left: reference.len(),
            right: pi.len(),
        });
    }
    let pos = pi.positions();
    let n = reference.len();
    // code[j-1] = # of earlier reference items placed after item j
    let mut code = vec![0usize; n];
    for (j, slot) in code.iter_mut().enumerate() {
        let item = reference.item_at(j);
        *slot = (0..j)
            .filter(|&i| pos[reference.item_at(i)] > pos[item])
            .count();
    }
    Ok(code)
}

/// Naive `O(n²)` decoder — fast for small `n` thanks to memmove.
pub(crate) fn decode_insert(reference: &Permutation, code: &[usize]) -> Permutation {
    let n = reference.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for j in 1..=n {
        let v = code[j - 1];
        order.insert((j - 1) - v, reference.item_at(j - 1));
    }
    Permutation::from_order_unchecked(order)
}

/// `O(n log n)` decoder: process items in reverse insertion order; item
/// `j`'s rank among items `1..=j` is `j − v_j`, and the slots still free
/// are exactly those that items `1..j` will occupy, so item `j` takes
/// the `(j − v_j)`-th free slot (found by Fenwick binary lifting).
pub(crate) fn decode_fenwick(reference: &Permutation, code: &[usize]) -> Permutation {
    let n = reference.len();
    let mut tree = Fenwick::ones(n);
    let mut order = vec![usize::MAX; n];
    for j in (1..=n).rev() {
        let rank = j - code[j - 1]; // 1-based rank among the free slots
        let slot = tree.find_kth(rank);
        tree.sub_one(slot);
        order[slot] = reference.item_at(j - 1);
    }
    Permutation::from_order_unchecked(order)
}

/// Minimal Fenwick (binary indexed) tree over unit slot weights with
/// `find_kth` by binary lifting.
struct Fenwick {
    tree: Vec<usize>,
    log: u32,
}

impl Fenwick {
    /// All `n` slots present (weight 1 each).
    fn ones(n: usize) -> Self {
        let mut tree = vec![0usize; n + 1];
        for i in 1..=n {
            tree[i] += 1;
            let next = i + (i & i.wrapping_neg());
            if next <= n {
                tree[next] += tree[i];
            }
        }
        Fenwick {
            tree,
            log: usize::BITS - n.leading_zeros(),
        }
    }

    /// Remove one unit from 0-based `slot`.
    fn sub_one(&mut self, slot: usize) {
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// 0-based index of the slot holding the `k`-th (1-based) remaining
    /// unit.
    fn find_kth(&self, mut k: usize) -> usize {
        let mut pos = 0usize;
        let mut step = 1usize << self.log;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] < k {
                k -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // pos is the count of slots strictly before the answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_code(n: usize, rng: &mut StdRng) -> Vec<usize> {
        (0..n)
            .map(|j| if j == 0 { 0 } else { rng.random_range(0..=j) })
            .collect()
    }

    #[test]
    fn zero_code_is_the_reference() {
        let r = Permutation::from_order(vec![3, 1, 0, 2]).unwrap();
        let out = decode_insertion_code(&r, &[0, 0, 0, 0]).unwrap();
        assert_eq!(out, r);
    }

    #[test]
    fn max_code_reverses_the_reference() {
        let r = Permutation::identity(5);
        let out = decode_insertion_code(&r, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(out.as_order(), &[4, 3, 2, 1, 0]);
    }

    #[test]
    fn decoders_agree_on_random_codes() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0usize, 1, 2, 17, 130, 500] {
            let r = Permutation::random(n, &mut rng);
            for _ in 0..5 {
                let code = random_code(n, &mut rng);
                assert_eq!(
                    decode_insert(&r, &code),
                    decode_fenwick(&r, &code),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let r = Permutation::random(12, &mut rng);
            let pi = Permutation::random(12, &mut rng);
            let code = encode_insertion_code(&r, &pi).unwrap();
            assert_eq!(decode_insertion_code(&r, &code).unwrap(), pi);
        }
    }

    #[test]
    fn code_total_equals_kendall_tau_to_reference() {
        // Σ code = number of (earlier, later) pairs out of order = d_KT
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let r = Permutation::random(10, &mut rng);
            let pi = Permutation::random(10, &mut rng);
            let code = encode_insertion_code(&r, &pi).unwrap();
            let total: usize = code.iter().sum();
            let d = crate::distance::kendall_tau(&pi, &r).unwrap();
            assert_eq!(total as u64, d);
        }
    }

    #[test]
    fn invalid_codes_rejected() {
        let r = Permutation::identity(3);
        assert!(decode_insertion_code(&r, &[0, 0]).is_err());
        assert!(decode_insertion_code(&r, &[0, 2, 0]).is_err());
        assert!(decode_insertion_code(&r, &[1, 0, 0]).is_err());
    }

    #[test]
    fn empty_code() {
        let r = Permutation::identity(0);
        assert_eq!(decode_insertion_code(&r, &[]).unwrap().len(), 0);
    }

    #[test]
    fn decode_into_matches_decode_on_random_codes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut scratch = DecodeScratch::new();
        let mut out = Permutation::identity(0);
        for n in [0usize, 1, 5, 64, 200, 400] {
            let r = Permutation::random(n, &mut rng);
            for _ in 0..5 {
                let code = random_code(n, &mut rng);
                decode_insertion_code_into(&r, &code, &mut scratch, &mut out).unwrap();
                assert_eq!(out, decode_insertion_code(&r, &code).unwrap(), "n = {n}");
            }
        }
    }

    #[test]
    fn decode_into_concentrated_codes_take_the_insert_path() {
        // all-zero code (the θ → ∞ limit) must reproduce the reference
        // through the memmove path even for large n
        let n = 500;
        let r = Permutation::random(n, &mut StdRng::seed_from_u64(5));
        let mut scratch = DecodeScratch::new();
        let mut out = Permutation::identity(0);
        decode_insertion_code_into(&r, &vec![0; n], &mut scratch, &mut out).unwrap();
        assert_eq!(out, r);
    }

    #[test]
    fn decode_into_rejects_invalid_codes() {
        let r = Permutation::identity(3);
        let mut scratch = DecodeScratch::new();
        let mut out = Permutation::identity(3);
        assert!(decode_insertion_code_into(&r, &[0, 0], &mut scratch, &mut out).is_err());
        assert!(decode_insertion_code_into(&r, &[0, 2, 0], &mut scratch, &mut out).is_err());
    }
}
