//! Core ranking primitives for the fair-ranking reproduction.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Permutation`] — a ranking over `n` items, stored in *order form*
//!   (`order[k]` = item placed at position `k`) with cheap conversion to
//!   *position form* (`position[i]` = position of item `i`);
//! * [`distance`] — Kendall tau (naive and `O(n log n)`), Spearman,
//!   footrule, Ulam, Cayley and Hamming distances between rankings, plus
//!   the normalized Kendall tau coefficient;
//! * [`quality`] — CG / DCG / IDCG / NDCG ranking-quality measures as used
//!   by the paper (Section III-D).
//!
//! Conventions
//! -----------
//! Items are identified by dense indices `0..n`. A [`Permutation`] `π`
//! maps *positions to items*: `π.item_at(0)` is the top-ranked item. The
//! paper writes `σ(i)` for the *position of item i*; that is
//! [`Permutation::position_of`]. Both views are kept consistent and all
//! distances accept permutations of equal length only.

#![forbid(unsafe_code)]

pub mod distance;
pub mod lehmer;
pub mod permutation;
pub mod quality;
pub mod toplist;

pub use permutation::Permutation;
pub use toplist::TopKList;

/// Errors produced by ranking-core operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingError {
    /// The supplied vector was not a permutation of `0..n`
    /// (duplicate or out-of-range entry).
    NotAPermutation {
        /// Length of the offending input.
        len: usize,
        /// First offending value, if identifiable.
        offending: Option<usize>,
    },
    /// Two rankings that must have equal length did not.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// An empty ranking where a non-empty one is required.
    Empty,
}

impl std::fmt::Display for RankingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankingError::NotAPermutation { len, offending } => match offending {
                Some(v) => write!(
                    f,
                    "input of length {len} is not a permutation (offending value {v})"
                ),
                None => write!(f, "input of length {len} is not a permutation"),
            },
            RankingError::LengthMismatch { left, right } => {
                write!(f, "rankings have mismatched lengths {left} and {right}")
            }
            RankingError::Empty => write!(f, "ranking must be non-empty"),
        }
    }
}

impl std::error::Error for RankingError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RankingError>;
