//! The [`Permutation`] type: a total ranking of `n` items.

use crate::{RankingError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation of the items `0..n`, i.e. a complete ranking.
///
/// Stored in *order form*: `order[k]` is the item occupying position `k`
/// (position `0` is the top of the ranking). The inverse *position form*
/// (`position[i]` = position of item `i`) is computed on demand by
/// [`Permutation::positions`] and cached by callers that need it hot.
///
/// ```
/// use ranking_core::Permutation;
/// let pi = Permutation::from_order(vec![2, 0, 1]).unwrap();
/// assert_eq!(pi.item_at(0), 2);        // item 2 ranked first
/// assert_eq!(pi.position_of(2), 0);
/// assert_eq!(pi.inverse().as_order(), &[1, 2, 0]); // position of each item
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Permutation {
    order: Vec<usize>,
}

impl Clone for Permutation {
    fn clone(&self) -> Self {
        Permutation {
            order: self.order.clone(),
        }
    }

    /// Buffer-reusing clone: overwrites `self` in place without
    /// reallocating when capacity suffices. Hot sampling loops
    /// (`RimSampler`, the streaming Algorithm 1) rely on this to stay
    /// allocation-free while tracking a best-so-far permutation.
    fn clone_from(&mut self, source: &Self) {
        self.order.clone_from(&source.order);
    }
}

impl Permutation {
    /// The identity ranking `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            order: (0..n).collect(),
        }
    }

    /// Build from order form (`order[k]` = item at position `k`).
    ///
    /// Returns [`RankingError::NotAPermutation`] when `order` contains a
    /// duplicate or an out-of-range item.
    pub fn from_order(order: Vec<usize>) -> Result<Self> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &item in &order {
            if item >= n || seen[item] {
                return Err(RankingError::NotAPermutation {
                    len: n,
                    offending: Some(item),
                });
            }
            seen[item] = true;
        }
        Ok(Permutation { order })
    }

    /// Build from position form (`position[i]` = position of item `i`).
    pub fn from_positions(positions: &[usize]) -> Result<Self> {
        let n = positions.len();
        let mut order = vec![usize::MAX; n];
        for (item, &pos) in positions.iter().enumerate() {
            if pos >= n || order[pos] != usize::MAX {
                return Err(RankingError::NotAPermutation {
                    len: n,
                    offending: Some(pos),
                });
            }
            order[pos] = item;
        }
        Ok(Permutation { order })
    }

    /// Build without validation. Intended for internal hot paths that have
    /// just produced a provably valid order vector.
    ///
    /// Debug builds still assert validity.
    pub fn from_order_unchecked(order: Vec<usize>) -> Self {
        debug_assert!(
            {
                let mut seen = vec![false; order.len()];
                order.iter().all(|&i| {
                    if i < seen.len() && !seen[i] {
                        seen[i] = true;
                        true
                    } else {
                        false
                    }
                })
            },
            "from_order_unchecked received a non-permutation"
        );
        Permutation { order }
    }

    /// In-place counterpart of [`Permutation::from_order_unchecked`]:
    /// hands the internal buffer to `fill`, which must leave it a valid
    /// order vector. Lets hot sampling paths rebuild a ranking without
    /// reallocating.
    ///
    /// Debug builds assert validity after the closure runs.
    pub fn refill_unchecked(&mut self, fill: impl FnOnce(&mut Vec<usize>)) {
        fill(&mut self.order);
        debug_assert!(
            {
                let mut seen = vec![false; self.order.len()];
                self.order.iter().all(|&i| {
                    if i < seen.len() && !seen[i] {
                        seen[i] = true;
                        true
                    } else {
                        false
                    }
                })
            },
            "refill_unchecked left a non-permutation"
        );
    }

    /// Ranking that sorts items by **descending** score, ties broken by
    /// ascending item index (deterministic). This is the paper's
    /// quality-optimal ranking `π*`.
    pub fn sorted_by_scores_desc(scores: &[f64]) -> Self {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Permutation { order }
    }

    /// Uniformly random permutation (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        Permutation { order }
    }

    /// Number of ranked items.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the ranking contains no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Item occupying position `pos` (0 = top).
    ///
    /// # Panics
    /// Panics when `pos >= len()`.
    #[inline]
    pub fn item_at(&self, pos: usize) -> usize {
        self.order[pos]
    }

    /// Position of `item` — the paper's `σ(i)`. `O(n)`; use
    /// [`Permutation::positions`] when querying many items.
    pub fn position_of(&self, item: usize) -> usize {
        self.order
            .iter()
            .position(|&x| x == item)
            .expect("item not present in permutation")
    }

    /// Order form as a slice: `as_order()[k]` = item at position `k`.
    #[inline]
    pub fn as_order(&self) -> &[usize] {
        &self.order
    }

    /// Position form: `positions()[i]` = position of item `i`.
    pub fn positions(&self) -> Vec<usize> {
        let mut pos = vec![0usize; self.order.len()];
        for (p, &item) in self.order.iter().enumerate() {
            pos[item] = p;
        }
        pos
    }

    /// Group inverse: the permutation mapping items back to positions.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            order: self.positions(),
        }
    }

    /// Composition `self ∘ other`: ranks items by applying `other` first,
    /// then `self` (`result.item_at(k) = self.item_at(other.item_at(k))`
    /// read as function composition on positions).
    ///
    /// Returns an error when lengths differ.
    pub fn compose(&self, other: &Permutation) -> Result<Permutation> {
        if self.len() != other.len() {
            return Err(RankingError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let order = other.order.iter().map(|&i| self.order[i]).collect();
        Ok(Permutation { order })
    }

    /// The relabelling `self` relative to `reference`: position form of
    /// `self` expressed in the item order of `reference`. Distances between
    /// `self` and `reference` equal distances between this output and the
    /// identity — the standard right-invariance reduction.
    pub fn relative_to(&self, reference: &Permutation) -> Result<Vec<usize>> {
        if self.len() != reference.len() {
            return Err(RankingError::LengthMismatch {
                left: self.len(),
                right: reference.len(),
            });
        }
        let pos_self = self.positions();
        Ok(reference.order.iter().map(|&item| pos_self[item]).collect())
    }

    /// Iterate over the items of the top-`k` prefix (`k` clamped to `n`).
    pub fn prefix(&self, k: usize) -> &[usize] {
        &self.order[..k.min(self.order.len())]
    }

    /// Truncate to the top-`k` items, re-labelling is **not** performed:
    /// the result is an incomplete ranking represented by the item slice.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        self.prefix(k).to_vec()
    }

    /// Swap the items at two positions.
    pub fn swap_positions(&mut self, a: usize, b: usize) {
        self.order.swap(a, b);
    }

    /// Consume into the order vector.
    pub fn into_order(self) -> Vec<usize> {
        self.order
    }

    /// Crate-internal mutable access to the order buffer, for decoders
    /// that refill a permutation in place (callers must restore the
    /// permutation invariant before returning).
    pub(crate) fn order_mut(&mut self) -> &mut Vec<usize> {
        &mut self.order
    }

    /// Enumerate all `n!` permutations of `n` items (test/bench helper;
    /// intended for `n <= 9`).
    pub fn enumerate_all(n: usize) -> Vec<Permutation> {
        let mut out = Vec::new();
        let mut cur: Vec<usize> = (0..n).collect();
        heap_permutations(&mut cur, n, &mut out);
        out
    }
}

fn heap_permutations(cur: &mut Vec<usize>, k: usize, out: &mut Vec<Permutation>) {
    if k <= 1 {
        out.push(Permutation { order: cur.clone() });
        return;
    }
    for i in 0..k {
        heap_permutations(cur, k - 1, out);
        if k.is_multiple_of(2) {
            cur.swap(i, k - 1);
        } else {
            cur.swap(0, k - 1);
        }
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, item) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_maps_positions_to_items() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.item_at(i), i);
            assert_eq!(p.position_of(i), i);
        }
    }

    #[test]
    fn from_order_rejects_duplicates() {
        assert!(matches!(
            Permutation::from_order(vec![0, 1, 1]),
            Err(RankingError::NotAPermutation {
                offending: Some(1),
                ..
            })
        ));
    }

    #[test]
    fn from_order_rejects_out_of_range() {
        assert!(Permutation::from_order(vec![0, 3]).is_err());
    }

    #[test]
    fn from_positions_round_trips() {
        let p = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        let q = Permutation::from_positions(&p.positions()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn inverse_of_inverse_is_identity_map() {
        let p = Permutation::from_order(vec![3, 1, 0, 2]).unwrap();
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn compose_with_inverse_yields_identity() {
        let p = Permutation::from_order(vec![3, 1, 0, 2]).unwrap();
        let id = p.compose(&p.inverse()).unwrap();
        assert_eq!(id, Permutation::identity(4));
    }

    #[test]
    fn compose_length_mismatch_errors() {
        let p = Permutation::identity(3);
        let q = Permutation::identity(4);
        assert!(matches!(
            p.compose(&q),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn sorted_by_scores_desc_orders_by_score() {
        let p = Permutation::sorted_by_scores_desc(&[0.1, 0.9, 0.5]);
        assert_eq!(p.as_order(), &[1, 2, 0]);
    }

    #[test]
    fn sorted_by_scores_breaks_ties_by_index() {
        let p = Permutation::sorted_by_scores_desc(&[0.5, 0.5, 0.9]);
        assert_eq!(p.as_order(), &[2, 0, 1]);
    }

    #[test]
    fn relative_to_self_is_identity() {
        let p = Permutation::from_order(vec![2, 0, 1]).unwrap();
        assert_eq!(p.relative_to(&p).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn prefix_clamps() {
        let p = Permutation::identity(3);
        assert_eq!(p.prefix(10), &[0, 1, 2]);
        assert_eq!(p.prefix(2), &[0, 1]);
    }

    #[test]
    fn random_is_valid_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 0..20 {
            let p = Permutation::random(n, &mut rng);
            let mut sorted = p.as_order().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn enumerate_all_has_factorial_size() {
        assert_eq!(Permutation::enumerate_all(0).len(), 1);
        assert_eq!(Permutation::enumerate_all(1).len(), 1);
        assert_eq!(Permutation::enumerate_all(4).len(), 24);
        // all distinct
        let all = Permutation::enumerate_all(4);
        let set: std::collections::HashSet<_> = all.iter().map(|p| p.as_order().to_vec()).collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn display_formats_order() {
        let p = Permutation::from_order(vec![1, 0]).unwrap();
        assert_eq!(format!("{p}"), "[1 0]");
    }
}
