//! Ranking-quality measures (paper Section III-D): CG, DCG, IDCG, NDCG.
//!
//! The paper discounts the gain of the item at (1-based) rank `i` by
//! `1 / log(1 + i)`. The logarithm base cancels in NDCG; we expose it
//! anyway through [`Discount`] because DCG values themselves appear in
//! tests and benches. The default matches the common IR convention
//! (`log₂`), which is also what the paper's reference implementation uses.

use crate::{Permutation, RankingError, Result};

/// Discount function applied at 1-based rank `i`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Discount {
    /// `1 / log₂(1 + i)` — the standard NDCG discount (default).
    #[default]
    Log2,
    /// `1 / ln(1 + i)` — natural-log variant (identical NDCG).
    NaturalLog,
    /// No discount: plain cumulative gain.
    None,
}

impl Discount {
    /// Discount factor at 1-based rank `i ≥ 1`.
    #[inline]
    pub fn at(self, i: usize) -> f64 {
        debug_assert!(i >= 1);
        match self {
            Discount::Log2 => 1.0 / ((1 + i) as f64).log2(),
            Discount::NaturalLog => 1.0 / ((1 + i) as f64).ln(),
            Discount::None => 1.0,
        }
    }

    /// Materialized discount factors for ranks `1..=n`:
    /// `table(n)[i] == at(i + 1)`, bit for bit. Hot evaluation loops
    /// (the criterion kernels in `fair_mallows`) pay the transcendental
    /// log once per rank call instead of once per element per sample.
    pub fn table(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.at(i + 1)).collect()
    }
}

/// Cumulative gain of the top-`k` prefix: `Σ s(π(i))`.
pub fn cumulative_gain(pi: &Permutation, scores: &[f64], k: usize) -> Result<f64> {
    check(pi, scores)?;
    Ok(pi.prefix(k).iter().map(|&item| scores[item]).sum())
}

/// Discounted cumulative gain of the top-`k` prefix with the given
/// discount: `Σ_{i=1..k} s(π(i)) / log(1 + i)`.
pub fn dcg_at(pi: &Permutation, scores: &[f64], k: usize, discount: Discount) -> Result<f64> {
    check(pi, scores)?;
    Ok(pi
        .prefix(k)
        .iter()
        .enumerate()
        .map(|(idx, &item)| scores[item] * discount.at(idx + 1))
        .sum())
}

/// DCG of the full ranking with the default (`log₂`) discount.
pub fn dcg(pi: &Permutation, scores: &[f64]) -> Result<f64> {
    dcg_at(pi, scores, pi.len(), Discount::Log2)
}

/// Ideal DCG: DCG of the score-descending ranking `π*` over the same
/// items, truncated at `k`.
pub fn idcg_at(scores: &[f64], k: usize, discount: Discount) -> f64 {
    let ideal = Permutation::sorted_by_scores_desc(scores);
    // `ideal` is valid by construction, scores length matches.
    dcg_at(&ideal, scores, k, discount).expect("ideal ranking is consistent")
}

/// IDCG of the full list with the default discount.
pub fn idcg(scores: &[f64]) -> f64 {
    idcg_at(scores, scores.len(), Discount::Log2)
}

/// Normalized DCG of the top-`k` prefix: `DCG@k / IDCG@k`.
///
/// When the ideal DCG is zero (all-zero scores) the ranking is trivially
/// optimal and NDCG is defined as 1.
pub fn ndcg_at(pi: &Permutation, scores: &[f64], k: usize, discount: Discount) -> Result<f64> {
    let d = dcg_at(pi, scores, k, discount)?;
    let ideal = idcg_at(scores, k, discount);
    if ideal == 0.0 {
        return Ok(1.0);
    }
    Ok(d / ideal)
}

/// NDCG of the full ranking with the default discount.
///
/// ```
/// use ranking_core::{Permutation, quality::ndcg};
/// let scores = [3.0, 2.0, 1.0];
/// let best = Permutation::identity(3);
/// assert!((ndcg(&best, &scores).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn ndcg(pi: &Permutation, scores: &[f64]) -> Result<f64> {
    ndcg_at(pi, scores, pi.len(), Discount::Log2)
}

fn check(pi: &Permutation, scores: &[f64]) -> Result<()> {
    if pi.len() != scores.len() {
        return Err(RankingError::LengthMismatch {
            left: pi.len(),
            right: scores.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discount_at_rank_one() {
        assert!((Discount::Log2.at(1) - 1.0).abs() < 1e-12);
        assert!((Discount::None.at(7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discount_table_is_bit_identical_to_pointwise() {
        for d in [Discount::Log2, Discount::NaturalLog, Discount::None] {
            let table = d.table(200);
            assert_eq!(table.len(), 200);
            for (i, &v) in table.iter().enumerate() {
                assert_eq!(v.to_bits(), d.at(i + 1).to_bits());
            }
        }
        assert!(Discount::Log2.table(0).is_empty());
    }

    #[test]
    fn cg_sums_prefix_scores() {
        let pi = Permutation::from_order(vec![2, 0, 1]).unwrap();
        let s = [1.0, 2.0, 4.0];
        assert!((cumulative_gain(&pi, &s, 2).unwrap() - 5.0).abs() < 1e-12);
        assert!((cumulative_gain(&pi, &s, 3).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn dcg_known_value() {
        // scores in ranked order: 3, 2 → 3/log2(2) + 2/log2(3)
        let pi = Permutation::identity(2);
        let s = [3.0, 2.0];
        let expect = 3.0 / 1.0 + 2.0 / 3f64.log2();
        assert!((dcg(&pi, &s).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn ndcg_of_ideal_is_one() {
        let s = [0.9, 0.5, 0.1, 0.7];
        let ideal = Permutation::sorted_by_scores_desc(&s);
        assert!((ndcg(&ideal, &s).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_of_worst_is_below_one() {
        let s = [3.0, 2.0, 1.0];
        let worst = Permutation::from_order(vec![2, 1, 0]).unwrap();
        let v = ndcg(&worst, &s).unwrap();
        assert!(v < 1.0 && v > 0.0);
    }

    #[test]
    fn ndcg_in_unit_interval_for_positive_scores() {
        let s = [0.3, 0.8, 0.2, 0.9, 0.4];
        for p in Permutation::enumerate_all(5) {
            let v = ndcg(&p, &s).unwrap();
            assert!((0.0..=1.0 + 1e-12).contains(&v), "ndcg {v}");
        }
    }

    #[test]
    fn ndcg_base_invariance() {
        let s = [0.3, 0.8, 0.2, 0.9];
        let p = Permutation::from_order(vec![1, 0, 3, 2]).unwrap();
        let a = ndcg_at(&p, &s, 4, Discount::Log2).unwrap();
        let b = ndcg_at(&p, &s, 4, Discount::NaturalLog).unwrap();
        assert!((a - b).abs() < 1e-12, "NDCG must be log-base invariant");
    }

    #[test]
    fn ndcg_all_zero_scores_is_one() {
        let s = [0.0, 0.0, 0.0];
        let p = Permutation::from_order(vec![2, 1, 0]).unwrap();
        assert!((ndcg(&p, &s).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dcg_length_mismatch_errors() {
        let p = Permutation::identity(3);
        assert!(dcg(&p, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn ndcg_at_k_only_considers_prefix() {
        let s = [3.0, 2.0, 1.0];
        // top-1 is already ideal even though the tail is reversed
        let p = Permutation::from_order(vec![0, 2, 1]).unwrap();
        assert!((ndcg_at(&p, &s, 1, Discount::Log2).unwrap() - 1.0).abs() < 1e-12);
        assert!(ndcg_at(&p, &s, 3, Discount::Log2).unwrap() < 1.0);
    }
}
