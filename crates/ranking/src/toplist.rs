//! Incomplete (top-`k`) rankings — the paper's `S_{≤d}`.
//!
//! Shortlists, search-result pages and committee selections are
//! *top-k lists*: an ordered subset of `k` of the `n` items. Comparing
//! two such lists needs care because an item may appear in one list
//! only; this module implements the standard measures of Fagin, Kumar &
//! Sivakumar ("Comparing top k lists", SODA'03):
//!
//! * [`TopKList::kendall_with_penalty`] — `K^{(p)}`: Kendall tau
//!   generalized with an optimistic–neutral penalty `p ∈ [0, ½]` for
//!   pairs whose relative order is unknowable;
//! * [`TopKList::footrule_with_location`] — `F^{(ℓ)}`: Spearman's
//!   footrule with missing items placed at a virtual location `ℓ`;
//! * [`TopKList::overlap`] / [`TopKList::jaccard`] — set agreement.
//!
//! When both lists rank the whole universe (`k = n`), `K^{(p)}` equals
//! the ordinary Kendall tau distance and `F^{(ℓ)}` the footrule
//! distance, for every `p` and `ℓ` — the tests pin this down.

use crate::{Permutation, RankingError, Result};

/// An ordered list of `k` distinct items from a universe `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopKList {
    items: Vec<usize>,
    universe: usize,
}

impl TopKList {
    /// Build from ranked items (best first) over a universe of size
    /// `universe`. Errors on duplicates or out-of-range items.
    pub fn new(items: Vec<usize>, universe: usize) -> Result<Self> {
        let mut seen = vec![false; universe];
        for &item in &items {
            if item >= universe || seen[item] {
                return Err(RankingError::NotAPermutation {
                    len: universe,
                    offending: Some(item),
                });
            }
            seen[item] = true;
        }
        Ok(TopKList { items, universe })
    }

    /// The top-`k` prefix of a complete ranking.
    pub fn from_permutation(pi: &Permutation, k: usize) -> Self {
        TopKList {
            items: pi.prefix(k).to_vec(),
            universe: pi.len(),
        }
    }

    /// Number of ranked items `k`.
    pub fn k(&self) -> usize {
        self.items.len()
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// True when no items are ranked.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Ranked items, best first.
    pub fn items(&self) -> &[usize] {
        &self.items
    }

    /// 0-based position of `item`, or `None` when unranked.
    pub fn position_of(&self, item: usize) -> Option<usize> {
        self.items.iter().position(|&i| i == item)
    }

    /// Does the list contain `item`?
    pub fn contains(&self, item: usize) -> bool {
        self.position_of(item).is_some()
    }

    /// Number of items present in both lists.
    pub fn overlap(&self, other: &TopKList) -> usize {
        self.items.iter().filter(|&&i| other.contains(i)).count()
    }

    /// Jaccard similarity of the two item sets (`1` for identical sets,
    /// `0` for disjoint; empty ∪ empty is defined as `1`).
    pub fn jaccard(&self, other: &TopKList) -> f64 {
        let inter = self.overlap(other);
        let union = self.k() + other.k() - inter;
        if union == 0 {
            return 1.0;
        }
        inter as f64 / union as f64
    }

    /// `K^{(p)}` — Kendall tau with penalty parameter `p ∈ [0, ½]`
    /// (Fagin et al., Def. 3.1). Pairs `{i, j}` over the union of the
    /// two lists contribute:
    ///
    /// 1. both ranked in both lists: `1` if the orders disagree;
    /// 2. both ranked in one list, exactly one ranked in the other:
    ///    `1` iff the doubly-ranked list contradicts the implied order
    ///    (the unranked item sits below everything ranked);
    /// 3. `i` only in one list, `j` only in the other: `1` always;
    /// 4. both ranked in one list, neither in the other: `p` (their
    ///    relative order in the second list is unknowable).
    ///
    /// Errors when the universes differ or `p ∉ [0, ½]`.
    pub fn kendall_with_penalty(&self, other: &TopKList, p: f64) -> Result<f64> {
        if self.universe != other.universe {
            return Err(RankingError::LengthMismatch {
                left: self.universe,
                right: other.universe,
            });
        }
        if !(0.0..=0.5).contains(&p) {
            return Err(RankingError::NotAPermutation {
                len: 0,
                offending: None,
            });
        }
        let union: Vec<usize> = self.union_items(other);
        let mut total = 0.0;
        for (a, &i) in union.iter().enumerate() {
            for &j in &union[a + 1..] {
                let pi = self.position_of(i);
                let pj = self.position_of(j);
                let qi = other.position_of(i);
                let qj = other.position_of(j);
                total += match ((pi, pj), (qi, qj)) {
                    // case 1: ranked in both
                    ((Some(a1), Some(b1)), (Some(a2), Some(b2))) => {
                        if (a1 < b1) == (a2 < b2) {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    // case 4: both in self, neither in other
                    ((Some(_), Some(_)), (None, None)) => p,
                    ((None, None), (Some(_), Some(_))) => p,
                    // case 2: both in one, one of them in the other
                    ((Some(a1), Some(b1)), (Some(_), None)) => {
                        if a1 < b1 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    ((Some(a1), Some(b1)), (None, Some(_))) => {
                        if b1 < a1 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    ((Some(_), None), (Some(a2), Some(b2))) => {
                        if a2 < b2 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    ((None, Some(_)), (Some(a2), Some(b2))) => {
                        if b2 < a2 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    // case 3: i in one list only, j in the other only
                    ((Some(_), None), (None, Some(_))) => 1.0,
                    ((None, Some(_)), (Some(_), None)) => 1.0,
                    // unreachable: every union member is ranked in at
                    // least one list
                    ((None, None), _)
                    | (_, (None, None))
                    | ((Some(_), None), (Some(_), None))
                    | ((None, Some(_)), (None, Some(_))) => {
                        debug_assert!(false, "union item unranked in both lists");
                        0.0
                    }
                };
            }
        }
        Ok(total)
    }

    /// `F^{(ℓ)}` — induced footrule: every unranked item is assigned the
    /// virtual (0-based) location `ℓ` and the footrule distance is taken
    /// over the union. `ℓ = k` (one past the end) is the conventional
    /// choice for equal-length lists.
    ///
    /// Errors when the universes differ.
    pub fn footrule_with_location(&self, other: &TopKList, l: f64) -> Result<f64> {
        if self.universe != other.universe {
            return Err(RankingError::LengthMismatch {
                left: self.universe,
                right: other.universe,
            });
        }
        Ok(self
            .union_items(other)
            .into_iter()
            .map(|i| {
                let a = self.position_of(i).map_or(l, |p| p as f64);
                let b = other.position_of(i).map_or(l, |p| p as f64);
                (a - b).abs()
            })
            .sum())
    }

    /// Complete to a full permutation: unranked items are appended in
    /// ascending item order (the deterministic tail used when a
    /// downstream consumer needs `S_n`).
    pub fn complete(&self) -> Permutation {
        let mut seen = vec![false; self.universe];
        for &i in &self.items {
            seen[i] = true;
        }
        let mut order = self.items.clone();
        order.extend((0..self.universe).filter(|&i| !seen[i]));
        Permutation::from_order_unchecked(order)
    }

    fn union_items(&self, other: &TopKList) -> Vec<usize> {
        let mut union = self.items.clone();
        union.extend(other.items.iter().copied().filter(|&i| !self.contains(i)));
        union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance;

    fn list(items: &[usize], n: usize) -> TopKList {
        TopKList::new(items.to_vec(), n).unwrap()
    }

    #[test]
    fn new_rejects_duplicates_and_out_of_range() {
        assert!(TopKList::new(vec![0, 0], 3).is_err());
        assert!(TopKList::new(vec![5], 3).is_err());
        assert!(TopKList::new(vec![], 0).is_ok());
    }

    #[test]
    fn from_permutation_takes_prefix() {
        let pi = Permutation::from_order(vec![3, 1, 0, 2]).unwrap();
        let t = TopKList::from_permutation(&pi, 2);
        assert_eq!(t.items(), &[3, 1]);
        assert_eq!(t.universe(), 4);
    }

    #[test]
    fn overlap_and_jaccard() {
        let a = list(&[0, 1, 2], 6);
        let b = list(&[2, 3, 4], 6);
        assert_eq!(a.overlap(&b), 1);
        assert!((a.jaccard(&b) - 0.2).abs() < 1e-12);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
        let empty = list(&[], 6);
        assert!((empty.jaccard(&empty) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_identical_lists_is_zero() {
        let a = list(&[4, 2, 0], 5);
        assert_eq!(a.kendall_with_penalty(&a, 0.5).unwrap(), 0.0);
    }

    #[test]
    fn kendall_full_lists_match_permutation_distance() {
        let p1 = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        let p2 = Permutation::from_order(vec![0, 1, 2, 3]).unwrap();
        let t1 = TopKList::from_permutation(&p1, 4);
        let t2 = TopKList::from_permutation(&p2, 4);
        let expect = distance::kendall_tau(&p1, &p2).unwrap() as f64;
        for p in [0.0, 0.25, 0.5] {
            assert_eq!(t1.kendall_with_penalty(&t2, p).unwrap(), expect);
        }
    }

    #[test]
    fn kendall_disjoint_lists_case3_and_case4() {
        // τ1 = [0,1], τ2 = [2,3] over n=4.
        // pairs: {0,1} case 4 → p; {2,3} case 4 → p;
        // {0,2},{0,3},{1,2},{1,3} case 3 → 1 each.
        let a = list(&[0, 1], 4);
        let b = list(&[2, 3], 4);
        for p in [0.0, 0.5] {
            let d = a.kendall_with_penalty(&b, p).unwrap();
            assert!((d - (4.0 + 2.0 * p)).abs() < 1e-12, "p={p}: {d}");
        }
    }

    #[test]
    fn kendall_case2_consistency() {
        // τ1 = [0,1], τ2 = [0,2] over n=3.
        // {0,1}: both in τ1, only 0 in τ2; τ1 has 0 ahead → 0.
        // {0,2}: both in τ2, only 0 in τ1; τ2 has 0 ahead → 0.
        // {1,2}: 1 only in τ1, 2 only in τ2 → 1.
        let a = list(&[0, 1], 3);
        let b = list(&[0, 2], 3);
        assert_eq!(a.kendall_with_penalty(&b, 0.5).unwrap(), 1.0);
        // flipped head order makes case-2 pairs discordant:
        // τ3 = [1,0]: {0,1} both in τ3, only 0 in τ2, τ3 has 1 ahead → 1.
        let c = list(&[1, 0], 3);
        assert_eq!(c.kendall_with_penalty(&b, 0.5).unwrap(), 2.0);
    }

    #[test]
    fn kendall_is_symmetric() {
        let a = list(&[0, 3, 1], 6);
        let b = list(&[5, 3, 2], 6);
        for p in [0.0, 0.3, 0.5] {
            assert_eq!(
                a.kendall_with_penalty(&b, p).unwrap(),
                b.kendall_with_penalty(&a, p).unwrap()
            );
        }
    }

    #[test]
    fn kendall_monotone_in_penalty() {
        let a = list(&[0, 1, 2], 8);
        let b = list(&[0, 5, 6], 8);
        let d0 = a.kendall_with_penalty(&b, 0.0).unwrap();
        let d5 = a.kendall_with_penalty(&b, 0.5).unwrap();
        assert!(d0 <= d5);
    }

    #[test]
    fn kendall_rejects_bad_input() {
        let a = list(&[0], 3);
        let b = list(&[0], 4);
        assert!(a.kendall_with_penalty(&b, 0.0).is_err());
        let c = list(&[1], 3);
        assert!(a.kendall_with_penalty(&c, 0.6).is_err());
    }

    #[test]
    fn footrule_full_lists_match_permutation_distance() {
        let p1 = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        let p2 = Permutation::from_order(vec![1, 2, 0, 3]).unwrap();
        let t1 = TopKList::from_permutation(&p1, 4);
        let t2 = TopKList::from_permutation(&p2, 4);
        let expect = distance::footrule(&p1, &p2).unwrap() as f64;
        assert_eq!(t1.footrule_with_location(&t2, 99.0).unwrap(), expect);
    }

    #[test]
    fn footrule_known_value_with_location() {
        // τ1 = [0,1], τ2 = [1,0] over n=3, ℓ = 2:
        // item 0: |0−1| = 1; item 1: |1−0| = 1 → 2.
        let a = list(&[0, 1], 3);
        let b = list(&[1, 0], 3);
        assert_eq!(a.footrule_with_location(&b, 2.0).unwrap(), 2.0);
        // disjoint singletons: each contributes |0 − ℓ| twice.
        let c = list(&[0], 3);
        let d = list(&[2], 3);
        assert_eq!(c.footrule_with_location(&d, 1.0).unwrap(), 2.0);
    }

    #[test]
    fn footrule_symmetric_and_zero_on_identity() {
        let a = list(&[3, 0], 5);
        let b = list(&[0, 4], 5);
        assert_eq!(a.footrule_with_location(&a, 2.0).unwrap(), 0.0);
        assert_eq!(
            a.footrule_with_location(&b, 2.0).unwrap(),
            b.footrule_with_location(&a, 2.0).unwrap()
        );
    }

    #[test]
    fn complete_appends_missing_ascending() {
        let t = list(&[3, 1], 5);
        assert_eq!(t.complete().as_order(), &[3, 1, 0, 2, 4]);
        // completing a full list is the identity operation
        let full = list(&[2, 1, 0], 3);
        assert_eq!(full.complete().as_order(), &[2, 1, 0]);
    }
}
