//! Property-based tests for ranking-core invariants.

use proptest::prelude::*;
use ranking_core::{distance, quality, Permutation};

/// Strategy: a random permutation of `n` items encoded as a shuffled index
/// vector (via sorting random keys, which is uniform enough for testing).
fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    prop::collection::vec(any::<u64>(), n).prop_map(|keys| {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by_key(|&i| keys[i]);
        Permutation::from_order(idx).expect("shuffled indices form a permutation")
    })
}

proptest! {
    #[test]
    fn kendall_tau_metric_axioms(a in permutation(10), b in permutation(10), c in permutation(10)) {
        let dab = distance::kendall_tau(&a, &b).unwrap();
        let dba = distance::kendall_tau(&b, &a).unwrap();
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(distance::kendall_tau(&a, &a).unwrap(), 0);
        let dac = distance::kendall_tau(&a, &c).unwrap();
        let dcb = distance::kendall_tau(&c, &b).unwrap();
        prop_assert!(dab <= dac + dcb, "triangle inequality");
        prop_assert!(dab <= distance::max_kendall_tau(10));
    }

    #[test]
    fn fast_kendall_matches_naive(a in permutation(14), b in permutation(14)) {
        prop_assert_eq!(
            distance::kendall_tau(&a, &b).unwrap(),
            distance::kendall_tau_naive(&a, &b).unwrap()
        );
    }

    #[test]
    fn footrule_metric_axioms(a in permutation(9), b in permutation(9), c in permutation(9)) {
        let dab = distance::footrule(&a, &b).unwrap();
        prop_assert_eq!(dab, distance::footrule(&b, &a).unwrap());
        prop_assert_eq!(distance::footrule(&a, &a).unwrap(), 0);
        prop_assert!(dab <= distance::footrule(&a, &c).unwrap() + distance::footrule(&c, &b).unwrap());
    }

    #[test]
    fn diaconis_graham(a in permutation(12), b in permutation(12)) {
        let kt = distance::kendall_tau(&a, &b).unwrap();
        let fr = distance::footrule(&a, &b).unwrap();
        prop_assert!(kt <= fr);
        prop_assert!(fr <= 2 * kt);
    }

    #[test]
    fn right_invariance(a in permutation(8), b in permutation(8), r in permutation(8)) {
        // relabel items of both rankings by the same bijection r
        let ar = r.compose(&a).unwrap();
        let br = r.compose(&b).unwrap();
        prop_assert_eq!(
            distance::kendall_tau(&a, &b).unwrap(),
            distance::kendall_tau(&ar, &br).unwrap()
        );
        prop_assert_eq!(
            distance::cayley(&a, &b).unwrap(),
            distance::cayley(&ar, &br).unwrap()
        );
        prop_assert_eq!(
            distance::ulam(&a, &b).unwrap(),
            distance::ulam(&ar, &br).unwrap()
        );
    }

    #[test]
    fn inverse_round_trip(a in permutation(15)) {
        prop_assert_eq!(a.inverse().inverse(), a.clone());
        let id = a.compose(&a.inverse()).unwrap();
        prop_assert_eq!(id, Permutation::identity(15));
    }

    #[test]
    fn positions_round_trip(a in permutation(15)) {
        let rebuilt = Permutation::from_positions(&a.positions()).unwrap();
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn ndcg_bounded(a in permutation(10), scores in prop::collection::vec(0.0f64..10.0, 10)) {
        let v = quality::ndcg(&a, &scores).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
    }

    #[test]
    fn ideal_ranking_maximizes_dcg(a in permutation(8), scores in prop::collection::vec(0.0f64..10.0, 8)) {
        let ideal = Permutation::sorted_by_scores_desc(&scores);
        let da = quality::dcg(&a, &scores).unwrap();
        let di = quality::dcg(&ideal, &scores).unwrap();
        prop_assert!(da <= di + 1e-9);
    }

    #[test]
    fn hamming_vs_cayley(a in permutation(10), b in permutation(10)) {
        // cayley ≤ hamming ≤ 2·cayley? Actually hamming ≤ 2·cayley and
        // cayley ≤ hamming − 1 when hamming > 0; we assert the safe bounds.
        let h = distance::hamming(&a, &b).unwrap();
        let c = distance::cayley(&a, &b).unwrap();
        prop_assert!(c <= h);
        prop_assert!(h <= 2 * c);
    }
}
