//! Pooled keep-alive HTTP client for one backend.
//!
//! The router holds one [`BackendClient`] per configured backend. Each
//! client keeps a small pool of keep-alive [`TcpStream`]s; a request
//! checks a connection out, writes a `content-length`-framed request
//! into a caller-owned scratch buffer (the reactor's zero-alloc
//! discipline: buffers are reused across requests, the warm path
//! allocates only when a response body outgrows its scratch), reads
//! exactly one framed response, and returns the connection to the pool
//! unless the backend asked to close.
//!
//! Connections are retired after [`POOL_CONN_REQUESTS`] uses —
//! deliberately below the backend's `--max-conn-requests` default
//! (1024) so it is the router, not the backend, that decides where a
//! connection ends, and a pooled stream is never stranded one write
//! past the backend's limit.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Requests served per pooled connection before it is retired.
const POOL_CONN_REQUESTS: usize = 512;

/// Idle connections kept per backend.
const POOL_IDLE_MAX: usize = 32;

/// A parsed backend response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    pub content_type: String,
    /// The backend's `x-trace-id`, re-exported to clients as
    /// `x-backend-trace-id` so traces join across tiers.
    pub trace_id: Option<String>,
    /// `Retry-After` seconds on a shed 503.
    pub retry_after: Option<u64>,
    /// Whether the backend asked to close the connection.
    keep_alive: bool,
}

struct PooledConn {
    stream: TcpStream,
    served: usize,
}

/// Keep-alive client for a single backend address.
pub struct BackendClient {
    addr: String,
    idle: Mutex<Vec<PooledConn>>,
    /// Requests currently inside [`BackendClient::request`].
    inflight: AtomicU64,
    /// Requests ever issued to this backend.
    requests: AtomicU64,
    /// Microsecond timestamp (router epoch) until which this backend
    /// is considered shedding (a 503 carried `Retry-After`).
    shed_until_us: AtomicU64,
}

impl BackendClient {
    pub fn new(addr: String) -> BackendClient {
        BackendClient {
            addr,
            idle: Mutex::new(Vec::new()),
            inflight: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            shed_until_us: AtomicU64::new(0),
        }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Record a `Retry-After: secs` shed observed at `now_us`.
    pub fn note_shed(&self, now_us: u64, secs: u64) {
        self.shed_until_us
            .store(now_us + secs * 1_000_000, Ordering::Relaxed);
    }

    pub fn is_shedding(&self, now_us: u64) -> bool {
        self.shed_until_us.load(Ordering::Relaxed) > now_us
    }

    /// Drop every pooled connection (backend left the ring).
    pub fn drop_pool(&self) {
        crate::lock_recover(&self.idle).clear();
    }

    /// Issue one request over a pooled connection. `scratch` is the
    /// caller's reusable read buffer. A send on a previously pooled
    /// stream that fails (the backend idled it out or died between
    /// requests) is retried once on a fresh connection; errors on a
    /// fresh connection are real backend failures and propagate.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        timeout: Duration,
        scratch: &mut Vec<u8>,
    ) -> std::io::Result<Response> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.request_inner(method, path, body, timeout, scratch);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn request_inner(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        timeout: Duration,
        scratch: &mut Vec<u8>,
    ) -> std::io::Result<Response> {
        loop {
            let (mut conn, reused) = self.checkout()?;
            conn.stream.set_read_timeout(Some(timeout))?;
            match exchange(&mut conn, method, path, body, scratch) {
                Ok(response) => {
                    if response.keep_alive && conn.served < POOL_CONN_REQUESTS {
                        self.check_in(conn);
                    }
                    return Ok(response);
                }
                // a reused stream may have been closed by the backend
                // while idle — retry exactly once on a fresh dial
                Err(_) if reused => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn checkout(&self) -> std::io::Result<(PooledConn, bool)> {
        if let Some(conn) = crate::lock_recover(&self.idle).pop() {
            return Ok((conn, true));
        }
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        Ok((PooledConn { stream, served: 0 }, false))
    }

    fn check_in(&self, conn: PooledConn) {
        let mut idle = crate::lock_recover(&self.idle);
        if idle.len() < POOL_IDLE_MAX {
            idle.push(conn);
        }
    }
}

/// Write one framed request and read one framed response.
fn exchange(
    conn: &mut PooledConn,
    method: &str,
    path: &str,
    body: &[u8],
    scratch: &mut Vec<u8>,
) -> std::io::Result<Response> {
    scratch.clear();
    scratch.extend_from_slice(method.as_bytes());
    scratch.push(b' ');
    scratch.extend_from_slice(path.as_bytes());
    scratch.extend_from_slice(b" HTTP/1.1\r\nhost: fairrank-router\r\ncontent-length: ");
    let mut digits = [0u8; 20];
    scratch.extend_from_slice(format_usize(body.len(), &mut digits));
    scratch.extend_from_slice(b"\r\n\r\n");
    scratch.extend_from_slice(body);
    conn.stream.write_all(scratch)?;
    conn.served += 1;
    read_response(&mut conn.stream, scratch)
}

/// Format `value` into `digits` without allocating.
fn format_usize(value: usize, digits: &mut [u8; 20]) -> &[u8] {
    let mut index = digits.len();
    let mut value = value;
    loop {
        index -= 1;
        digits[index] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    &digits[index..]
}

/// Read exactly one `content-length`-framed response (the engine never
/// chunks) into `scratch` and parse status line plus the headers the
/// router cares about.
fn read_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> std::io::Result<Response> {
    scratch.clear();
    let head_end = loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed mid-response",
            ));
        }
        scratch.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&scratch[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 head"))?;
    let status: u16 = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = None;
    let mut content_type = String::new();
    let mut trace_id = None;
    let mut retry_after = None;
    let mut keep_alive = true;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse::<usize>().ok();
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = value.to_string();
        } else if name.eq_ignore_ascii_case("x-trace-id") {
            trace_id = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.parse::<u64>().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let content_length = content_length.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
    })?;
    while scratch.len() < head_end + content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed mid-body",
            ));
        }
        scratch.extend_from_slice(&chunk[..n]);
    }
    Ok(Response {
        status,
        body: scratch[head_end..head_end + content_length].to_vec(),
        content_type,
        trace_id,
        retry_after,
        keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_usize_renders_decimal() {
        let mut digits = [0u8; 20];
        assert_eq!(format_usize(0, &mut digits), b"0");
        let mut digits = [0u8; 20];
        assert_eq!(format_usize(10_245, &mut digits), b"10245");
    }

    #[test]
    fn shed_window_expires() {
        let client = BackendClient::new("127.0.0.1:1".to_string());
        assert!(!client.is_shedding(0));
        client.note_shed(1_000, 2);
        assert!(client.is_shedding(5_000));
        assert!(!client.is_shedding(2_002_000));
    }
}
