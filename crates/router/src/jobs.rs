//! Cluster batch-job bookkeeping.
//!
//! The router owns the job-id namespace clients see: a `POST /jobs`
//! is placed on the ring owner of the batch's digest, the backend's
//! own id is remembered, and the response's `"id"` field is rewritten
//! to the router's id. Polls and cancels translate back. The original
//! request body is retained so that when a backend leaves the ring,
//! every non-terminal job it owned is resubmitted verbatim to the
//! key's next owner — deterministic seeds make the re-run
//! byte-identical, so clients polling across the failover observe at
//! most a transient regression of `chunks_done`, never an error.
//!
//! Once a poll sees a terminal state the full status body is cached in
//! the entry and later polls are served from the router, so even
//! losing the whole cluster cannot lose a result that was already
//! observed terminal.

use crate::client::Response;
use crate::{ForwardOutcome, RouterCore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One routed batch job.
#[derive(Clone)]
struct JobEntry {
    /// The original `POST /jobs` body, kept for resubmission.
    body: Arc<Vec<u8>>,
    /// The batch's ring key (`BatchSpec::digest`, or a raw-byte hash
    /// for bodies the engine could not parse — those never get here,
    /// since an unparsable submit is answered 400 by the backend).
    key: u64,
    /// Current owner's address.
    backend: String,
    /// The id the current owner knows this job by.
    backend_id: u64,
    /// Final status body, cached on the first terminal poll.
    terminal_body: Option<Arc<Vec<u8>>>,
    /// Whether the client itself asked for cancellation (`DELETE`).
    /// A `cancelled` status that the client never requested means the
    /// owner drained and swept its queue — the router resubmits those
    /// instead of caching the cancellation as the job's result.
    client_cancelled: bool,
}

/// Router-id → entry map plus the id sequence.
#[derive(Default)]
pub struct JobTable {
    seq: AtomicU64,
    entries: Mutex<HashMap<u64, JobEntry>>,
}

/// Outcome of a job-route request, ready for the HTTP front.
pub struct JobAnswer {
    pub status: u16,
    pub body: Vec<u8>,
    pub backend: Option<String>,
    pub backend_trace: Option<String>,
}

fn error_answer(status: u16, message: &str) -> JobAnswer {
    JobAnswer {
        status,
        body: format!("{{\"error\":\"{message}\"}}").into_bytes(),
        backend: None,
        backend_trace: None,
    }
}

fn no_backends() -> JobAnswer {
    error_answer(503, "no backends ready")
}

/// `POST /jobs`: place the batch on its ring owner, remember the
/// mapping, rewrite the response id.
pub fn submit(core: &RouterCore, body: &[u8], key: u64, scratch: &mut Vec<u8>) -> JobAnswer {
    match core.forward("POST", "/jobs", body, key, scratch) {
        ForwardOutcome::NoBackends => no_backends(),
        ForwardOutcome::Forwarded { backend, response } => {
            if response.status != 202 {
                // 400 and friends pass through untouched — no job was
                // created, so there is nothing to remember
                return passthrough(backend, response);
            }
            let Some(backend_id) = parse_id(&response.body) else {
                return error_answer(502, "backend returned an unparsable job id");
            };
            let router_id = core.jobs.seq.fetch_add(1, Ordering::Relaxed) + 1;
            crate::lock_recover(&core.jobs.entries).insert(
                router_id,
                JobEntry {
                    body: Arc::new(body.to_vec()),
                    key,
                    backend: backend.clone(),
                    backend_id,
                    terminal_body: None,
                    client_cancelled: false,
                },
            );
            JobAnswer {
                status: 202,
                body: rewrite_id(&response.body, router_id),
                backend: Some(backend),
                backend_trace: response.trace_id,
            }
        }
    }
}

/// `GET /jobs/{id}` (`method = "GET"`) or `DELETE /jobs/{id}`: proxy
/// to the job's current owner, relocating the job first if that owner
/// has left the ring (or lost the job, e.g. across a restart).
pub fn poll(core: &RouterCore, id: &str, method: &str, scratch: &mut Vec<u8>) -> JobAnswer {
    let Ok(router_id) = id.parse::<u64>() else {
        return error_answer(404, "no such job");
    };
    if method == "DELETE" {
        if let Some(entry) = crate::lock_recover(&core.jobs.entries).get_mut(&router_id) {
            entry.client_cancelled = true;
        }
    }
    // relocation can race with other polls of the same job; each loop
    // iteration re-reads the entry, and the transition count is
    // bounded by the backend count, so the walk terminates
    for _ in 0..core.backends().len().max(1) + 1 {
        let entry = {
            let entries = crate::lock_recover(&core.jobs.entries);
            match entries.get(&router_id) {
                Some(entry) => entry.clone(),
                None => return error_answer(404, "no such job"),
            }
        };
        if let Some(final_body) = &entry.terminal_body {
            return JobAnswer {
                status: 200,
                body: rewrite_id(final_body, router_id),
                backend: Some(entry.backend.clone()),
                backend_trace: None,
            };
        }
        let Some(client) = core.client(&entry.backend) else {
            return no_backends();
        };
        let path = format!("/jobs/{}", entry.backend_id);
        match client.request(method, &path, b"", core.config.request_timeout, scratch) {
            Ok(response) if response.status == 200 => {
                match terminal_status(&response.body) {
                    // a cancellation the client never asked for is the
                    // owner draining its queue: re-place the job and
                    // poll the new owner instead of surfacing it
                    Some("cancelled") if !entry.client_cancelled => {
                        if !resubmit_one(core, router_id, &entry, scratch) {
                            return no_backends();
                        }
                        continue;
                    }
                    Some(_) => {
                        let mut entries = crate::lock_recover(&core.jobs.entries);
                        if let Some(entry) = entries.get_mut(&router_id) {
                            entry.terminal_body = Some(Arc::new(response.body.clone()));
                        }
                    }
                    None => {}
                }
                return JobAnswer {
                    status: 200,
                    body: rewrite_id(&response.body, router_id),
                    backend: Some(entry.backend),
                    backend_trace: response.trace_id,
                };
            }
            // the owner is up but no longer knows the job (restarted)
            // or is shedding/draining: re-place the job and retry
            Ok(response) if response.status == 404 || response.status == 503 => {
                if !resubmit_one(core, router_id, &entry, scratch) {
                    return no_backends();
                }
            }
            Ok(response) => return passthrough(entry.backend, response),
            Err(_) => {
                // transport failure: evict the owner (which resubmits
                // all of its jobs, this one included) and retry
                core.mark_down(&entry.backend);
                let relocated = {
                    let entries = crate::lock_recover(&core.jobs.entries);
                    entries
                        .get(&router_id)
                        .is_some_and(|e| e.backend != entry.backend || e.terminal_body.is_some())
                };
                if !relocated && !resubmit_one(core, router_id, &entry, scratch) {
                    return no_backends();
                }
            }
        }
    }
    no_backends()
}

fn passthrough(backend: String, response: Response) -> JobAnswer {
    JobAnswer {
        status: response.status,
        body: response.body,
        backend: Some(backend),
        backend_trace: response.trace_id,
    }
}

/// Re-place every non-terminal job owned by `addr` onto its key's
/// current owner. Called (with `addr` already out of the ring) from
/// [`RouterCore::mark_down`]. Failures leave the entry pointing at the
/// dead backend; the next poll retries the relocation.
pub fn resubmit_for(core: &RouterCore, addr: &str) {
    let orphans: Vec<(u64, JobEntry)> = {
        let entries = crate::lock_recover(&core.jobs.entries);
        entries
            .iter()
            .filter(|(_, e)| e.backend == addr && e.terminal_body.is_none())
            .map(|(id, e)| (*id, e.clone()))
            .collect()
    };
    let mut scratch = Vec::new();
    for (router_id, entry) in orphans {
        resubmit_one(core, router_id, &entry, &mut scratch);
    }
}

/// Resubmit a single job to its key's current ring owner and update
/// the table if the entry still points at the stale backend. Returns
/// false when no backend could take the job.
fn resubmit_one(
    core: &RouterCore,
    router_id: u64,
    stale: &JobEntry,
    scratch: &mut Vec<u8>,
) -> bool {
    match core.forward("POST", "/jobs", &stale.body, stale.key, scratch) {
        ForwardOutcome::Forwarded { backend, response } if response.status == 202 => {
            let Some(backend_id) = parse_id(&response.body) else {
                return false;
            };
            let mut entries = crate::lock_recover(&core.jobs.entries);
            if let Some(entry) = entries.get_mut(&router_id) {
                // a concurrent relocation may have won; only overwrite
                // the exact stale placement we observed
                if entry.backend == stale.backend && entry.backend_id == stale.backend_id {
                    entry.backend = backend;
                    entry.backend_id = backend_id;
                    core.stats.resubmissions.fetch_add(1, Ordering::Relaxed);
                }
            }
            true
        }
        _ => false,
    }
}

/// Parse the leading `{"id":N` of a job status body.
fn parse_id(body: &[u8]) -> Option<u64> {
    let rest = body.strip_prefix(b"{\"id\":")?;
    let digits: &[u8] = &rest[..rest.iter().position(|b| !b.is_ascii_digit())?];
    std::str::from_utf8(digits).ok()?.parse().ok()
}

/// Rewrite the leading `{"id":N` to the router's id, leaving the rest
/// of the body untouched (byte-identical results across replicas
/// depend on this being the only rewrite).
fn rewrite_id(body: &[u8], router_id: u64) -> Vec<u8> {
    let Some(rest) = body.strip_prefix(b"{\"id\":") else {
        return body.to_vec();
    };
    let digits_end = rest
        .iter()
        .position(|b| !b.is_ascii_digit())
        .unwrap_or(rest.len());
    let mut out = format!("{{\"id\":{router_id}").into_bytes();
    out.extend_from_slice(&rest[digits_end..]);
    out
}

/// The terminal `"status"` a job body carries, if any.
fn terminal_status(body: &[u8]) -> Option<&'static str> {
    let text = std::str::from_utf8(&body[..body.len().min(128)]).ok()?;
    let status_at = text.find("\"status\":\"")?;
    let value = &text[status_at + "\"status\":\"".len()..];
    ["done", "failed", "cancelled"]
        .into_iter()
        .find(|s| value.starts_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_parse_and_rewrite_round_trip() {
        let body = br#"{"id":17,"status":"queued","chunks_total":3,"chunks_done":0}"#;
        assert_eq!(parse_id(body), Some(17));
        let rewritten = rewrite_id(body, 900);
        assert_eq!(
            rewritten,
            br#"{"id":900,"status":"queued","chunks_total":3,"chunks_done":0}"#
        );
        assert_eq!(parse_id(b"oops"), None);
        assert_eq!(rewrite_id(b"oops", 1), b"oops");
    }

    #[test]
    fn terminal_status_detection() {
        assert_eq!(
            terminal_status(br#"{"id":1,"status":"done","x":1}"#),
            Some("done")
        );
        assert_eq!(
            terminal_status(br#"{"id":1,"status":"failed"}"#),
            Some("failed")
        );
        assert_eq!(
            terminal_status(br#"{"id":1,"status":"cancelled"}"#),
            Some("cancelled")
        );
        assert_eq!(terminal_status(br#"{"id":1,"status":"queued"}"#), None);
        assert_eq!(terminal_status(br#"{"id":1,"status":"running"}"#), None);
        assert_eq!(terminal_status(b"{}"), None);
    }
}
