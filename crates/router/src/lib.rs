//! `fairrank router` — a consistent-hash front for N `fairrank serve`
//! replicas.
//!
//! The router speaks the exact HTTP/JSON protocol the engine serves
//! (`POST /rank|/aggregate|/pipeline|/jobs`, `GET/DELETE /jobs/{id}`,
//! `GET /metrics|/healthz|/readyz`) and shards requests by the same
//! algorithm+input digest the engine's result cache is keyed by
//! ([`fairrank_engine::server::ring_key`]), so each request lands on
//! the replica that already holds its cached result. Responses are
//! forwarded byte-for-byte: a client cannot tell — except for the
//! extra `x-backend`/`x-backend-trace-id` headers — whether it spoke
//! to a replica or to the router.
//!
//! Membership is health-gated: a prober thread hits every backend's
//! `/readyz` on a fixed interval, and a replica that answers anything
//! but 200 (draining, dead, partitioned) leaves the ring. Connection
//! errors evict immediately, without waiting for the next probe. When
//! a replica leaves, every non-terminal batch job the router placed on
//! it is resubmitted to the key's next owner, so `GET /jobs/{id}`
//! keeps answering 200 across replica loss. Full failure semantics
//! are documented in `docs/CLUSTER.md`.

#![forbid(unsafe_code)]

pub mod client;
pub mod jobs;
pub mod metrics;
pub mod ring;
pub mod server;

use client::{BackendClient, Response};
use jobs::JobTable;
use ring::HashRing;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Lock `m`, recovering from poisoning. Every mutex in this crate
/// guards plain data (maps, connection pools) that stays structurally
/// valid even if a holder panicked mid-update, so one panicking
/// request must not turn every later request into a panic too.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_recover`] for read-locking an `RwLock`.
pub(crate) fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_recover`] for write-locking an `RwLock`.
pub(crate) fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Router configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Backend `host:port` addresses. The ring starts empty; backends
    /// join as the prober sees them answer `/readyz` with 200.
    pub backends: Vec<String>,
    /// `/readyz` probe interval.
    pub probe_interval: Duration,
    /// Hedge a slow request to the key's next owner after this long;
    /// `None` disables hedging (the default — requests are idempotent
    /// thanks to deterministic seeds, but hedges still double load).
    pub hedge_after: Option<Duration>,
    /// Per-attempt backend read timeout.
    pub request_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            probe_interval: Duration::from_millis(200),
            hedge_after: None,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// Router-own counters, exported under `fairrank_router_*` in the
/// aggregated `GET /metrics`.
#[derive(Default)]
pub struct RouterStats {
    /// Requests entering [`RouterCore::forward`].
    pub requests: AtomicU64,
    /// Extra owner attempts after a failed or shedding one.
    pub retries: AtomicU64,
    /// Hedge requests launched.
    pub hedges: AtomicU64,
    /// Batch jobs re-placed after their owner left the ring.
    pub resubmissions: AtomicU64,
    /// Ring membership transitions (joins + leaves).
    pub ring_churn: AtomicU64,
    /// Requests answered `503 no backends ready`.
    pub no_backend: AtomicU64,
}

/// Outcome of forwarding one request.
pub enum ForwardOutcome {
    /// A backend answered (any status — 4xx/5xx pass through).
    Forwarded { backend: String, response: Response },
    /// The ring was empty (or every owner died mid-walk).
    NoBackends,
}

/// Shared router state: the ring, one pooled client per backend, the
/// job table and the counters. Everything the HTTP front and the
/// prober thread touch lives here behind an `Arc`.
pub struct RouterCore {
    pub config: RouterConfig,
    backends: Vec<Arc<BackendClient>>,
    ready: Vec<AtomicBool>,
    ring: RwLock<HashRing>,
    pub stats: RouterStats,
    pub(crate) jobs: JobTable,
    epoch: Instant,
}

impl RouterCore {
    pub fn new(config: RouterConfig) -> Arc<RouterCore> {
        let backends = config
            .backends
            .iter()
            .map(|addr| Arc::new(BackendClient::new(addr.clone())))
            .collect::<Vec<_>>();
        let ready = backends.iter().map(|_| AtomicBool::new(false)).collect();
        Arc::new(RouterCore {
            config,
            backends,
            ready,
            ring: RwLock::new(HashRing::default()),
            stats: RouterStats::default(),
            jobs: JobTable::default(),
            epoch: Instant::now(),
        })
    }

    /// Microseconds since router start (the shed-window clock).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub fn backends(&self) -> &[Arc<BackendClient>] {
        &self.backends
    }

    pub fn client(&self, addr: &str) -> Option<&Arc<BackendClient>> {
        self.backends.iter().find(|c| c.addr() == addr)
    }

    /// Backends currently in the ring.
    pub fn ready_count(&self) -> usize {
        read_recover(&self.ring).len()
    }

    /// The failover-ordered owner list for `key` (owner first), as
    /// clients. Snapshot semantics: membership changes during the walk
    /// are handled by per-attempt error handling, not by re-reading.
    fn owners_for(&self, key: u64) -> Vec<Arc<BackendClient>> {
        let ring = read_recover(&self.ring);
        ring.owners(key)
            .into_iter()
            .filter_map(|addr| self.client(addr).cloned())
            .collect()
    }

    /// Rebuild the ring from the currently ready backends.
    fn rebuild_ring(&self) {
        let ready: Vec<&str> = self
            .backends
            .iter()
            .zip(&self.ready)
            .filter(|(_, ready)| ready.load(Ordering::SeqCst))
            .map(|(client, _)| client.addr())
            .collect();
        *write_recover(&self.ring) = HashRing::build(&ready);
    }

    /// A probe saw `addr` answer 200: (re)join the ring.
    fn mark_up(&self, index: usize) {
        if !self.ready[index].swap(true, Ordering::SeqCst) {
            self.stats.ring_churn.fetch_add(1, Ordering::Relaxed);
            self.rebuild_ring();
        }
    }

    /// `addr` failed (connection error or failed probe): leave the
    /// ring immediately, drop its pooled connections, and resubmit the
    /// batch jobs it owned to their keys' next owners.
    pub fn mark_down(&self, addr: &str) {
        let Some(index) = self.backends.iter().position(|c| c.addr() == addr) else {
            return;
        };
        if self.ready[index].swap(false, Ordering::SeqCst) {
            self.stats.ring_churn.fetch_add(1, Ordering::Relaxed);
            self.rebuild_ring();
            self.backends[index].drop_pool();
            jobs::resubmit_for(self, addr);
        }
    }

    /// One probe round: every backend's `/readyz`, one-shot
    /// connections (`connection: close`) so probes never pin a backend
    /// I/O worker the way pooled keep-alive connections would.
    pub fn probe_once(&self) {
        let timeout = self.config.probe_interval.max(Duration::from_millis(50));
        for (index, client) in self.backends.iter().enumerate() {
            if probe_ready(client.addr(), timeout) {
                self.mark_up(index);
            } else if self.ready[index].load(Ordering::SeqCst) {
                self.mark_down(client.addr());
            }
        }
    }

    /// Forward `method path body` to the owner of `key`, walking the
    /// failover sequence on errors and shed 503s. Each distinct owner
    /// is attempted at most once per request (bounded retry); the
    /// walk prefers owners outside their `Retry-After` window but
    /// falls back to shedding ones so a fully shed cluster still gets
    /// the request. An owner that fails at the transport level is
    /// evicted from the ring on the spot.
    pub fn forward(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        key: u64,
        scratch: &mut Vec<u8>,
    ) -> ForwardOutcome {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let owners = self.owners_for(key);
        if owners.is_empty() {
            self.stats.no_backend.fetch_add(1, Ordering::Relaxed);
            return ForwardOutcome::NoBackends;
        }
        let now = self.now_us();
        let (mut ordered, shedding): (Vec<_>, Vec<_>) =
            owners.into_iter().partition(|c| !c.is_shedding(now));
        ordered.extend(shedding);

        let mut last_shed: Option<(String, Response)> = None;
        let mut index = 0;
        let mut attempts = 0u64;
        while index < ordered.len() {
            let primary = Arc::clone(&ordered[index]);
            let partner = match self.config.hedge_after {
                Some(_) if index + 1 < ordered.len() => Some(Arc::clone(&ordered[index + 1])),
                _ => None,
            };
            let consumed = 1 + usize::from(partner.is_some());
            if attempts > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
            }
            attempts += 1;
            let results = match self.config.hedge_after {
                Some(hedge_after) => {
                    self.attempt_hedged(primary, partner, method, path, body, hedge_after)
                }
                None => {
                    let result =
                        primary.request(method, path, body, self.config.request_timeout, scratch);
                    vec![(primary, result)]
                }
            };
            for (backend, result) in results {
                match result {
                    Ok(response) if response.status == 503 => {
                        if let Some(secs) = response.retry_after {
                            backend.note_shed(self.now_us(), secs);
                        }
                        last_shed = Some((backend.addr().to_string(), response));
                    }
                    Ok(response) => {
                        return ForwardOutcome::Forwarded {
                            backend: backend.addr().to_string(),
                            response,
                        }
                    }
                    Err(_) => self.mark_down(backend.addr()),
                }
            }
            index += consumed;
        }
        // every owner either shed or died; a shed response is still a
        // well-formed answer (it carries Retry-After), so propagate it
        if let Some((backend, response)) = last_shed {
            return ForwardOutcome::Forwarded { backend, response };
        }
        self.stats.no_backend.fetch_add(1, Ordering::Relaxed);
        ForwardOutcome::NoBackends
    }

    /// Launch the primary attempt on its own thread; if no response
    /// arrives within `hedge_after`, launch the same request at the
    /// key's next owner and take whichever answers first. The loser's
    /// response is discarded (requests are idempotent: deterministic
    /// seeds make duplicate executions byte-identical).
    fn attempt_hedged(
        &self,
        primary: Arc<BackendClient>,
        partner: Option<Arc<BackendClient>>,
        method: &str,
        path: &str,
        body: &[u8],
        hedge_after: Duration,
    ) -> Vec<(Arc<BackendClient>, std::io::Result<Response>)> {
        type Attempt = (Arc<BackendClient>, std::io::Result<Response>);
        // bounded at 2: at most two attempts (primary + hedge) each
        // send exactly once, so neither send can ever block
        let (tx, rx) = mpsc::sync_channel::<Attempt>(2);
        let timeout = self.config.request_timeout;
        let spawn_attempt = |client: Arc<BackendClient>, tx: mpsc::SyncSender<Attempt>| {
            let method = method.to_string();
            let path = path.to_string();
            let body = body.to_vec();
            std::thread::spawn(move || {
                let mut scratch = Vec::new();
                let result = client.request(&method, &path, &body, timeout, &mut scratch);
                let _ = tx.send((client, result));
            });
        };
        spawn_attempt(primary, tx.clone());
        let mut expected = 1;
        let mut results: Vec<Attempt> = Vec::with_capacity(2);
        match rx.recv_timeout(hedge_after) {
            Ok(first) => results.push(first),
            Err(_) => {
                if let Some(partner) = partner {
                    self.stats.hedges.fetch_add(1, Ordering::Relaxed);
                    spawn_attempt(partner, tx.clone());
                    expected = 2;
                }
            }
        }
        drop(tx);
        while results.len() < expected {
            match rx.recv() {
                Ok(attempt) => {
                    let winner = matches!(&attempt.1, Ok(response) if response.status != 503);
                    results.push(attempt);
                    if winner {
                        // the in-flight loser keeps running detached;
                        // its send lands in a closed channel
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        results
    }
}

/// One-shot `/readyz` probe: 200 within `timeout` means ready.
fn probe_ready(addr: &str, timeout: Duration) -> bool {
    use std::io::{Read, Write};
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return false;
    }
    let request =
        b"GET /readyz HTTP/1.1\r\nhost: fairrank-router\r\nconnection: close\r\ncontent-length: 0\r\n\r\n";
    if stream.write_all(request).is_err() {
        return false;
    }
    let mut head = [0u8; 15];
    let mut filled = 0;
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) | Err(_) => return false,
            Ok(n) => filled += n,
        }
    }
    // drain the rest so the backend does not see a reset
    let mut rest = [0u8; 512];
    while matches!(stream.read(&mut rest), Ok(n) if n > 0) {}
    head.starts_with(b"HTTP/1.1 200")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_starts_empty_and_forward_reports_no_backends() {
        let core = RouterCore::new(RouterConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            ..RouterConfig::default()
        });
        assert_eq!(core.ready_count(), 0);
        let mut scratch = Vec::new();
        match core.forward("POST", "/rank", b"{}", 7, &mut scratch) {
            ForwardOutcome::NoBackends => {}
            ForwardOutcome::Forwarded { .. } => panic!("empty ring must not forward"),
        }
        assert_eq!(core.stats.no_backend.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mark_down_of_unready_backend_is_a_no_op() {
        let core = RouterCore::new(RouterConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            ..RouterConfig::default()
        });
        core.mark_down("127.0.0.1:1");
        core.mark_down("10.9.9.9:9");
        assert_eq!(core.stats.ring_churn.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn mark_up_then_down_counts_churn_and_updates_ring() {
        let core = RouterCore::new(RouterConfig {
            backends: vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
            ..RouterConfig::default()
        });
        core.mark_up(0);
        core.mark_up(1);
        core.mark_up(1); // idempotent
        assert_eq!(core.ready_count(), 2);
        core.mark_down("127.0.0.1:1");
        assert_eq!(core.ready_count(), 1);
        assert_eq!(core.stats.ring_churn.load(Ordering::Relaxed), 3);
    }
}
