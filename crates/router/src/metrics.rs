//! Cluster-level `GET /metrics`: router-own counters followed by the
//! merged backend scrapes.
//!
//! Router-own families are rendered through the engine's own
//! exposition writer ([`fairrank_engine::stats::render_prometheus`]),
//! so they share its formatting guarantees. Backend scrapes are then
//! parsed and **summed by (series name, labels)** — counters add,
//! gauges add (a cluster-level `fairrank_engine_workers` is the total
//! worker count), histogram buckets add bucket-by-bucket, which keeps
//! cumulative bucket monotonicity because every scrape is
//! individually monotone. `# HELP`/`# TYPE` headers are emitted once
//! per family in first-seen order, so the merged document still
//! passes the engine's strict [`validate_prometheus_text`] checker —
//! which `tests/router_serve.rs` asserts.
//!
//! [`validate_prometheus_text`]: fairrank_engine::stats::validate_prometheus_text

use crate::RouterCore;
use fairrank_engine::stats::{render_prometheus, MetricFamily, MetricSample, MetricValue};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// One merged family: verbatim header lines plus summed samples in
/// first-seen order.
struct MergedFamily {
    help_line: String,
    type_line: String,
    /// `series → value`, where `series` is the full sample name
    /// including its label block (e.g. `x_bucket{route="rank",le="50"}`).
    order: Vec<String>,
    values: Vec<f64>,
}

/// Render the full cluster scrape into `out`.
pub fn render(core: &RouterCore, out: &mut String, scratch: &mut Vec<u8>) {
    render_router_families(core, out);
    let mut families: Vec<MergedFamily> = Vec::new();
    for client in core.backends() {
        let scrape = client.request("GET", "/metrics", b"", Duration::from_secs(5), scratch);
        // a backend that cannot answer simply drops out of the sum;
        // fairrank_router_backends_ready already reports how many
        // scrapes the aggregate covers
        if let Ok(response) = scrape {
            if response.status == 200 {
                if let Ok(text) = std::str::from_utf8(&response.body) {
                    merge_scrape(&mut families, text);
                }
            }
        }
    }
    for family in &families {
        out.push_str(&family.help_line);
        out.push('\n');
        out.push_str(&family.type_line);
        out.push('\n');
        for (series, value) in family.order.iter().zip(&family.values) {
            out.push_str(series);
            out.push(' ');
            write_value(out, *value);
            out.push('\n');
        }
    }
}

/// The `fairrank_router_*` families.
fn render_router_families(core: &RouterCore, out: &mut String) {
    let stats = &core.stats;
    let ready = core.ready_count() as u64;
    let mut families = vec![
        MetricFamily::scalar(
            "fairrank_router_requests_total",
            "Requests entering the router's forwarding path.",
            MetricValue::Counter(stats.requests.load(Ordering::Relaxed)),
        ),
        MetricFamily::scalar(
            "fairrank_router_retries_total",
            "Extra owner attempts after a failed or shedding one.",
            MetricValue::Counter(stats.retries.load(Ordering::Relaxed)),
        ),
        MetricFamily::scalar(
            "fairrank_router_hedges_total",
            "Hedge requests launched against a key's next owner.",
            MetricValue::Counter(stats.hedges.load(Ordering::Relaxed)),
        ),
        MetricFamily::scalar(
            "fairrank_router_resubmissions_total",
            "Batch jobs re-placed after their owner left the ring.",
            MetricValue::Counter(stats.resubmissions.load(Ordering::Relaxed)),
        ),
        MetricFamily::scalar(
            "fairrank_router_ring_churn_total",
            "Ring membership transitions (joins plus leaves).",
            MetricValue::Counter(stats.ring_churn.load(Ordering::Relaxed)),
        ),
        MetricFamily::scalar(
            "fairrank_router_no_backend_total",
            "Requests answered 503 because the ring was empty.",
            MetricValue::Counter(stats.no_backend.load(Ordering::Relaxed)),
        ),
        MetricFamily::scalar(
            "fairrank_router_backends_ready",
            "Backends currently in the hash ring.",
            MetricValue::Gauge(ready),
        ),
        MetricFamily::scalar(
            "fairrank_router_backends_configured",
            "Backends configured at startup.",
            MetricValue::Gauge(core.backends().len() as u64),
        ),
    ];
    let inflight: Vec<u64> = core.backends().iter().map(|c| c.inflight()).collect();
    let requests: Vec<u64> = core.backends().iter().map(|c| c.requests()).collect();
    families.push(MetricFamily {
        name: "fairrank_router_backend_inflight",
        help: "Requests currently in flight to each backend.",
        samples: core
            .backends()
            .iter()
            .zip(&inflight)
            .map(|(client, value)| MetricSample {
                labels: vec![("backend", client.addr())],
                value: MetricValue::Gauge(*value),
            })
            .collect(),
    });
    families.push(MetricFamily {
        name: "fairrank_router_backend_requests_total",
        help: "Requests ever issued to each backend.",
        samples: core
            .backends()
            .iter()
            .zip(&requests)
            .map(|(client, value)| MetricSample {
                labels: vec![("backend", client.addr())],
                value: MetricValue::Counter(*value),
            })
            .collect(),
    });
    render_prometheus(&families, out);
}

/// Fold one backend's scrape into the merged families. The engine
/// renders families as a `# HELP`/`# TYPE` header followed by its
/// samples, so a plain line scan with a "current family" cursor is a
/// faithful parse.
fn merge_scrape(families: &mut Vec<MergedFamily>, text: &str) {
    let mut current: Option<usize> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            let index = families.iter().position(|f| family_name(f) == name);
            current = Some(index.unwrap_or_else(|| {
                families.push(MergedFamily {
                    help_line: line.to_string(),
                    type_line: String::new(),
                    order: Vec::new(),
                    values: Vec::new(),
                });
                families.len() - 1
            }));
        } else if line.starts_with("# TYPE ") {
            if let Some(index) = current {
                if families[index].type_line.is_empty() {
                    families[index].type_line = line.to_string();
                }
            }
        } else if !line.is_empty() && !line.starts_with('#') {
            let Some(index) = current else { continue };
            let Some(space) = line.rfind(' ') else {
                continue;
            };
            let (series, value_text) = line.split_at(space);
            let Ok(value) = value_text.trim().parse::<f64>() else {
                continue;
            };
            let family = &mut families[index];
            match family.order.iter().position(|s| s == series) {
                Some(sample) => family.values[sample] += value,
                None => {
                    family.order.push(series.to_string());
                    family.values.push(value);
                }
            }
        }
    }
}

/// The family name out of a merged family's `# HELP` line.
fn family_name(family: &MergedFamily) -> &str {
    family
        .help_line
        .strip_prefix("# HELP ")
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or("")
}

/// Write a summed value the way the engine would: digit-exact for
/// integral values (counters and buckets stay integers after
/// summation), shortest-float otherwise.
fn write_value(out: &mut String, value: f64) {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        let _ = write!(out, "{}", value as i64);
    } else {
        let _ = write!(out, "{value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_engine::stats::validate_prometheus_text;

    const SCRAPE: &str = "\
# HELP fairrank_http_requests_total Requests served.
# TYPE fairrank_http_requests_total counter
fairrank_http_requests_total{route=\"rank\"} 10
fairrank_http_requests_total{route=\"aggregate\"} 2
# HELP fairrank_request_latency_us Request latency.
# TYPE fairrank_request_latency_us histogram
fairrank_request_latency_us_bucket{le=\"50\"} 3
fairrank_request_latency_us_bucket{le=\"+Inf\"} 12
fairrank_request_latency_us_sum 900
fairrank_request_latency_us_count 12
";

    #[test]
    fn merging_two_scrapes_sums_by_series() {
        let mut families = Vec::new();
        merge_scrape(&mut families, SCRAPE);
        merge_scrape(&mut families, SCRAPE);
        let mut out = String::new();
        for family in &families {
            out.push_str(&family.help_line);
            out.push('\n');
            out.push_str(&family.type_line);
            out.push('\n');
            for (series, value) in family.order.iter().zip(&family.values) {
                out.push_str(series);
                out.push(' ');
                write_value(&mut out, *value);
                out.push('\n');
            }
        }
        assert!(out.contains("fairrank_http_requests_total{route=\"rank\"} 20"));
        assert!(out.contains("fairrank_request_latency_us_bucket{le=\"+Inf\"} 24"));
        assert!(out.contains("fairrank_request_latency_us_count 24"));
        validate_prometheus_text(&out).expect("merged scrape must stay valid");
    }

    #[test]
    fn integral_values_render_without_decimals() {
        let mut out = String::new();
        write_value(&mut out, 42.0);
        out.push(' ');
        write_value(&mut out, 1.5);
        assert_eq!(out, "42 1.5");
    }
}
