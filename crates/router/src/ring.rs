//! Consistent-hash ring over backend addresses.
//!
//! Each backend contributes [`VNODES`] virtual points placed by
//! hashing `addr#vnode`; a key is owned by the backend whose point is
//! the key's clockwise successor. The classic properties follow
//! directly from the construction and are pinned by
//! `tests/ring_properties.rs`:
//!
//! * **deterministic** — the ring is a pure function of the backend
//!   set, so every router instance (and every rebuild) agrees;
//! * **uniform** — with hundreds of points per backend the arc lengths
//!   concentrate, keeping per-backend load within a few percent;
//! * **monotone** — adding a backend only moves keys *onto* the new
//!   backend (~1/N of them); removing one only moves keys that lived
//!   on it. The rest of the cluster keeps its cache-warm assignments.
//!
//! Keys are [`fairrank_engine::job::RankJob::digest`] values — the
//! same algorithm+input digest the result cache is keyed by — so a
//! request lands on the replica that already holds its cached result.

/// Virtual points per backend. 1024 keeps the expected per-backend
/// arc imbalance around ±3% (relative spread ~1/√VNODES), so with the
/// ±12% sampling noise of 1k keys the property tests' ±20% uniformity
/// bound holds with real margin. An 8-backend ring is 8 192 points —
/// a rebuild is one sort, microseconds, and lookups stay a 13-step
/// binary search.
pub const VNODES: usize = 1024;

/// FNV-1a over `bytes` (same constants as the engine's digests).
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut hash = hash;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64 finalizer: FNV output is well-distributed in the low
/// bits but ring placement compares full 64-bit values, so run the
/// hash through an avalanching mix before placing points.
fn mix(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Ring position of virtual point `vnode` for `addr`.
fn point(addr: &str, vnode: usize) -> u64 {
    let hash = fnv1a(0xcbf2_9ce4_8422_2325, addr.as_bytes());
    let hash = fnv1a(hash, b"#");
    mix(fnv1a(hash, &(vnode as u64).to_le_bytes()))
}

/// An immutable consistent-hash ring. Rebuilt from scratch on every
/// membership change — a build is a sort of `N × VNODES` points, far
/// below a probe interval's budget even for large clusters.
#[derive(Clone, Debug, Default)]
pub struct HashRing {
    /// `(position, backend index)` sorted by position. Position ties
    /// across backends break toward the lower index, so equal inputs
    /// always produce identical rings.
    points: Vec<(u64, u32)>,
    backends: Vec<String>,
}

impl HashRing {
    /// Build a ring over `backends` (order-sensitive only for tie
    /// breaks; duplicates are debug-asserted against).
    pub fn build<S: AsRef<str>>(backends: &[S]) -> HashRing {
        let backends: Vec<String> = backends.iter().map(|b| b.as_ref().to_string()).collect();
        debug_assert!(
            {
                let mut sorted = backends.clone();
                sorted.sort();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate backend addresses"
        );
        let mut points = Vec::with_capacity(backends.len() * VNODES);
        for (index, addr) in backends.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((point(addr, vnode), index as u32));
            }
        }
        points.sort_unstable();
        HashRing { points, backends }
    }

    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    pub fn len(&self) -> usize {
        self.backends.len()
    }

    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// The backend owning `key`, or `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<&str> {
        let start = self.successor_index(key)?;
        let (_, backend) = self.points[start];
        Some(&self.backends[backend as usize])
    }

    /// Every backend in ring order starting from `key`'s owner, each
    /// listed once. Element 0 is the owner; the rest are the failover
    /// sequence a router walks when the owner is shedding or gone.
    pub fn owners(&self, key: u64) -> Vec<&str> {
        let Some(start) = self.successor_index(key) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.backends.len()];
        let mut order = Vec::with_capacity(self.backends.len());
        for offset in 0..self.points.len() {
            let (_, backend) = self.points[(start + offset) % self.points.len()];
            if !seen[backend as usize] {
                seen[backend as usize] = true;
                order.push(self.backends[backend as usize].as_str());
                if order.len() == self.backends.len() {
                    break;
                }
            }
        }
        order
    }

    /// Index of the first point at or clockwise of `key` (wrapping).
    fn successor_index(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let position = mix(key);
        let index = self.points.partition_point(|&(p, _)| p < position);
        Some(index % self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:8080")).collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::build::<&str>(&[]);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
        assert!(ring.owners(42).is_empty());
    }

    #[test]
    fn single_backend_owns_everything() {
        let ring = HashRing::build(&["127.0.0.1:9000"]);
        for key in 0..100u64 {
            assert_eq!(ring.owner(key), Some("127.0.0.1:9000"));
        }
    }

    #[test]
    fn owners_lists_every_backend_once_owner_first() {
        let ring = HashRing::build(&addrs(5));
        for key in 0..50u64 {
            let owners = ring.owners(key);
            assert_eq!(owners.len(), 5);
            assert_eq!(owners[0], ring.owner(key).unwrap());
            let mut sorted: Vec<_> = owners.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "owners must be distinct");
        }
    }

    #[test]
    fn build_is_order_insensitive_for_ownership() {
        let forward = HashRing::build(&addrs(4));
        let mut reversed = addrs(4);
        reversed.reverse();
        let backward = HashRing::build(&reversed);
        for key in 0..1000u64 {
            assert_eq!(forward.owner(key), backward.owner(key));
        }
    }
}
