//! The router's own HTTP front.
//!
//! Thread-per-connection with keep-alive: the router is I/O-bound (it
//! holds a connection open while a backend computes), so a blocked
//! thread per client connection is the right shape — unlike the
//! engine's reactor, there is no CPU work to protect. Buffers are
//! per-connection and reused across requests.
//!
//! Every response carries `x-trace-id` (the router's own id for the
//! hop). Forwarded responses add `x-backend` (the owning replica) and
//! `x-backend-trace-id` (the replica's `x-trace-id`), so a trace can
//! be joined across tiers. Bodies are forwarded byte-for-byte.

use crate::{jobs, metrics, ForwardOutcome, RouterCore};
use fairrank_engine::json::JsonArena;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request body (matches a generous batch submit).
const MAX_BODY: usize = 8 * 1024 * 1024;

/// Keep-alive requests served per client connection.
const MAX_CONN_REQUESTS: usize = 1024;

/// Keep-alive idle timeout on client connections.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound, not-yet-serving router front.
pub struct RouterServer {
    core: Arc<RouterCore>,
    listener: TcpListener,
}

/// Handle to a running router: address, stop flag, service threads.
pub struct RouterHandle {
    core: Arc<RouterCore>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterServer {
    pub fn bind(addr: &str, core: Arc<RouterCore>) -> std::io::Result<RouterServer> {
        Ok(RouterServer {
            core,
            listener: TcpListener::bind(addr)?,
        })
    }

    /// Start the accept loop and the `/readyz` prober.
    pub fn spawn(self) -> std::io::Result<RouterHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let prober_core = Arc::clone(&self.core);
        let prober_stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            // the first round runs immediately so the ring fills as
            // soon as backends answer, not one interval later
            while !prober_stop.load(Ordering::SeqCst) {
                prober_core.probe_once();
                let interval = prober_core.config.probe_interval;
                let mut slept = Duration::ZERO;
                // sleep in small slices so shutdown stays prompt
                while slept < interval && !prober_stop.load(Ordering::SeqCst) {
                    let slice = Duration::from_millis(20).min(interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        }));

        let accept_core = Arc::clone(&self.core);
        let accept_stop = Arc::clone(&stop);
        let listener = self.listener;
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let core = Arc::clone(&accept_core);
                let stop = Arc::clone(&accept_stop);
                std::thread::spawn(move || handle_connection(&core, stream, &stop));
            }
        }));

        Ok(RouterHandle {
            core: self.core,
            addr,
            stop,
            threads,
        })
    }
}

impl RouterHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn core(&self) -> &Arc<RouterCore> {
        &self.core
    }

    /// Stop accepting and probing, then join the service threads.
    /// Connections mid-request finish their current response and
    /// close (the keep-alive loop re-checks the stop flag).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

/// Per-connection reusable buffers.
struct ConnBuffers {
    input: Vec<u8>,
    response: Vec<u8>,
    scratch: Vec<u8>,
    arena: JsonArena,
}

fn handle_connection(core: &Arc<RouterCore>, mut stream: TcpStream, stop: &Arc<AtomicBool>) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(IDLE_TIMEOUT)).is_err() {
        return;
    }
    let mut buffers = ConnBuffers {
        input: Vec::with_capacity(4096),
        response: Vec::with_capacity(4096),
        scratch: Vec::with_capacity(4096),
        arena: JsonArena::new(),
    };
    for served in 0..MAX_CONN_REQUESTS {
        let Some(request) = read_request(&mut stream, &mut buffers.input) else {
            return;
        };
        let keep_alive =
            request.keep_alive && served + 1 < MAX_CONN_REQUESTS && !stop.load(Ordering::SeqCst);
        let answer = dispatch(core, &request, &mut buffers);
        let trace_id = next_trace_id();
        buffers.response.clear();
        write_response(&mut buffers.response, &answer, trace_id, keep_alive);
        if stream.write_all(&buffers.response).is_err() {
            return;
        }
        let consumed = request.consumed;
        buffers.input.drain(..consumed);
        if !keep_alive {
            return;
        }
    }
}

/// A parsed client request (borrowing nothing: the front copies the
/// few strings it needs so the input buffer can be drained).
struct Request {
    method: String,
    path: String,
    body_start: usize,
    body_len: usize,
    consumed: usize,
    keep_alive: bool,
}

impl Request {
    fn body<'a>(&self, input: &'a [u8]) -> &'a [u8] {
        &input[self.body_start..self.body_start + self.body_len]
    }
}

/// Read one `content-length`-framed request. `None` ends the
/// connection (EOF, timeout, malformed head, oversized body).
fn read_request(stream: &mut TcpStream, input: &mut Vec<u8>) -> Option<Request> {
    let head_end = loop {
        if let Some(pos) = input.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if input.len() > 64 * 1024 {
            return None;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => input.extend_from_slice(&chunk[..n]),
        }
    };
    let head = std::str::from_utf8(&input[..head_end]).ok()?;
    let mut lines = head.lines();
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok()?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return None;
    }
    while input.len() < head_end + content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => input.extend_from_slice(&chunk[..n]),
        }
    }
    Some(Request {
        method,
        path,
        body_start: head_end,
        body_len: content_length,
        consumed: head_end + content_length,
        keep_alive,
    })
}

/// A fully decided response, ready for framing.
struct Answer {
    status: u16,
    body: Vec<u8>,
    content_type: &'static str,
    backend: Option<String>,
    backend_trace: Option<String>,
    retry_after: Option<u64>,
}

impl Answer {
    fn json(status: u16, body: String) -> Answer {
        Answer {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            backend: None,
            backend_trace: None,
            retry_after: None,
        }
    }

    fn no_backends() -> Answer {
        Answer::json(503, "{\"error\":\"no backends ready\"}".to_string())
    }
}

fn dispatch(core: &Arc<RouterCore>, request: &Request, buffers: &mut ConnBuffers) -> Answer {
    let body = request.body(&buffers.input);
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => Answer::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"backends_configured\":{},\"backends_ready\":{}}}",
                core.backends().len(),
                core.ready_count()
            ),
        ),
        ("GET", "/readyz") => {
            let ready = core.ready_count();
            if ready > 0 {
                Answer::json(
                    200,
                    format!("{{\"status\":\"ready\",\"backends_ready\":{ready}}}"),
                )
            } else {
                Answer::json(
                    503,
                    "{\"status\":\"unready\",\"backends_ready\":0}".to_string(),
                )
            }
        }
        ("GET", "/metrics") => {
            let mut out = String::new();
            metrics::render(core, &mut out, &mut buffers.scratch);
            Answer {
                status: 200,
                body: out.into_bytes(),
                content_type: "text/plain; version=0.0.4",
                backend: None,
                backend_trace: None,
                retry_after: None,
            }
        }
        ("POST", "/rank" | "/aggregate" | "/pipeline") => {
            let key = request_key(path, body, &mut buffers.arena);
            match core.forward(method, path, body, key, &mut buffers.scratch) {
                ForwardOutcome::NoBackends => Answer::no_backends(),
                ForwardOutcome::Forwarded { backend, response } => Answer {
                    status: response.status,
                    content_type: content_type_static(&response.content_type),
                    retry_after: response.retry_after,
                    body: response.body,
                    backend: Some(backend),
                    backend_trace: response.trace_id,
                },
            }
        }
        ("POST", "/jobs") => {
            let key = request_key(path, body, &mut buffers.arena);
            answer_from_job(jobs::submit(core, body, key, &mut buffers.scratch))
        }
        ("GET", _) if path.starts_with("/jobs/") => answer_from_job(jobs::poll(
            core,
            &path["/jobs/".len()..],
            "GET",
            &mut buffers.scratch,
        )),
        ("DELETE", _) if path.starts_with("/jobs/") => answer_from_job(jobs::poll(
            core,
            &path["/jobs/".len()..],
            "DELETE",
            &mut buffers.scratch,
        )),
        ("GET" | "POST" | "DELETE", _) => {
            Answer::json(404, "{\"error\":\"no such route\"}".to_string())
        }
        _ => Answer::json(405, "{\"error\":\"method not allowed\"}".to_string()),
    }
}

fn answer_from_job(answer: jobs::JobAnswer) -> Answer {
    Answer {
        status: answer.status,
        body: answer.body,
        content_type: "application/json",
        backend: answer.backend,
        backend_trace: answer.backend_trace,
        retry_after: None,
    }
}

/// The ring key for a request: the engine's cache digest when the
/// body parses, a raw-byte FNV otherwise (the request is forwarded
/// either way — the backend owns the error response).
fn request_key(path: &str, body: &[u8], arena: &mut JsonArena) -> u64 {
    fairrank_engine::server::ring_key(path, body, arena).unwrap_or_else(|| {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in body {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    })
}

/// Map a backend content-type onto the router's static strings (the
/// engine only ever serves these two).
fn content_type_static(content_type: &str) -> &'static str {
    if content_type.starts_with("text/plain") {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    }
}

fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(out: &mut Vec<u8>, answer: &Answer, trace_id: u64, keep_alive: bool) {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(256);
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nx-trace-id: {trace_id}\r\n",
        answer.status,
        reason(answer.status),
        answer.content_type,
        answer.body.len()
    );
    if let Some(backend) = &answer.backend {
        let _ = write!(head, "x-backend: {backend}\r\n");
    }
    if let Some(backend_trace) = &answer.backend_trace {
        let _ = write!(head, "x-backend-trace-id: {backend_trace}\r\n");
    }
    if let Some(secs) = answer.retry_after {
        let _ = write!(head, "retry-after: {secs}\r\n");
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(&answer.body);
}
