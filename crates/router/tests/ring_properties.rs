//! Property tests for the consistent-hash ring (the tentpole's
//! placement guarantees, pinned as properties):
//!
//! 1. assignment is deterministic — a pure function of the backend
//!    *set*, independent of listing order;
//! 2. load is uniform — every backend owns its fair share of 1k
//!    synthetic keys within ±20%;
//! 3. membership changes are monotone — adding a backend only moves
//!    keys *onto* the new backend (~1/N of them), removing one only
//!    moves keys that lived on it.

use fairrank_router::ring::HashRing;
use proptest::prelude::*;

/// A synthetic backend fleet: `count` distinct addresses, salted so
/// different cases exercise different point layouts.
fn fleet(count: usize, salt: u64) -> Vec<String> {
    (0..count)
        .map(|i| format!("10.{}.{}.{i}:8080", salt % 251, (salt >> 8) % 251))
        .collect()
}

fn keys(seed: u64) -> Vec<u64> {
    // splitmix64 stream: deterministic, well-dispersed synthetic keys
    (0..1000u64)
        .map(|i| {
            let mut z = seed
                .wrapping_add(1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

proptest! {
    #[test]
    fn assignment_is_deterministic_and_order_independent(
        (count, salt, seed) in (2usize..=5, any::<u64>(), any::<u64>())
    ) {
        let addrs = fleet(count, salt);
        let ring = HashRing::build(&addrs);
        let again = HashRing::build(&addrs);
        let mut shuffled = addrs.clone();
        shuffled.reverse();
        shuffled.rotate_left(1);
        let reordered = HashRing::build(&shuffled);
        for key in keys(seed) {
            let owner = ring.owner(key);
            prop_assert!(owner.is_some());
            prop_assert_eq!(owner, again.owner(key));
            prop_assert_eq!(owner, reordered.owner(key));
        }
    }

    #[test]
    fn load_is_uniform_within_twenty_percent(
        (count, salt, seed) in (2usize..=5, any::<u64>(), any::<u64>())
    ) {
        let addrs = fleet(count, salt);
        let ring = HashRing::build(&addrs);
        let keys = keys(seed);
        let mut per_backend = vec![0usize; count];
        for &key in &keys {
            let owner = ring.owner(key).unwrap();
            let index = addrs.iter().position(|a| a == owner).unwrap();
            per_backend[index] += 1;
        }
        let fair = keys.len() as f64 / count as f64;
        for (index, &owned) in per_backend.iter().enumerate() {
            let deviation = (owned as f64 - fair) / fair;
            prop_assert!(
                deviation.abs() <= 0.20,
                "backend {index} owns {owned} of {} keys (fair share {fair:.0}, off by {:.0}%)",
                keys.len(),
                deviation * 100.0
            );
        }
    }

    #[test]
    fn adding_a_backend_remaps_only_onto_it_and_about_one_nth(
        (count, salt, seed) in (2usize..=5, any::<u64>(), any::<u64>())
    ) {
        let addrs = fleet(count, salt);
        let before = HashRing::build(&addrs);
        let mut grown = addrs.clone();
        grown.push("10.254.254.254:8080".to_string());
        let after = HashRing::build(&grown);
        let keys = keys(seed);
        let mut moved = 0usize;
        for &key in &keys {
            let old = before.owner(key).unwrap();
            let new = after.owner(key).unwrap();
            if old != new {
                // monotone: a key may only move onto the new backend
                prop_assert_eq!(new, "10.254.254.254:8080");
                moved += 1;
            }
        }
        let expected = keys.len() as f64 / (count + 1) as f64;
        prop_assert!(
            (moved as f64) < 2.5 * expected && (moved as f64) > 0.25 * expected,
            "{moved} keys moved; expected about {expected:.0} (1/{})",
            count + 1
        );
    }

    #[test]
    fn removing_a_backend_remaps_only_its_own_keys(
        (count, salt, seed, victim) in (2usize..=6, any::<u64>(), any::<u64>(), any::<u64>())
    ) {
        let addrs = fleet(count, salt);
        let before = HashRing::build(&addrs);
        let victim = &addrs[(victim % count as u64) as usize];
        let shrunk: Vec<&String> = addrs.iter().filter(|a| *a != victim).collect();
        let after = HashRing::build(&shrunk);
        for key in keys(seed) {
            let old = before.owner(key).unwrap();
            let new = after.owner(key).unwrap();
            if old != victim {
                // survivors keep every key they owned (cache-warm)
                prop_assert_eq!(old, new);
            } else {
                prop_assert!(new != victim);
            }
        }
    }
}
