//! In-process router ↔ engine integration: transparency
//! (byte-identical bodies, joined traces), empty-ring 503s, shed
//! retries, hedging, aggregated metrics and drain-driven job
//! resubmission — all over real sockets, no process spawning (the
//! real-binary fault-injection harness lives in
//! `crates/cli/tests/router_cluster.rs`).

use fairrank_engine::server::{Server, ServerConfig, ServerHandle};
use fairrank_engine::{Engine, EngineConfig};
use fairrank_router::server::{RouterHandle, RouterServer};
use fairrank_router::{RouterConfig, RouterCore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One real engine backend on an ephemeral port. `io_threads` is set
/// explicitly (the auto default is one per CPU — a single thread on a
/// small CI box), because the router's pooled keep-alive connections
/// plus its probes hold backend I/O workers for as long as they live.
fn spawn_backend() -> ServerHandle {
    spawn_backend_with(Engine::new(test_engine_config()))
}

fn test_engine_config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 256,
        table_cache_capacity: 16,
        cache_shards: 0,
        ..EngineConfig::default()
    }
}

fn spawn_backend_with(engine: Arc<Engine>) -> ServerHandle {
    Server::bind_with(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            io_threads: 8,
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral backend port")
    .spawn()
    .expect("starting the backend")
}

fn spawn_router(backends: Vec<String>, probe_ms: u64, hedge_after_us: u64) -> RouterHandle {
    let core = RouterCore::new(RouterConfig {
        backends,
        probe_interval: Duration::from_millis(probe_ms),
        hedge_after: (hedge_after_us > 0).then(|| Duration::from_micros(hedge_after_us)),
        request_timeout: Duration::from_secs(10),
    });
    RouterServer::bind("127.0.0.1:0", core)
        .expect("binding an ephemeral router port")
        .spawn()
        .expect("starting the router")
}

/// One-shot request; returns `(status, head, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8_lossy(&response).to_string();
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let head_end = text.find("\r\n\r\n").expect("head end") + 4;
    (
        status,
        text[..head_end].to_string(),
        text[head_end..].to_string(),
    )
}

fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

/// Poll the router until all `count` backends joined the ring.
fn wait_ready(router: SocketAddr, count: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, body) = http(router, "GET", "/healthz", "");
        if body.contains(&format!("\"backends_ready\":{count}")) {
            return;
        }
        assert!(Instant::now() < deadline, "backends never joined: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn rank_body(seed: u64) -> String {
    format!(
        r#"{{"algorithm":"weakly-fair","scores":[0.9,0.8,0.4,0.3],"groups":[0,0,1,1],"tolerance":0.2,"seed":{seed}}}"#
    )
}

#[test]
fn router_is_transparent_and_joins_traces() {
    let backend_a = spawn_backend();
    let backend_b = spawn_backend();
    let router = spawn_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        30,
        0,
    );
    wait_ready(router.addr(), 2);

    for seed in 0..6u64 {
        let body = rank_body(seed);
        let (status, head, routed) = http(router.addr(), "POST", "/rank", &body);
        assert_eq!(status, 200, "{routed}");
        assert!(header(&head, "x-trace-id").is_some(), "{head}");
        assert!(header(&head, "x-backend-trace-id").is_some(), "{head}");
        let owner: SocketAddr = header(&head, "x-backend")
            .expect("x-backend")
            .parse()
            .unwrap();

        // the same request sent straight to the owning backend must be
        // byte-identical, and the backend traces its own hop too
        let (direct_status, direct_head, direct) = http(owner, "POST", "/rank", &body);
        assert_eq!(direct_status, 200);
        assert!(
            header(&direct_head, "x-trace-id").is_some(),
            "{direct_head}"
        );
        assert_eq!(routed, direct, "routed and direct bodies must match");
    }

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn empty_ring_is_a_well_formed_503_at_startup() {
    // a port that refuses connections: bind, read the port, drop
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let router = spawn_router(vec![dead_addr], 30, 0);
    std::thread::sleep(Duration::from_millis(100));

    let (status, _, body) = http(router.addr(), "GET", "/readyz", "");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("unready"), "{body}");
    for (method, path) in [
        ("POST", "/rank"),
        ("POST", "/aggregate"),
        ("POST", "/pipeline"),
        ("POST", "/jobs"),
    ] {
        let (status, _, body) = http(router.addr(), method, path, &rank_body(1));
        assert_eq!(status, 503, "{method} {path}: {body}");
        assert_eq!(body, "{\"error\":\"no backends ready\"}", "{method} {path}");
    }
    // unknown job ids are a local 404, not a hang
    let (status, _, body) = http(router.addr(), "GET", "/jobs/1", "");
    assert_eq!(status, 404, "{body}");

    router.shutdown();
}

#[test]
fn total_backend_loss_degrades_to_503_not_a_hang() {
    let backend = spawn_backend();
    let router = spawn_router(vec![backend.addr().to_string()], 30, 0);
    wait_ready(router.addr(), 1);
    let (status, _, _) = http(router.addr(), "POST", "/rank", &rank_body(3));
    assert_eq!(status, 200);

    backend.shutdown();
    // the first forward after the loss hits a connection error, which
    // evicts the backend on the spot — no probe round needed
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = http(router.addr(), "POST", "/rank", &rank_body(4));
        if status == 503 {
            assert_eq!(body, "{\"error\":\"no backends ready\"}");
            break;
        }
        assert!(Instant::now() < deadline, "router kept answering {status}");
        std::thread::sleep(Duration::from_millis(10));
    }
    router.shutdown();
}

/// A hand-rolled backend for failure shapes the engine won't produce
/// on demand: always-shedding (503 + Retry-After) or very slow.
fn spawn_fake_backend(behavior: FakeBehavior) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            std::thread::spawn(move || serve_fake(stream, behavior));
        }
    });
    addr
}

#[derive(Clone, Copy)]
enum FakeBehavior {
    AlwaysShed,
    Slow(Duration),
}

fn serve_fake(mut stream: TcpStream, behavior: FakeBehavior) {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    while buf.len() < head_end + content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let response = if head.starts_with("GET /readyz") {
        "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 20\r\nconnection: close\r\n\r\n{\"status\":\"ready\"}  ".to_string()
    } else {
        match behavior {
            FakeBehavior::AlwaysShed => {
                "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\nretry-after: 1\r\ncontent-length: 20\r\nconnection: close\r\n\r\n{\"error\":\"shedding\"}".to_string()
            }
            FakeBehavior::Slow(delay) => {
                std::thread::sleep(delay);
                "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 11\r\nconnection: close\r\n\r\n{\"ok\":true}".to_string()
            }
        }
    };
    let _ = stream.write_all(response.as_bytes());
}

/// Read a `fairrank_router_*` counter out of the router's /metrics.
fn router_counter(router: SocketAddr, name: &str) -> u64 {
    let (_, _, text) = http(router, "GET", "/metrics", "");
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from scrape:\n{text}"))
}

#[test]
fn shed_503s_are_retried_on_the_next_owner() {
    let shedding = spawn_fake_backend(FakeBehavior::AlwaysShed);
    let backend = spawn_backend();
    let router = spawn_router(
        vec![shedding.to_string(), backend.addr().to_string()],
        30,
        0,
    );
    wait_ready(router.addr(), 2);

    for seed in 100..112u64 {
        let (status, head, body) = http(router.addr(), "POST", "/rank", &rank_body(seed));
        assert_eq!(status, 200, "{body}");
        // the shedding owner is always walked past to the real one
        assert_eq!(
            header(&head, "x-backend"),
            Some(backend.addr().to_string().as_str()),
            "{head}"
        );
    }
    assert!(
        router_counter(router.addr(), "fairrank_router_retries_total") >= 1,
        "some keys must have been owned by the shedding backend first"
    );

    router.shutdown();
    backend.shutdown();
}

#[test]
fn hedging_rescues_requests_stuck_on_a_slow_backend() {
    let slow = spawn_fake_backend(FakeBehavior::Slow(Duration::from_millis(600)));
    let backend = spawn_backend();
    let router = spawn_router(
        vec![slow.to_string(), backend.addr().to_string()],
        30,
        25_000, // hedge after 25 ms
    );
    wait_ready(router.addr(), 2);

    let started = Instant::now();
    for seed in 200..216u64 {
        let (status, _, body) = http(router.addr(), "POST", "/rank", &rank_body(seed));
        assert_eq!(status, 200, "{body}");
    }
    let elapsed = started.elapsed();
    assert!(
        router_counter(router.addr(), "fairrank_router_hedges_total") >= 1,
        "some of 16 random keys must have been owned by the slow backend"
    );
    // un-hedged, the ~8 slow-owned requests would block 600 ms each
    // (~5 s total); hedging caps each near the 25 ms trigger
    assert!(
        elapsed < Duration::from_secs(4),
        "hedging should have rescued the slow keys ({elapsed:?})"
    );

    router.shutdown();
    backend.shutdown();
}

#[test]
fn cluster_metrics_aggregate_and_stay_valid() {
    let backend_a = spawn_backend();
    let backend_b = spawn_backend();
    let router = spawn_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        30,
        0,
    );
    wait_ready(router.addr(), 2);
    for seed in 300..308u64 {
        let (status, _, _) = http(router.addr(), "POST", "/rank", &rank_body(seed));
        assert_eq!(status, 200);
    }

    let (status, head, text) = http(router.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        header(&head, "content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "{head}"
    );
    fairrank_engine::stats::validate_prometheus_text(&text)
        .unwrap_or_else(|e| panic!("aggregated scrape invalid: {e}\n{text}"));
    // router-own families and per-backend labels
    assert!(text.contains("fairrank_router_requests_total "), "{text}");
    assert!(text.contains("fairrank_router_backend_requests_total{backend=\""));
    assert!(text.contains("fairrank_router_backends_ready 2"), "{text}");
    // the engine's request counter summed across both scrapes must
    // cover at least the traffic we just sent through the router
    let served: f64 = text
        .lines()
        .filter_map(|line| line.strip_prefix("fairrank_http_requests_total "))
        .filter_map(|value| value.trim().parse::<f64>().ok())
        .sum();
    assert!(served >= 8.0, "summed request total too low:\n{text}");

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn draining_backend_jobs_are_resubmitted_and_finish() {
    use fairrank_engine::job::{RankJob, RankResult};
    use fairrank_engine::registry::{Algorithm, AlgorithmKind, Registry};
    use fairrank_engine::tables::ExecContext;
    use rand::rngs::StdRng;

    /// Slow enough that a drain lands mid-batch.
    struct Sleepy;
    impl Algorithm for Sleepy {
        fn name(&self) -> &str {
            "sleepy"
        }
        fn kind(&self) -> AlgorithmKind {
            AlgorithmKind::PostProcessor
        }
        fn run(
            &self,
            job: &RankJob,
            _ctx: &ExecContext,
            _rng: &mut StdRng,
        ) -> Result<RankResult, fairrank_engine::EngineError> {
            std::thread::sleep(Duration::from_millis(5));
            Ok(RankResult {
                algorithm: job.algorithm.clone(),
                ranking: vec![0],
                consensus: None,
                metrics: vec![],
            })
        }
    }

    fn sleepy_backend() -> ServerHandle {
        let mut registry = Registry::standard();
        registry.register(Arc::new(Sleepy));
        spawn_backend_with(Engine::with_registry(test_engine_config(), registry))
    }

    let backend_a = sleepy_backend();
    let backend_b = sleepy_backend();
    let addr_a = backend_a.addr().to_string();
    let router = spawn_router(vec![addr_a.clone(), backend_b.addr().to_string()], 20, 0);
    wait_ready(router.addr(), 2);

    // ten 20-chunk jobs: ~1 s of sleepy work, far longer than the
    // submit loop, so the drain below lands mid-batch
    let mut job_ids = Vec::new();
    for job in 0..10u64 {
        let chunks: Vec<String> = (0..20)
            .map(|i| {
                format!(
                    r#"{{"algorithm":"sleepy","scores":[1.0],"seed":{}}}"#,
                    job * 1000 + i
                )
            })
            .collect();
        let body = format!(r#"{{"chunks":[{}]}}"#, chunks.join(","));
        let (status, head, response) = http(router.addr(), "POST", "/jobs", &body);
        assert_eq!(status, 202, "{response}");
        assert!(header(&head, "x-backend").is_some(), "{head}");
        let id: u64 = response
            .strip_prefix("{\"id\":")
            .and_then(|rest| rest.split(',').next()?.parse().ok())
            .unwrap_or_else(|| panic!("bad submit response: {response}"));
        job_ids.push(id);
    }

    // drain one backend mid-batch (blocks until drained, so spawn it)
    let drainer = std::thread::spawn(move || backend_a.shutdown());

    // every poll must answer 200 and every job must reach done —
    // jobs stranded on the draining backend get resubmitted
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut done = vec![false; job_ids.len()];
    while !done.iter().all(|d| *d) {
        assert!(Instant::now() < deadline, "jobs never finished: {done:?}");
        for (index, id) in job_ids.iter().enumerate() {
            if done[index] {
                continue;
            }
            let (status, _, body) = http(router.addr(), "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "poll failed during drain: {body}");
            assert!(
                !body.contains("\"status\":\"failed\"")
                    && !body.contains("\"status\":\"cancelled\""),
                "job {id} was lost: {body}"
            );
            if body.contains("\"status\":\"done\"") {
                assert!(body.contains("\"chunks_done\":20"), "{body}");
                done[index] = true;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    drainer.join().unwrap();

    assert!(
        router_counter(router.addr(), "fairrank_router_resubmissions_total") >= 1,
        "the drained backend owned jobs that must have been re-placed"
    );

    router.shutdown();
    backend_b.shutdown();
}
