//! German-Credit head-to-head: every algorithm of the paper's Section V
//! on one size-60 instance, evaluated on both the known (Sex-Age) and
//! the unknown (Housing) attribute.
//!
//! The comparison runs as **one asynchronous batch job on the serving
//! engine**: each algorithm is a [`RankJob`] chunk built by the shared
//! `cell_job` spec builder, submitted through `Engine::submit_batch` —
//! the same subsystem behind `POST /jobs` — and the rankings come back
//! as per-chunk results, byte-identical to what the HTTP API would
//! serve.
//!
//! ```sh
//! cargo run --example credit_ranking
//! ```

use experiments::credit_pipeline::{cell_job, Algorithm, Panel};
use fairness_ranking::datasets::GermanCredit;
use fairness_ranking::eval::table::Table;
use fairness_ranking::fairness::{infeasible, FairnessBounds};
use fairness_ranking::ranking::quality;
use fairness_ranking::ranking::Permutation;
use fairrank_engine::batch::{BatchSpec, JobState};
use fairrank_engine::{Engine, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let data = GermanCredit::generate(&mut rng);
    let n = 60;

    let idx = data.sample_indices(n, &mut rng);
    let all_scores = data.credit_amounts();
    let scores: Vec<f64> = idx.iter().map(|&i| all_scores[i]).collect();
    let known = data.sex_age_groups().subset(&idx); // 4 groups, known
    let unknown = data.housing_groups().subset(&idx); // 3 groups, unknown
    let known_bounds = FairnessBounds::from_assignment(&known);
    let unknown_bounds = FairnessBounds::from_assignment(&unknown);

    // one chunk per algorithm; only the known attribute enters the jobs
    let panel = Panel {
        theta: 1.0,
        noise_sd: 0.0,
    };
    let algorithms = Algorithm::all();
    let chunks = algorithms
        .iter()
        .enumerate()
        .map(|(i, &alg)| {
            cell_job(
                alg,
                scores.clone(),
                known.as_slice().to_vec(),
                panel,
                15,
                99 + i as u64,
            )
        })
        .collect();

    let engine = Engine::new(EngineConfig::default());
    let job = engine
        .submit_batch(BatchSpec { chunks })
        .expect("batch accepted");
    let snapshot = job.wait();
    assert_eq!(snapshot.state, JobState::Done, "{:?}", snapshot.error);

    let mut table = Table::new(vec![
        "algorithm".into(),
        "NDCG".into(),
        "%P-fair (Sex-Age, known)".into(),
        "%P-fair (Housing, unknown)".into(),
    ])
    .with_title(format!(
        "German Credit, n = {n} (algorithms only see Sex-Age; job {} on the engine core)",
        snapshot.id
    ));
    for (alg, result) in algorithms.iter().zip(&snapshot.results) {
        let pi = Permutation::from_order(result.ranking.clone()).expect("valid ranking");
        table.add_row(vec![
            alg.label().to_string(),
            format!("{:.4}", quality::ndcg(&pi, &scores).unwrap()),
            format!(
                "{:.1}",
                infeasible::pfair_percentage(&pi, &known, &known_bounds).unwrap()
            ),
            format!(
                "{:.1}",
                infeasible::pfair_percentage(&pi, &unknown, &unknown_bounds).unwrap()
            ),
        ]);
    }
    println!("{}", table.render());
}
