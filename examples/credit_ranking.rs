//! German-Credit head-to-head: every algorithm of the paper's Section V
//! on one size-60 instance, evaluated on both the known (Sex-Age) and
//! the unknown (Housing) attribute.
//!
//! ```sh
//! cargo run --example credit_ranking
//! ```

use fairness_ranking::baselines::{self, DetConstSortConfig, IpfConfig};
use fairness_ranking::datasets::GermanCredit;
use fairness_ranking::eval::table::Table;
use fairness_ranking::fairness::{infeasible, FairnessBounds};
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::ranking::quality::{self, Discount};
use fairness_ranking::ranking::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let data = GermanCredit::generate(&mut rng);
    let n = 60;

    let idx = data.sample_indices(n, &mut rng);
    let all_scores = data.credit_amounts();
    let scores: Vec<f64> = idx.iter().map(|&i| all_scores[i]).collect();
    let known = data.sex_age_groups().subset(&idx); // 4 groups, known
    let unknown = data.housing_groups().subset(&idx); // 3 groups, unknown
    let known_bounds = FairnessBounds::from_assignment(&known);
    let unknown_bounds = FairnessBounds::from_assignment(&unknown);

    let input = baselines::weakly_fair_ranking(&scores, &known, &known_bounds);

    let mut outputs: Vec<(&str, Permutation)> = vec![("weakly-fair input", input.clone())];
    outputs.push((
        "DetConstSort",
        baselines::det_const_sort(
            &scores,
            &known,
            &known_bounds,
            &DetConstSortConfig::default(),
            &mut rng,
        )
        .unwrap(),
    ));
    outputs.push((
        "ApproxMultiValuedIPF",
        baselines::approx_multi_valued_ipf(
            &input,
            &known,
            &known_bounds,
            &IpfConfig::default(),
            &mut rng,
        )
        .unwrap()
        .ranking,
    ));
    let tables = known_bounds.tables(n);
    outputs.push((
        "ILP (exact DP)",
        baselines::optimal_fair_ranking_dp(&scores, &known, &tables, Discount::Log2).unwrap(),
    ));
    outputs.push((
        "Mallows θ=1 (1 sample)",
        MallowsFairRanker::new(1.0, 1, Criterion::FirstSample)
            .unwrap()
            .rank(&input, &mut rng)
            .unwrap()
            .ranking,
    ));
    outputs.push((
        "Mallows θ=1 (best of 15)",
        MallowsFairRanker::new(1.0, 15, Criterion::MaxNdcg(scores.clone()))
            .unwrap()
            .rank(&input, &mut rng)
            .unwrap()
            .ranking,
    ));

    let mut table = Table::new(vec![
        "algorithm".into(),
        "NDCG".into(),
        "%P-fair (Sex-Age, known)".into(),
        "%P-fair (Housing, unknown)".into(),
    ])
    .with_title(format!(
        "German Credit, n = {n} (algorithms only see Sex-Age)"
    ));
    for (name, pi) in &outputs {
        table.add_row(vec![
            name.to_string(),
            format!("{:.4}", quality::ndcg(pi, &scores).unwrap()),
            format!(
                "{:.1}",
                infeasible::pfair_percentage(pi, &known, &known_bounds).unwrap()
            ),
            format!(
                "{:.1}",
                infeasible::pfair_percentage(pi, &unknown, &unknown_bounds).unwrap()
            ),
        ]);
    }
    println!("{}", table.render());
}
