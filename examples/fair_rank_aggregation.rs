//! Fair rank aggregation: the pipeline sketched in the paper's related
//! work (Wei et al. / Chakraborty et al.) with Mallows randomization as
//! the fairness stage — aggregate a committee's votes into a consensus,
//! then post-process the consensus for robust fairness.
//!
//! ```sh
//! cargo run --example fair_rank_aggregation
//! ```

use fairness_ranking::aggregation::{
    borda, footrule_optimal, kwik_sort, local_search, total_kendall_distance,
};
use fairness_ranking::eval::table::Table;
use fairness_ranking::fairness::{infeasible, FairnessBounds, GroupAssignment};
use fairness_ranking::mallows::MallowsModel;
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::ranking::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let n = 12;

    // A committee of 9 voters whose preferences are Mallows noise around
    // a ground-truth ranking that happens to be group-segregated.
    let truth = Permutation::identity(n);
    let voter_model = MallowsModel::new(truth.clone(), 0.9).unwrap();
    let votes = voter_model.sample_many(9, &mut rng);

    // Hidden demographics: first half of the items is group 0.
    let groups = GroupAssignment::binary_split(n, n / 2);
    let bounds = FairnessBounds::from_assignment(&groups);

    let kwik = kwik_sort(&votes, &mut rng).unwrap();
    let aggregates: Vec<(&str, Permutation)> = vec![
        ("Borda", borda(&votes).unwrap()),
        ("Footrule-optimal", footrule_optimal(&votes).unwrap()),
        (
            "KwikSort + local search",
            local_search(&kwik, &votes).unwrap(),
        ),
    ];

    let mut table = Table::new(vec![
        "consensus".into(),
        "total KT to votes".into(),
        "infeasible index".into(),
        "after Mallows θ=0.5 (best-of-15 min-II)".into(),
    ])
    .with_title(format!(
        "Committee of {} voters ranking {n} candidates",
        votes.len()
    ));

    for (name, consensus) in &aggregates {
        let d = total_kendall_distance(consensus, &votes).unwrap();
        let ii = infeasible::two_sided_infeasible_index(consensus, &groups, &bounds).unwrap();
        // fairness stage: Algorithm 1 with the min-II criterion
        let ranker = MallowsFairRanker::new(
            0.5,
            15,
            Criterion::MinInfeasibleIndex {
                groups: groups.clone(),
                bounds: bounds.clone(),
            },
        )
        .unwrap();
        let out = ranker.rank(consensus, &mut rng).unwrap();
        table.add_row(vec![
            name.to_string(),
            d.to_string(),
            ii.to_string(),
            format!("II = {}", out.criterion_value as usize),
        ]);
    }
    println!("{}", table.render());
    println!("The consensus stays close to the votes; the Mallows stage repairs its fairness.");
}
