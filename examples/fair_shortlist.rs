//! Fair shortlist selection three ways.
//!
//! A hiring pipeline must pick an ordered shortlist of `k = 10` from 60
//! applicants. This example contrasts the workspace's three shortlist
//! tools on the same pool:
//!
//! 1. **Exact fair top-k** (`fair_baselines::fair_top_k`) — DCG-optimal
//!    under per-prefix proportion bounds; needs the attribute.
//! 2. **FA*IR** (`fair_baselines::fa_ir`) — binomial-tested minimum
//!    representation of one protected group; needs the attribute.
//! 3. **Truncated Mallows** (`mallows_model::TopKMallows`) — oblivious
//!    randomized shortlists in `O(k log n)` per draw; never sees the
//!    attribute.
//!
//! ```sh
//! cargo run --example fair_shortlist
//! ```

use fairness_ranking::baselines::{fa_ir, fair_top_k, FaIrConfig, FairnessMode};
use fairness_ranking::fairness::{FairnessBounds, GroupAssignment};
use fairness_ranking::mallows::TopKMallows;
use fairness_ranking::ranking::quality::Discount;
use fairness_ranking::ranking::Permutation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N: usize = 60;
const K: usize = 10;

fn dcg(items: &[usize], scores: &[f64]) -> f64 {
    items
        .iter()
        .enumerate()
        .map(|(i, &item)| scores[item] * Discount::Log2.at(i + 1))
        .sum()
}

fn describe(label: &str, items: &[usize], scores: &[f64], groups: &GroupAssignment) {
    let minority = items.iter().filter(|&&i| groups.group_of(i) == 1).count();
    println!(
        "{label:<28} DCG@{K} = {:>6.3}   minority in shortlist: {minority}/{K}",
        dcg(items, scores),
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 25 % minority (group 1) whose scores carry a strong screening bias.
    let groups =
        GroupAssignment::new((0..N).map(|i| usize::from(i % 4 == 0)).collect(), 2).unwrap();
    let scores: Vec<f64> = (0..N)
        .map(|i| {
            let base: f64 = rng.random_range(0.0..1.0);
            if groups.group_of(i) == 1 {
                base * 0.55 // strong systematic screening bias
            } else {
                base
            }
        })
        .collect();

    let score_order = Permutation::sorted_by_scores_desc(&scores);
    println!("pool: {N} candidates, 25% minority with biased scores\n");

    // 0. plain top-k: the unfair reference.
    describe("top-k by score", score_order.prefix(K), &scores, &groups);

    // 1. exact DCG-optimal fair top-k, minority share within ±2 % of
    //    its pool proportion, enforced on every shortlist prefix.
    let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.02);
    let exact = fair_top_k(
        &scores,
        &groups,
        &bounds,
        K,
        FairnessMode::Strong,
        Discount::Log2,
    )
    .expect("bounds are feasible for this pool");
    describe("exact fair top-k (strong)", &exact, &scores, &groups);

    // 2. FA*IR with the minority as protected group at its pool share.
    let fa = fa_ir(
        &scores,
        &groups,
        1,
        K,
        &FaIrConfig {
            min_proportion: 0.4,
            significance: 0.1,
            adjust: false,
        },
    )
    .expect("protected pool is large enough");
    describe("FA*IR (p=0.4, α=0.1)", &fa, &scores, &groups);

    // 3. oblivious Mallows shortlist: one randomized draw (Algorithm 1
    //    with m = 1), plus the long-run average to show the expectation.
    let sampler = TopKMallows::new(score_order, 0.1, K).expect("valid parameters");
    let draw = sampler.sample(&mut rng);
    describe("Mallows top-k θ=0.1 (draw)", &draw, &scores, &groups);
    let draws = 500;
    let (mut mean_minority, mut mean_dcg) = (0.0f64, 0.0f64);
    for _ in 0..draws {
        let s = sampler.sample(&mut rng);
        mean_minority +=
            s.iter().filter(|&&i| groups.group_of(i) == 1).count() as f64 / draws as f64;
        mean_dcg += dcg(&s, &scores) / draws as f64;
    }
    println!(
        "{:<28} DCG@{K} = {mean_dcg:>6.3}   minority in shortlist: {mean_minority:.2}/{K}",
        "Mallows θ=0.1 (mean of 500)",
    );

    println!(
        "\nThe attribute-aware methods enforce their representation targets at a\n\
         tiny DCG cost. The oblivious Mallows shortlist lifts expected minority\n\
         presence without ever reading the `groups` column, but pays more DCG\n\
         for it — the price of fairness without the protected attribute, which\n\
         is exactly the trade the paper studies."
    );
}
