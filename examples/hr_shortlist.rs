//! HR-automation scenario from the paper's introduction: a recruiter
//! receives hundreds of applications and must shortlist the top 10 for
//! interviews. Résumés carry no protected attributes (collecting them
//! may even be illegal), yet the employer is liable for indirect
//! discrimination. The oblivious [`RobustRanker`] mitigates this without
//! ever touching group labels.
//!
//! ```sh
//! cargo run --example hr_shortlist
//! ```

use fairness_ranking::fairness::{infeasible, FairnessBounds, GroupAssignment};
use fairness_ranking::mallows_ranker::oblivious::RobustRanker;
use fairness_ranking::ranking::{quality, Permutation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 200;

    // Hidden demographics: 40 % of applicants belong to group 1, whose
    // résumé scores carry a systematic -0.15 bias from the upstream
    // screening model. Neither the scores file nor the ranker sees this.
    let hidden: GroupAssignment =
        GroupAssignment::new((0..n).map(|i| usize::from(i % 5 < 2)).collect(), 2).unwrap();
    let scores: Vec<f64> = (0..n)
        .map(|i| {
            let base: f64 = rng.random_range(0.0..1.0);
            if hidden.group_of(i) == 1 {
                (base - 0.15).max(0.0)
            } else {
                base
            }
        })
        .collect();

    let bounds = FairnessBounds::from_assignment_with_tolerance(&hidden, 0.1);
    let shortlist_size = 10;

    let report = |name: &str, pi: &Permutation| {
        let in_short =
            hidden.count_in_prefix(pi.as_order(), shortlist_size, 1) as f64 / shortlist_size as f64;
        println!(
            "{name:<22} NDCG@10 {:.4}   group-1 share of shortlist {:.0}% (population 40%)   II {:>3}",
            quality::ndcg_at(pi, &scores, shortlist_size, Default::default()).unwrap(),
            in_short * 100.0,
            infeasible::two_sided_infeasible_index(pi, &hidden, &bounds).unwrap(),
        );
    };

    let baseline = Permutation::sorted_by_scores_desc(&scores);
    report("score ranking", &baseline);

    // Oblivious robust re-ranking: a normalized displacement of 0.15
    // lets borderline candidates (group 1's best sit just below the
    // score cutoff) reach the shortlist.
    let ranker = RobustRanker::builder().target_displacement(0.15).build();
    for trial in 0..3 {
        let out = ranker.rank(&scores, &mut rng).unwrap();
        report(&format!("robust ranking #{}", trial + 1), &out.ranking);
    }
    println!(
        "\n(resolved Mallows dispersion for n = {n}: θ = {:.3})",
        ranker.resolve_theta(n)
    );
}
