//! Quickstart: post-process a score ranking with Mallows noise.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fairness_ranking::fairness::{infeasible, FairnessBounds, GroupAssignment};
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::ranking::{quality, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Ten candidates; the first five (group 0) happen to score higher.
    let scores = vec![0.95, 0.90, 0.85, 0.80, 0.75, 0.50, 0.45, 0.40, 0.35, 0.30];
    let groups = GroupAssignment::binary_split(10, 5);
    let bounds = FairnessBounds::from_assignment(&groups);

    // The quality-optimal ranking is fully segregated.
    let baseline = Permutation::sorted_by_scores_desc(&scores);
    let baseline_ii = infeasible::two_sided_infeasible_index(&baseline, &groups, &bounds).unwrap();
    println!("baseline ranking:       {baseline}");
    println!(
        "baseline NDCG:          {:.4}",
        quality::ndcg(&baseline, &scores).unwrap()
    );
    println!("baseline infeasible idx: {baseline_ii}  (groups never seen by the algorithm)");

    // Algorithm 1: one sample from M(baseline, θ = 0.2). The algorithm
    // never sees `groups` — the fairness gain is oblivious.
    let ranker = MallowsFairRanker::new(0.2, 1, Criterion::FirstSample).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let out = ranker.rank(&baseline, &mut rng).unwrap();
    let out_ii = infeasible::two_sided_infeasible_index(&out.ranking, &groups, &bounds).unwrap();
    let out_ndcg = quality::ndcg(&out.ranking, &scores).unwrap();

    println!("\nrandomized ranking:      {}", out.ranking);
    println!("randomized NDCG:         {out_ndcg:.4}");
    println!("randomized infeasible idx: {out_ii}");
    println!(
        "\nMallows noise traded {:.1}% NDCG for a {baseline_ii} → {out_ii} infeasible-index improvement",
        (1.0 - out_ndcg) * 100.0,
    );
}
