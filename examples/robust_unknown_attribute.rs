//! Robustness demonstration: how does each method's fairness w.r.t. an
//! attribute it has NEVER seen degrade as the hidden attribute's
//! correlation with the score changes? This is the paper's central
//! claim, reduced to a single self-contained simulation.
//!
//! ```sh
//! cargo run --example robust_unknown_attribute
//! ```

use fairness_ranking::baselines;
use fairness_ranking::eval::stats;
use fairness_ranking::eval::table::Table;
use fairness_ranking::fairness::{infeasible, FairnessBounds, GroupAssignment};
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::ranking::quality::Discount;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 40;
    let reps = 30;

    // Known attribute: two balanced groups, uncorrelated with scores.
    // Hidden attribute: two balanced groups whose scores differ by `bias`.
    let mut table = Table::new(vec![
        "hidden bias".into(),
        "score sort".into(),
        "ILP (known attr)".into(),
        "Mallows θ=0.1".into(),
    ])
    .with_title(format!(
        "Mean %P-fair positions w.r.t. the HIDDEN attribute (n = {n}, {reps} repetitions)"
    ));

    for bias in [0.0f64, 0.2, 0.4, 0.8] {
        let mut score_sort = Vec::new();
        let mut ilp = Vec::new();
        let mut mallows = Vec::new();
        for _ in 0..reps {
            let known = GroupAssignment::new((0..n).map(|i| i % 2).collect(), 2).unwrap();
            let hidden =
                GroupAssignment::new((0..n).map(|i| usize::from(i < n / 2)).collect(), 2).unwrap();
            let scores: Vec<f64> = (0..n)
                .map(|i| {
                    let base: f64 = rng.random_range(0.0..1.0);
                    if hidden.group_of(i) == 0 {
                        base + bias
                    } else {
                        base
                    }
                })
                .collect();
            let known_bounds = FairnessBounds::from_assignment(&known);
            let hidden_bounds = FairnessBounds::from_assignment_with_tolerance(&hidden, 0.1);

            let baseline = fairness_ranking::ranking::Permutation::sorted_by_scores_desc(&scores);
            score_sort
                .push(infeasible::pfair_percentage(&baseline, &hidden, &hidden_bounds).unwrap());

            let tables = known_bounds.tables(n);
            let ilp_pi =
                baselines::optimal_fair_ranking_dp(&scores, &known, &tables, Discount::Log2)
                    .unwrap();
            ilp.push(infeasible::pfair_percentage(&ilp_pi, &hidden, &hidden_bounds).unwrap());

            let m = MallowsFairRanker::new(0.1, 1, Criterion::FirstSample)
                .unwrap()
                .rank(&baseline, &mut rng)
                .unwrap();
            mallows
                .push(infeasible::pfair_percentage(&m.ranking, &hidden, &hidden_bounds).unwrap());
        }
        table.add_row(vec![
            format!("{bias:.1}"),
            format!("{:.1}", stats::mean(&score_sort)),
            format!("{:.1}", stats::mean(&ilp)),
            format!("{:.1}", stats::mean(&mallows)),
        ]);
    }
    println!("{}", table.render());
    println!("Fairness constraints on the KNOWN attribute cannot protect the hidden one;");
    println!("Mallows randomization degrades gracefully as the hidden bias grows.");
}
