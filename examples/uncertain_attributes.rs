//! Ranking under *uncertain* protected attributes.
//!
//! Real pipelines rarely have clean group labels: membership is
//! inferred from proxies and is wrong some fraction of the time. This
//! example models that uncertainty explicitly with
//! [`SoftGroupAssignment`] and shows
//!
//! 1. how the **expected** infeasible index (computed exactly by the
//!    Poisson-binomial DP, no sampling) responds to label noise: the
//!    segregated, score-sorted ranking's measured unfairness decays
//!    toward a common noise floor as the labels lose information, while
//!    an already-mixed ranking barely moves;
//! 2. that the Mallows-randomized ranking stays at or below the
//!    score-sorted one at **every** noise level simultaneously: it
//!    never used the labels, so mislabelling cannot selectively hurt
//!    it.
//!
//! ```sh
//! cargo run --example uncertain_attributes
//! ```

use fairness_ranking::fairness::{FairnessBounds, GroupAssignment, SoftGroupAssignment};
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::ranking::Permutation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N: usize = 40;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // True demographics: two equal groups; group 1's scores are biased
    // downward, so the score-sorted ranking over-represents group 0 on
    // top.
    let truth = GroupAssignment::new((0..N).map(|i| usize::from(i % 2 == 1)).collect(), 2).unwrap();
    let scores: Vec<f64> = (0..N)
        .map(|i| {
            let base: f64 = rng.random_range(0.0..1.0);
            if truth.group_of(i) == 1 {
                base * 0.7
            } else {
                base
            }
        })
        .collect();
    let bounds = FairnessBounds::from_assignment_with_tolerance(&truth, 0.1);
    let sorted = Permutation::sorted_by_scores_desc(&scores);

    // Oblivious post-processing: one Mallows draw at θ = 0.4.
    let ranker = MallowsFairRanker::new(0.4, 1, Criterion::FirstSample).expect("valid parameters");
    let randomized = ranker
        .rank(&sorted, &mut rng)
        .expect("consistent shapes")
        .ranking;

    println!("expected two-sided infeasible index (exact, no sampling)\n");
    println!(
        "{:<14}{:>16}{:>20}",
        "label noise ε", "score-sorted", "Mallows θ=0.4"
    );
    for eps in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let soft = SoftGroupAssignment::from_noisy_labels(&truth, eps).expect("ε is a probability");
        let base = soft
            .expected_infeasible_index(&sorted, &bounds)
            .expect("consistent shapes");
        let noisy = soft
            .expected_infeasible_index(&randomized, &bounds)
            .expect("consistent shapes");
        println!("{eps:<14.1}{base:>16.2}{noisy:>20.2}");
    }

    println!(
        "\nAs labels lose information the two rankings become statistically\n\
         indistinguishable: the segregated ranking's expected index decays\n\
         toward the common noise floor while the randomized one barely moves —\n\
         and the randomized ranking stays at or below the score-sorted one at\n\
         every ε. Obliviousness is robust to mislabelling by construction."
    );
}
