//! Minimal, dependency-free stand-in for the `criterion` benchmarking
//! crate (the offline build container cannot fetch the real one).
//!
//! It implements the API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`criterion_group!`], [`criterion_main!`] — with a simple
//! wall-clock measurement loop: warm up, then run timed batches and
//! report the median per-iteration time to stdout. No statistics
//! machinery, no plots; good enough to compare hot paths and to keep
//! `cargo bench` green.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            filter: std::env::args().nth(1).filter(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Untimed warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Timed measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: Vec::new(),
            sample_target: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("bench {id:<50} (no samples)");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "bench {id:<50} median {:>12} ns/iter  best {:>12} ns/iter  ({} samples)",
            median,
            best,
            samples.len()
        );
    }
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: Vec<u64>,
    sample_target: usize,
}

impl Bencher {
    /// Measure `routine`: warm up, calibrate a batch size, then run
    /// timed batches until the sample target or time budget is hit.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        // calibrate batch size so one batch is ≥ ~50 µs
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            if start.elapsed() >= Duration::from_micros(50) || batch >= (1 << 20) {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        while self.samples.len() < self.sample_target && Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as u64 / batch;
            self.samples.push(per_iter);
        }
        if self.samples.is_empty() {
            // budget exhausted by calibration: record one sample
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as u64);
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Close the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Prevent the optimizer from deleting a value (re-export of the std
/// implementation; some benches import it from `criterion`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group: either the simple
/// `criterion_group!(benches, f1, f2)` form or the configured
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        let mut calls = 0;
        for n in [1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| n * 2);
                calls += 1;
            });
        }
        g.finish();
        assert_eq!(calls, 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).0, "0.5");
    }
}
