//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The offline build container cannot fetch `proptest`, so this shim
//! implements the slice of its API the workspace's property tests use:
//! the [`Strategy`] trait with [`Strategy::prop_map`], range and
//! [`any`] strategies, [`collection::vec`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`] macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! seed (fully reproducible runs) and failing inputs are *not* shrunk —
//! the failing case is printed verbatim instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Number of random cases each `proptest!` test body runs.
pub const DEFAULT_CASES: u32 = 64;

/// A generator of test values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (re-draws up to 1000 times).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 draws in a row", self.whence);
    }
}

/// A strategy producing one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Full-range strategy for a primitive type (proptest's `any::<T>()`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types supported by [`any`].
pub trait ArbitraryValue {
    /// One unconstrained draw.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        // finite, moderately sized values; property tests here never
        // rely on NaN/inf generation
        rng.random_range(-1.0e6..1.0e6)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! impl_range_from_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_from_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;

    /// Lengths accepted by [`vec`]: a fixed size or a size range.
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive bounds.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for std::ops::RangeTo<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.end > 0, "empty size range");
            (0, self.end - 1)
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { element, min, max }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, one glob import away.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };

    /// `prop::collection::…` paths used by the tests.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run `cases` deterministic property cases; used by [`proptest!`].
pub fn run_cases(name: &str, cases: u32, mut case: impl FnMut(&mut StdRng, u32)) {
    use rand::SeedableRng;
    // one fixed master seed per test name keeps runs reproducible while
    // decorrelating sibling tests
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cases {
        case(&mut rng, i);
    }
}

/// Failure type of a property-test body (kept so bodies can
/// `return Ok(())` early or use `?`, as with real proptest).
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError::Fail(e.to_string())
    }
}

/// Assert inside a property test (no shrinking: plain panic with the
/// formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(()); // skip this case
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that runs [`DEFAULT_CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $crate::DEFAULT_CASES, |rng, _case| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                #[allow(clippy::redundant_closure_call)]
                let result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property `{}` failed: {e}", stringify!($name));
                }
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.5f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(any::<u64>(), 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn map_applies(v in prop::collection::vec(any::<u64>(), 0..6).prop_map(|v| v.len())) {
            prop_assert!(v < 6);
        }

        #[test]
        fn tuples_and_assume((a, b) in (0usize..5, 0usize..5)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_cases("stable", 8, |rng, _| {
            first.push((0usize..100).generate(rng));
        });
        let mut second = Vec::new();
        crate::run_cases("stable", 8, |rng, _| {
            second.push((0usize..100).generate(rng));
        });
        assert_eq!(first, second);
    }

    #[test]
    fn filter_rejects() {
        crate::run_cases("filter", 16, |rng, _| {
            let v = (0usize..10)
                .prop_filter("even", |x| x % 2 == 0)
                .generate(rng);
            assert_eq!(v % 2, 0);
        });
    }
}
