//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry,
//! so the workspace ships the narrow slice of the `rand` 0.9 API it
//! actually uses: [`Rng`]/[`RngExt`] with `random`/`random_range`,
//! [`SeedableRng::seed_from_u64`], a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64), and
//! [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! Determinism is a feature here, not a compromise: every sampler in
//! the workspace (and every engine job) is seeded explicitly, and the
//! paper's experiments depend on bit-reproducible streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The object-safe core of a random generator: just the raw bit
/// stream. Mirrors `rand::RngCore`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (the `rand 0.9` `Rng` extension-trait structure, which
/// is what lets `rng.random()` resolve on `&mut R` even when
/// `R: ?Sized`).
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type (`f64` in `[0, 1)`,
    /// full-range integers, fair `bool`).
    fn random<T: UniformPrimitive>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in the given (half-open or inclusive)
    /// range. Panics on an empty range, like `rand` proper.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (low, high_inclusive) = range.bounds();
        T::sample_inclusive(low, high_inclusive, self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension alias kept for call sites written against `rand 0.9`'s
/// split `Rng`/`RngExt` surface; everything lives on [`Rng`] here.
pub use Rng as RngExt;

/// Primitive types [`Rng::random`] can produce.
pub trait UniformPrimitive {
    /// Draw one uniformly random value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformPrimitive for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformPrimitive for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformPrimitive for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformPrimitive for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformPrimitive for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformPrimitive for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::random_range`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high_inclusive]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high_inclusive: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span == 0 {
                    // full 128-bit span cannot happen for <=64-bit types
                    unreachable!("range span overflow");
                }
                // Lemire-style rejection to keep the draw unbiased.
                let zone = u128::from(u64::MAX) + 1 - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(
            low <= high && low.is_finite() && high.is_finite(),
            "bad float range"
        );
        let u = f64::from_rng(rng);
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(
            low <= high && low.is_finite() && high.is_finite(),
            "bad float range"
        );
        let u = f32::from_rng(rng);
        low + u * (high - low)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait IntoUniformRange<T> {
    /// `(low, high_inclusive)` bounds of the range.
    fn bounds(self) -> (T, T);
}

impl IntoUniformRange<f64> for Range<f64> {
    fn bounds(self) -> (f64, f64) {
        // half-open float range: the top endpoint has probability ~0, so
        // treating it as inclusive matches `rand` closely enough
        (self.start, self.end)
    }
}

impl IntoUniformRange<f32> for Range<f32> {
    fn bounds(self) -> (f32, f32) {
        (self.start, self.end)
    }
}

impl IntoUniformRange<f64> for RangeInclusive<f64> {
    fn bounds(self) -> (f64, f64) {
        (*self.start(), *self.end())
    }
}

macro_rules! impl_into_range_int {
    ($($t:ty),*) => {$(
        impl IntoUniformRange<$t> for Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "cannot sample from an empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_into_range_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Seedable RNGs (the workspace only uses [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion. Not cryptographic — statistical
    /// quality only, which is all the samplers need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small-state alias (same engine; kept for API familiarity).
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice helpers (`shuffle`, `choose`).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_uniform(i + 1, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_uniform(self.len(), rng)])
            }
        }
    }

    trait SampleBelow {
        fn sample_uniform<R: RngCore + ?Sized>(bound: usize, rng: &mut R) -> usize;
    }

    impl SampleBelow for usize {
        fn sample_uniform<R: RngCore + ?Sized>(bound: usize, rng: &mut R) -> usize {
            <usize as super::SampleUniform>::sample_inclusive(0, bound - 1, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn int_ranges_hit_all_values_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn inclusive_range_reaches_endpoint() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw_top = false;
        for _ in 0..1_000 {
            if rng.random_range(0..=3usize) == 3 {
                saw_top = true;
            }
        }
        assert!(saw_top);
    }

    #[test]
    fn negative_float_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x: f64 = rng.random_range(-10.0..10.0);
            assert!((-10.0..10.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng).is_some());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let _: usize = rng.random_range(3..3usize);
    }
}
