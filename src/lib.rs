//! Umbrella crate re-exporting the whole fairness-ranking workspace,
//! plus the cross-crate [`pipeline`] combining rank aggregation with
//! fair post-processing.

#![forbid(unsafe_code)]
pub mod pipeline;

pub use assignment_solver as assignment;
pub use eval_stats as eval;
pub use fair_baselines as baselines;
pub use fair_datasets as datasets;
pub use fair_mallows as mallows_ranker;
pub use fairness_metrics as fairness;
pub use lp_solver as lp;
pub use mallows_model as mallows;
pub use rank_aggregation as aggregation;
pub use ranking_core as ranking;
