//! End-to-end fair rank aggregation (Wei et al. / Chakraborty et al.
//! style): aggregate a vote profile into a consensus, then post-process
//! the consensus for fairness.
//!
//! The paper situates its Mallows randomization exactly here — "the
//! central ranking could be either the result of a rank aggregation
//! problem or any ranking in general" (Section IV-A). This module wires
//! the workspace's aggregators ([`rank_aggregation`]) to its fair
//! post-processors ([`fair_baselines`], [`fair_mallows`]) behind one
//! configuration type, so a downstream user gets the whole pipeline in
//! a single call:
//!
//! ```
//! use fairness_ranking::pipeline::{FairAggregationPipeline, Aggregator, PostProcessor};
//! use fairness_ranking::fairness::{FairnessBounds, GroupAssignment};
//! use fairness_ranking::ranking::Permutation;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let votes = vec![
//!     Permutation::from_order(vec![0, 1, 2, 3]).unwrap(),
//!     Permutation::from_order(vec![1, 0, 2, 3]).unwrap(),
//!     Permutation::from_order(vec![0, 1, 3, 2]).unwrap(),
//! ];
//! let groups = GroupAssignment::new(vec![0, 0, 1, 1], 2).unwrap();
//! let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.25);
//! let pipeline = FairAggregationPipeline::new(
//!     Aggregator::Borda,
//!     PostProcessor::Mallows { theta: 1.0, samples: 15 },
//! );
//! let mut rng = StdRng::seed_from_u64(7);
//! let out = pipeline.run(&votes, &groups, &bounds, &mut rng).unwrap();
//! assert_eq!(out.fair_ranking.len(), 4);
//! ```

use fair_baselines::{approx_multi_valued_ipf, gr_binary_ipf, optimal_fair_ranking_kt, IpfConfig};
use fair_mallows::{Criterion, MallowsFairRanker};
use fairness_metrics::{infeasible, FairnessBounds, GroupAssignment};
use rand::Rng;
use rank_aggregation::markov::{markov_chain_aggregate, ChainKind, MarkovConfig};
use rank_aggregation::{borda, copeland, footrule_optimal, kwik_sort, local_search};
use ranking_core::Permutation;

/// Aggregation stage of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// Positional (mean-rank) aggregation.
    Borda,
    /// Pairwise-majority aggregation.
    Copeland,
    /// Footrule-optimal consensus via min-cost matching.
    Footrule,
    /// KwikSort pivot approximation polished by adjacent-swap local
    /// search — the workspace's best Kemeny heuristic.
    Kemeny,
    /// MC4 Markov-chain aggregation.
    MarkovMc4,
}

impl Aggregator {
    /// Every aggregation stage, in registry order.
    pub const ALL: [Aggregator; 5] = [
        Aggregator::Borda,
        Aggregator::Copeland,
        Aggregator::Footrule,
        Aggregator::Kemeny,
        Aggregator::MarkovMc4,
    ];

    /// Canonical name shared by the CLI, the serving engine's registry
    /// and the HTTP API.
    pub fn name(self) -> &'static str {
        match self {
            Aggregator::Borda => "borda",
            Aggregator::Copeland => "copeland",
            Aggregator::Footrule => "footrule",
            Aggregator::Kemeny => "kemeny",
            Aggregator::MarkovMc4 => "markov",
        }
    }

    /// Inverse of [`Aggregator::name`].
    pub fn parse(name: &str) -> Option<Aggregator> {
        Aggregator::ALL.into_iter().find(|a| a.name() == name)
    }
}

/// Fairness post-processing stage of the pipeline.
#[derive(Debug, Clone)]
pub enum PostProcessor {
    /// No post-processing: return the consensus unchanged (baseline).
    None,
    /// The paper's Algorithm 1: Mallows randomization around the
    /// consensus, keeping the sample closest in Kendall tau (the
    /// distance-efficiency objective of the aggregation setting).
    /// Group-oblivious — never reads the protected attribute.
    Mallows {
        /// Dispersion θ of the noise.
        theta: f64,
        /// Number of samples `m` (best-of-`m`).
        samples: usize,
    },
    /// GrBinaryIPF: exact minimum-Kendall-tau fair ranking (requires
    /// exactly two groups).
    GrBinaryIpf,
    /// Exact minimum-Kendall-tau fair ranking for any number of groups
    /// (`n^{O(g)}` count-vector DP; Chakraborty et al., Thm. 3.4).
    ExactKtDp,
    /// ApproxMultiValuedIPF: minimum-footrule fair matching (any number
    /// of groups).
    ApproxIpf,
}

impl PostProcessor {
    /// Canonical names of every post-processing stage, in registry
    /// order (shared by the CLI, the engine registry and the HTTP API).
    pub const NAMES: [&'static str; 5] = ["none", "mallows", "gr-binary", "exact-kt", "ipf"];

    /// Canonical name of this stage.
    pub fn name(&self) -> &'static str {
        match self {
            PostProcessor::None => "none",
            PostProcessor::Mallows { .. } => "mallows",
            PostProcessor::GrBinaryIpf => "gr-binary",
            PostProcessor::ExactKtDp => "exact-kt",
            PostProcessor::ApproxIpf => "ipf",
        }
    }

    /// Inverse of [`PostProcessor::name`]; `theta`/`samples` provide
    /// the Mallows parameters (ignored by the other stages).
    pub fn parse(name: &str, theta: f64, samples: usize) -> Option<PostProcessor> {
        match name {
            "none" => Some(PostProcessor::None),
            "mallows" => Some(PostProcessor::Mallows { theta, samples }),
            "gr-binary" => Some(PostProcessor::GrBinaryIpf),
            "exact-kt" => Some(PostProcessor::ExactKtDp),
            "ipf" => Some(PostProcessor::ApproxIpf),
            _ => None,
        }
    }
}

/// A named pipeline configuration: which aggregator feeds which
/// post-processor. This is the single naming authority shared by
/// `fairrank pipeline`, the engine's algorithm registry and the
/// `POST /pipeline` HTTP endpoint, so a spec string accepted by one
/// surface is accepted by all of them.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Aggregation stage.
    pub aggregator: Aggregator,
    /// Post-processing stage.
    pub post: PostProcessor,
}

impl PipelineSpec {
    /// Parse stage names (`theta`/`samples` configure a Mallows stage).
    /// Returns `None` if either name is unknown.
    pub fn parse(method: &str, post: &str, theta: f64, samples: usize) -> Option<PipelineSpec> {
        Some(PipelineSpec {
            aggregator: Aggregator::parse(method)?,
            post: PostProcessor::parse(post, theta, samples)?,
        })
    }

    /// Instantiate the runnable pipeline.
    pub fn build(&self) -> FairAggregationPipeline {
        FairAggregationPipeline::new(self.aggregator, self.post.clone())
    }
}

/// Output of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The consensus produced by the aggregation stage.
    pub consensus: Permutation,
    /// The fairness-post-processed ranking.
    pub fair_ranking: Permutation,
    /// Total Kendall tau distance of the consensus to the votes.
    pub consensus_total_kt: u64,
    /// Total Kendall tau distance of the fair ranking to the votes.
    pub fair_total_kt: u64,
    /// Two-sided infeasible index of the consensus.
    pub consensus_infeasible: usize,
    /// Two-sided infeasible index of the fair ranking.
    pub fair_infeasible: usize,
}

/// Errors raised by the pipeline (any stage).
#[derive(Debug)]
pub enum PipelineError {
    /// Aggregation-stage failure.
    Aggregation(rank_aggregation::AggregationError),
    /// Post-processing failure.
    Baseline(fair_baselines::BaselineError),
    /// Mallows-randomization failure.
    Mallows(fair_mallows::FairMallowsError),
    /// Metric evaluation failure.
    Fairness(fairness_metrics::FairnessError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Aggregation(e) => write!(f, "aggregation: {e}"),
            PipelineError::Baseline(e) => write!(f, "post-processing: {e}"),
            PipelineError::Mallows(e) => write!(f, "mallows: {e}"),
            PipelineError::Fairness(e) => write!(f, "fairness metric: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Aggregation(e) => Some(e),
            PipelineError::Baseline(e) => Some(e),
            PipelineError::Mallows(e) => Some(e),
            PipelineError::Fairness(e) => Some(e),
        }
    }
}

impl From<rank_aggregation::AggregationError> for PipelineError {
    fn from(e: rank_aggregation::AggregationError) -> Self {
        PipelineError::Aggregation(e)
    }
}
impl From<fair_baselines::BaselineError> for PipelineError {
    fn from(e: fair_baselines::BaselineError) -> Self {
        PipelineError::Baseline(e)
    }
}
impl From<fair_mallows::FairMallowsError> for PipelineError {
    fn from(e: fair_mallows::FairMallowsError) -> Self {
        PipelineError::Mallows(e)
    }
}
impl From<fairness_metrics::FairnessError> for PipelineError {
    fn from(e: fairness_metrics::FairnessError) -> Self {
        PipelineError::Fairness(e)
    }
}

/// An aggregation + fair post-processing pipeline (see module docs).
#[derive(Debug, Clone)]
pub struct FairAggregationPipeline {
    aggregator: Aggregator,
    post: PostProcessor,
}

impl FairAggregationPipeline {
    /// Assemble a pipeline from its two stages.
    pub fn new(aggregator: Aggregator, post: PostProcessor) -> Self {
        FairAggregationPipeline { aggregator, post }
    }

    /// The configured aggregation stage.
    pub fn aggregator(&self) -> Aggregator {
        self.aggregator
    }

    /// The configured post-processing stage.
    pub fn post_processor(&self) -> &PostProcessor {
        &self.post
    }

    /// Run the pipeline on a vote profile.
    ///
    /// `groups`/`bounds` drive the group-aware post-processors and the
    /// reported infeasible indices; the Mallows stage ignores them for
    /// ranking (it is oblivious) but they still appear in the report.
    pub fn run<R: Rng + ?Sized>(
        &self,
        votes: &[Permutation],
        groups: &GroupAssignment,
        bounds: &FairnessBounds,
        rng: &mut R,
    ) -> Result<PipelineOutput, PipelineError> {
        let consensus = self.aggregate(votes, rng)?;
        let fair_ranking = self.post_process(&consensus, groups, bounds, rng)?;
        let consensus_total_kt = rank_aggregation::total_kendall_distance(&consensus, votes)?;
        let fair_total_kt = rank_aggregation::total_kendall_distance(&fair_ranking, votes)?;
        let consensus_infeasible =
            infeasible::two_sided_infeasible_index(&consensus, groups, bounds)?;
        let fair_infeasible =
            infeasible::two_sided_infeasible_index(&fair_ranking, groups, bounds)?;
        Ok(PipelineOutput {
            consensus,
            fair_ranking,
            consensus_total_kt,
            fair_total_kt,
            consensus_infeasible,
            fair_infeasible,
        })
    }

    fn aggregate<R: Rng + ?Sized>(
        &self,
        votes: &[Permutation],
        rng: &mut R,
    ) -> Result<Permutation, PipelineError> {
        Ok(match self.aggregator {
            Aggregator::Borda => borda(votes)?,
            Aggregator::Copeland => copeland(votes)?,
            Aggregator::Footrule => footrule_optimal(votes)?,
            Aggregator::Kemeny => {
                let start = kwik_sort(votes, rng)?;
                local_search(&start, votes)?
            }
            Aggregator::MarkovMc4 => markov_chain_aggregate(
                votes,
                &MarkovConfig {
                    kind: ChainKind::Majority,
                    ..Default::default()
                },
            )?,
        })
    }

    fn post_process<R: Rng + ?Sized>(
        &self,
        consensus: &Permutation,
        groups: &GroupAssignment,
        bounds: &FairnessBounds,
        rng: &mut R,
    ) -> Result<Permutation, PipelineError> {
        Ok(match &self.post {
            PostProcessor::None => consensus.clone(),
            PostProcessor::Mallows { theta, samples } => {
                let ranker = MallowsFairRanker::new(*theta, *samples, Criterion::MinKendallTau)?;
                ranker.rank(consensus, rng)?.ranking
            }
            PostProcessor::GrBinaryIpf => gr_binary_ipf(consensus, groups, bounds)?,
            PostProcessor::ExactKtDp => {
                optimal_fair_ranking_kt(consensus, groups, &bounds.tables(consensus.len()))?
            }
            PostProcessor::ApproxIpf => {
                approx_multi_valued_ipf(consensus, groups, bounds, &IpfConfig::default(), rng)?
                    .ranking
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn segregated_votes(n: usize, m: usize) -> Vec<Permutation> {
        // all voters agree on the identity → consensus is segregated when
        // groups are the two halves.
        vec![Permutation::identity(n); m]
    }

    fn halves(n: usize) -> (GroupAssignment, FairnessBounds) {
        let g = GroupAssignment::binary_split(n, n / 2);
        let b = FairnessBounds::from_assignment_with_tolerance(&g, 0.15);
        (g, b)
    }

    #[test]
    fn no_postprocessing_returns_consensus() {
        let votes = segregated_votes(8, 5);
        let (g, b) = halves(8);
        let p = FairAggregationPipeline::new(Aggregator::Borda, PostProcessor::None);
        let mut rng = StdRng::seed_from_u64(1);
        let out = p.run(&votes, &g, &b, &mut rng).unwrap();
        assert_eq!(out.consensus, out.fair_ranking);
        assert_eq!(out.consensus_total_kt, 0); // unanimous profile
    }

    #[test]
    fn every_aggregator_recovers_unanimous_profile() {
        let order = vec![2, 0, 3, 1, 4];
        let votes = vec![Permutation::from_order(order.clone()).unwrap(); 4];
        let (g, b) = halves(5);
        for agg in [
            Aggregator::Borda,
            Aggregator::Copeland,
            Aggregator::Footrule,
            Aggregator::Kemeny,
            Aggregator::MarkovMc4,
        ] {
            let p = FairAggregationPipeline::new(agg, PostProcessor::None);
            let mut rng = StdRng::seed_from_u64(3);
            let out = p.run(&votes, &g, &b, &mut rng).unwrap();
            assert_eq!(out.consensus.as_order(), &order[..], "{agg:?}");
        }
    }

    #[test]
    fn gr_binary_postprocessing_zeroes_infeasible_index() {
        let votes = segregated_votes(10, 3);
        let (g, b) = halves(10);
        let p = FairAggregationPipeline::new(Aggregator::Borda, PostProcessor::GrBinaryIpf);
        let mut rng = StdRng::seed_from_u64(5);
        let out = p.run(&votes, &g, &b, &mut rng).unwrap();
        assert!(
            out.consensus_infeasible > 0,
            "segregated consensus must violate"
        );
        assert_eq!(
            out.fair_infeasible, 0,
            "GrBinaryIPF must produce a fair ranking"
        );
        assert!(
            out.fair_total_kt >= out.consensus_total_kt,
            "fairness costs distance"
        );
    }

    #[test]
    fn exact_kt_dp_matches_gr_binary_on_two_groups() {
        let votes = segregated_votes(10, 3);
        let (g, b) = halves(10);
        let mut rng = StdRng::seed_from_u64(23);
        let merge = FairAggregationPipeline::new(Aggregator::Borda, PostProcessor::GrBinaryIpf)
            .run(&votes, &g, &b, &mut rng)
            .unwrap();
        let dp = FairAggregationPipeline::new(Aggregator::Borda, PostProcessor::ExactKtDp)
            .run(&votes, &g, &b, &mut rng)
            .unwrap();
        assert_eq!(dp.fair_infeasible, 0);
        assert_eq!(
            dp.fair_total_kt, merge.fair_total_kt,
            "both are exact minimizers"
        );
    }

    #[test]
    fn exact_kt_dp_handles_three_groups() {
        let votes = segregated_votes(9, 3);
        let g = GroupAssignment::new(vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3).unwrap();
        let b = FairnessBounds::from_assignment_with_tolerance(&g, 0.1);
        let mut rng = StdRng::seed_from_u64(29);
        let out = FairAggregationPipeline::new(Aggregator::Borda, PostProcessor::ExactKtDp)
            .run(&votes, &g, &b, &mut rng)
            .unwrap();
        assert!(out.fair_infeasible < out.consensus_infeasible);
    }

    #[test]
    fn approx_ipf_postprocessing_reduces_infeasible_index() {
        let votes = segregated_votes(12, 3);
        let (g, b) = halves(12);
        let p = FairAggregationPipeline::new(Aggregator::Kemeny, PostProcessor::ApproxIpf);
        let mut rng = StdRng::seed_from_u64(7);
        let out = p.run(&votes, &g, &b, &mut rng).unwrap();
        assert!(out.fair_infeasible < out.consensus_infeasible);
    }

    #[test]
    fn mallows_postprocessing_is_oblivious_but_reduces_ii_on_average() {
        let votes = segregated_votes(10, 3);
        let (g, b) = halves(10);
        let p = FairAggregationPipeline::new(
            Aggregator::Borda,
            PostProcessor::Mallows {
                theta: 0.3,
                samples: 1,
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 30;
        let mut ii = 0usize;
        let mut base = 0usize;
        for _ in 0..trials {
            let out = p.run(&votes, &g, &b, &mut rng).unwrap();
            ii += out.fair_infeasible;
            base += out.consensus_infeasible;
        }
        assert!(
            ii < base,
            "Mallows noise should reduce mean II: {ii} vs baseline {base}"
        );
    }

    #[test]
    fn empty_votes_propagate_aggregation_error() {
        let (g, b) = halves(4);
        let p = FairAggregationPipeline::new(Aggregator::Borda, PostProcessor::None);
        let mut rng = StdRng::seed_from_u64(13);
        assert!(matches!(
            p.run(&[], &g, &b, &mut rng),
            Err(PipelineError::Aggregation(_))
        ));
    }

    #[test]
    fn gr_binary_with_three_groups_errors() {
        let votes = segregated_votes(9, 2);
        let g = GroupAssignment::new(vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3).unwrap();
        let b = FairnessBounds::from_assignment_with_tolerance(&g, 0.1);
        let p = FairAggregationPipeline::new(Aggregator::Borda, PostProcessor::GrBinaryIpf);
        let mut rng = StdRng::seed_from_u64(17);
        assert!(matches!(
            p.run(&votes, &g, &b, &mut rng),
            Err(PipelineError::Baseline(
                fair_baselines::BaselineError::NotBinary { .. }
            ))
        ));
    }
}
