//! Integration: rank aggregation feeding the fairness stage.

use fairness_ranking::aggregation::{
    borda, footrule_optimal, kemeny_exact, kwik_sort, local_search, total_kendall_distance,
};
use fairness_ranking::fairness::{infeasible, FairnessBounds, GroupAssignment};
use fairness_ranking::mallows::MallowsModel;
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::ranking::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn aggregate_then_randomize_preserves_validity_and_reduces_unfairness() {
    let mut rng = StdRng::seed_from_u64(0xA66);
    let n = 10;
    // votes concentrated around a segregated ground truth
    let truth = Permutation::identity(n);
    let votes = MallowsModel::new(truth, 1.2)
        .unwrap()
        .sample_many(11, &mut rng);
    let groups = GroupAssignment::binary_split(n, n / 2);
    let bounds = FairnessBounds::from_assignment(&groups);

    for consensus in [
        borda(&votes).unwrap(),
        footrule_optimal(&votes).unwrap(),
        local_search(&kwik_sort(&votes, &mut rng).unwrap(), &votes).unwrap(),
    ] {
        let before = infeasible::two_sided_infeasible_index(&consensus, &groups, &bounds).unwrap();
        let ranker = MallowsFairRanker::new(
            0.4,
            20,
            Criterion::MinInfeasibleIndex {
                groups: groups.clone(),
                bounds: bounds.clone(),
            },
        )
        .unwrap();
        let out = ranker.rank(&consensus, &mut rng).unwrap();
        let after = infeasible::two_sided_infeasible_index(&out.ranking, &groups, &bounds).unwrap();
        assert_eq!(out.ranking.len(), n);
        assert!(
            after <= before,
            "min-II best-of-20 must not be less fair than the consensus ({after} vs {before})"
        );
    }
}

#[test]
fn all_aggregators_stay_close_to_cohesive_votes() {
    // for votes tightly concentrated around one ranking, every
    // aggregator must land within a small total distance of the optimum
    let mut rng = StdRng::seed_from_u64(0xB77);
    let truth = Permutation::from_order(vec![4, 1, 5, 0, 3, 2]).unwrap();
    let votes = MallowsModel::new(truth, 2.5)
        .unwrap()
        .sample_many(9, &mut rng);
    let opt = kemeny_exact(&votes).unwrap();
    let opt_d = total_kendall_distance(&opt, &votes).unwrap();

    let kwik = kwik_sort(&votes, &mut rng).unwrap();
    for (name, agg) in [
        ("borda", borda(&votes).unwrap()),
        ("footrule", footrule_optimal(&votes).unwrap()),
        ("kwiksort+ls", local_search(&kwik, &votes).unwrap()),
    ] {
        let d = total_kendall_distance(&agg, &votes).unwrap();
        assert!(
            d <= 2 * opt_d + 4,
            "{name}: total KT {d} vs optimum {opt_d}"
        );
    }
}
