//! End-to-end integration: the full Figs. 5–7 pipeline assembled from
//! the public APIs of every crate, at reduced scale.

use fairness_ranking::baselines::{self, DetConstSortConfig, IpfConfig};
use fairness_ranking::datasets::GermanCredit;
use fairness_ranking::fairness::{infeasible, pfair, FairnessBounds};
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::ranking::quality::{self, Discount};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_pipeline_produces_consistent_outputs() {
    let mut rng = StdRng::seed_from_u64(0xE2E);
    let data = GermanCredit::generate(&mut rng);
    let all_scores = data.credit_amounts();

    for n in [10usize, 30, 60] {
        let idx = data.sample_indices(n, &mut rng);
        let scores: Vec<f64> = idx.iter().map(|&i| all_scores[i]).collect();
        let known = data.sex_age_groups().subset(&idx);
        let unknown = data.housing_groups().subset(&idx);
        let known_bounds = FairnessBounds::from_assignment(&known);
        let unknown_bounds = FairnessBounds::from_assignment(&unknown);

        let input = baselines::weakly_fair_ranking(&scores, &known, &known_bounds);
        assert!(pfair::is_weak_k_fair(&input, &known, &known_bounds, n.min(10)).unwrap());

        // every algorithm returns a complete permutation of the subset
        let dcs = baselines::det_const_sort(
            &scores,
            &known,
            &known_bounds,
            &DetConstSortConfig::default(),
            &mut rng,
        )
        .unwrap();
        let ipf = baselines::approx_multi_valued_ipf(
            &input,
            &known,
            &known_bounds,
            &IpfConfig::default(),
            &mut rng,
        )
        .unwrap();
        let tables = known_bounds.tables(n);
        let ilp =
            baselines::optimal_fair_ranking_dp(&scores, &known, &tables, Discount::Log2).unwrap();
        let mal = MallowsFairRanker::new(1.0, 15, Criterion::MaxNdcg(scores.clone()))
            .unwrap()
            .rank(&input, &mut rng)
            .unwrap()
            .ranking;

        for pi in [&dcs, &ipf.ranking, &ilp, &mal] {
            assert_eq!(pi.len(), n);
            // all metrics computable against both attributes
            let _ = infeasible::pfair_percentage(pi, &known, &known_bounds).unwrap();
            let _ = infeasible::pfair_percentage(pi, &unknown, &unknown_bounds).unwrap();
            let v = quality::ndcg(pi, &scores).unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }

        // IPF and ILP outputs are exactly fair on the known attribute
        assert!(
            ipf.feasible,
            "proportional bounds must be feasible at n = {n}"
        );
        assert!(pfair::is_k_fair(&ipf.ranking, &known, &known_bounds, 1).unwrap());
        assert!(pfair::is_k_fair(&ilp, &known, &known_bounds, 1).unwrap());

        // ILP dominates every fair ranking in DCG — compare against IPF
        let dcg = |pi: &fairness_ranking::ranking::Permutation| {
            quality::dcg_at(pi, &scores, n, Discount::Log2).unwrap()
        };
        assert!(dcg(&ilp) + 1e-9 >= dcg(&ipf.ranking));
    }
}

#[test]
fn oblivious_mallows_beats_ilp_on_hidden_attribute_under_segregation() {
    // When the hidden attribute is strongly score-correlated, ILP on the
    // known attribute preserves the segregation; Mallows noise dilutes it.
    let mut rng = StdRng::seed_from_u64(0xAB);
    let n = 40;
    let reps = 25;
    let known =
        fairness_ranking::fairness::GroupAssignment::new((0..n).map(|i| i % 2).collect(), 2)
            .unwrap();
    let hidden = fairness_ranking::fairness::GroupAssignment::binary_split(n, n / 2);
    let hidden_bounds = FairnessBounds::from_assignment_with_tolerance(&hidden, 0.1);
    let known_bounds = FairnessBounds::from_assignment(&known);

    let mut ilp_total = 0.0;
    let mut mallows_total = 0.0;
    for _ in 0..reps {
        use rand::RngExt;
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let base: f64 = rng.random_range(0.0..1.0);
                if hidden.group_of(i) == 0 {
                    base + 0.6
                } else {
                    base
                }
            })
            .collect();
        let tables = known_bounds.tables(n);
        let ilp =
            baselines::optimal_fair_ranking_dp(&scores, &known, &tables, Discount::Log2).unwrap();
        ilp_total += infeasible::pfair_percentage(&ilp, &hidden, &hidden_bounds).unwrap();

        let center = fairness_ranking::ranking::Permutation::sorted_by_scores_desc(&scores);
        let m = MallowsFairRanker::new(0.1, 1, Criterion::FirstSample)
            .unwrap()
            .rank(&center, &mut rng)
            .unwrap();
        mallows_total += infeasible::pfair_percentage(&m.ranking, &hidden, &hidden_bounds).unwrap();
    }
    assert!(
        mallows_total > ilp_total + 2.0 * reps as f64,
        "Mallows mean {:.1}% should clearly exceed ILP mean {:.1}% on the hidden attribute",
        mallows_total / reps as f64,
        ilp_total / reps as f64
    );
}
