//! End-to-end client/server round trip: POST a pipeline job to a live
//! `fairrank-engine` HTTP server and verify the response is *identical*
//! to the equivalent direct library call with the same seed.

use fairness_ranking::fairness::{FairnessBounds, GroupAssignment};
use fairness_ranking::pipeline::{Aggregator, FairAggregationPipeline, PostProcessor};
use fairness_ranking::ranking::Permutation;
use fairrank_engine::server::Server;
use fairrank_engine::{Engine, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn start_server() -> fairrank_engine::server::ServerHandle {
    let engine = Engine::new(EngineConfig {
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 64,

        table_cache_capacity: 16,
    });
    Server::bind("127.0.0.1:0", engine)
        .expect("binding an ephemeral port")
        .spawn()
}

fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the server");
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("HTTP status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nhost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Pull `"key":[…]` out of a JSON body as a vector of indices.
fn json_index_array(body: &str, key: &str) -> Vec<usize> {
    let marker = format!("\"{key}\":[");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + marker.len();
    let end = start + body[start..].find(']').expect("closing bracket");
    body[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().expect("index"))
        .collect()
}

/// Pull a numeric `"key":value` out of a JSON body.
fn json_number(body: &str, key: &str) -> f64 {
    let marker = format!("\"{key}\":");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + marker.len();
    let end = body[start..]
        .find([',', '}'])
        .map(|i| start + i)
        .expect("value terminator");
    body[start..end].trim().parse().expect("number")
}

#[test]
fn pipeline_over_http_matches_library_call() {
    let server = start_server();
    let seed = 11u64;
    let (status, body) = http_post(
        server.addr(),
        "/pipeline",
        &format!(
            r#"{{"votes":[[0,1,2,3,4,5],[0,1,2,3,5,4],[1,0,2,3,4,5],[0,2,1,3,4,5]],"groups":[0,0,0,1,1,1],"method":"borda","post":"mallows","theta":0.7,"samples":15,"tolerance":0.2,"seed":{seed}}}"#
        ),
    );
    assert_eq!(status, 200, "{body}");

    // the same computation, straight through the library
    let votes: Vec<Permutation> = [
        vec![0, 1, 2, 3, 4, 5],
        vec![0, 1, 2, 3, 5, 4],
        vec![1, 0, 2, 3, 4, 5],
        vec![0, 2, 1, 3, 4, 5],
    ]
    .into_iter()
    .map(|v| Permutation::from_order(v).unwrap())
    .collect();
    let groups = GroupAssignment::new(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
    let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.2);
    let mut rng = StdRng::seed_from_u64(seed);
    let lib = FairAggregationPipeline::new(
        Aggregator::Borda,
        PostProcessor::Mallows {
            theta: 0.7,
            samples: 15,
        },
    )
    .run(&votes, &groups, &bounds, &mut rng)
    .unwrap();

    assert_eq!(
        json_index_array(&body, "consensus"),
        lib.consensus.as_order()
    );
    assert_eq!(
        json_index_array(&body, "fair_ranking"),
        lib.fair_ranking.as_order()
    );
    assert_eq!(
        json_number(&body, "consensus_total_kt"),
        lib.consensus_total_kt as f64
    );
    assert_eq!(
        json_number(&body, "fair_total_kt"),
        lib.fair_total_kt as f64
    );
    assert_eq!(
        json_number(&body, "consensus_infeasible"),
        lib.consensus_infeasible as f64
    );
    assert_eq!(
        json_number(&body, "fair_infeasible"),
        lib.fair_infeasible as f64
    );
    server.shutdown();
}

#[test]
fn repeated_requests_hit_the_cache_and_stats_report_it() {
    let server = start_server();
    let body = r#"{"algorithm":"mallows","scores":[0.9,0.8,0.7,0.4,0.3,0.2],"groups":[0,0,0,1,1,1],"theta":1.0,"samples":10,"seed":5}"#;
    let (s1, r1) = http_post(server.addr(), "/rank", body);
    let (s2, r2) = http_post(server.addr(), "/rank", body);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(r1, r2, "cached response must be byte-identical");
    let (status, stats) = http_get(server.addr(), "/stats");
    assert_eq!(status, 200);
    assert_eq!(json_number(&stats, "cache_hits"), 1.0, "{stats}");
    assert_eq!(json_number(&stats, "cache_misses"), 1.0, "{stats}");
    server.shutdown();
}

#[test]
fn healthz_and_aggregate_work_over_http() {
    let server = start_server();
    let (status, body) = http_get(server.addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = http_post(
        server.addr(),
        "/aggregate",
        r#"{"method":"kemeny","votes":[[0,1,2],[0,1,2],[2,0,1]],"seed":3}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_index_array(&body, "ranking"), vec![0, 1, 2]);
    server.shutdown();
}

#[test]
fn concurrent_http_clients_get_consistent_answers() {
    let server = start_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                http_post(
                    addr,
                    "/pipeline",
                    r#"{"votes":[[0,1,2,3],[1,0,2,3],[0,1,3,2]],"groups":[0,0,1,1],"method":"borda","post":"none","seed":9}"#,
                )
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(
            body, &responses[0].1,
            "all clients must see the same result"
        );
    }
    server.shutdown();
}
