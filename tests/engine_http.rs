//! End-to-end client/server tests: round trips against a live
//! `fairrank-engine` HTTP server (responses identical to the
//! equivalent direct library calls), plus the keep-alive reactor
//! behaviours — sequential requests over one connection, the
//! max-requests cap, `Connection: close` handling, connection shedding
//! under overload, and a multi-threaded hammer whose `/stats` counters
//! must add up — and the asynchronous `/jobs` lifecycle: submit, poll
//! to completion with per-chunk results byte-identical to the sync
//! endpoints, cooperative cancellation mid-run, and 404s on unknown
//! ids.

use fairness_ranking::fairness::{FairnessBounds, GroupAssignment};
use fairness_ranking::pipeline::{Aggregator, FairAggregationPipeline, PostProcessor};
use fairness_ranking::ranking::Permutation;
use fairrank_engine::server::{Server, ServerConfig, ServerHandle};
use fairrank_engine::{Engine, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn test_engine() -> Arc<Engine> {
    Engine::new(EngineConfig {
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 64,
        table_cache_capacity: 16,
        cache_shards: 0,
        ..EngineConfig::default()
    })
}

fn start_server() -> ServerHandle {
    Server::bind("127.0.0.1:0", test_engine())
        .expect("binding an ephemeral port")
        .spawn()
        .expect("starting the server")
}

fn start_server_with(config: ServerConfig) -> (ServerHandle, Arc<Engine>) {
    let engine = test_engine();
    let handle = Server::bind_with("127.0.0.1:0", Arc::clone(&engine), config)
        .expect("binding an ephemeral port")
        .spawn()
        .expect("starting the server");
    (handle, engine)
}

fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the server");
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("HTTP status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A keep-alive HTTP client: one connection, sequential requests,
/// responses framed by `content-length`. (A sibling minimal reader
/// lives in `crates/bench/benches/http_throughput.rs` — keep framing
/// changes in sync.)
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One parsed keep-alive response.
struct Response {
    status: u16,
    head: String,
    body: String,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connecting to the server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        KeepAliveClient {
            stream,
            buf: Vec::new(),
        }
    }

    /// Send one request; `close` adds `connection: close`.
    fn send(&mut self, method: &str, path: &str, body: &str, close: bool) {
        let connection = if close { "connection: close\r\n" } else { "" };
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\n{connection}content-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes()).unwrap();
    }

    /// Read one response off the connection.
    fn read_response(&mut self) -> Response {
        // buffer until the head terminator
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("reading response head");
            assert!(n > 0, "connection closed mid-response head");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).unwrap();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("content-length header");
        self.buf.drain(..head_end);
        while self.buf.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("reading response body");
            assert!(n > 0, "connection closed mid-response body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf[..content_length].to_vec()).unwrap();
        self.buf.drain(..content_length);
        Response { status, head, body }
    }

    /// Convenience: send + read.
    fn request(&mut self, method: &str, path: &str, body: &str, close: bool) -> Response {
        self.send(method, path, body, close);
        self.read_response()
    }

    /// True when the server has closed the connection (EOF).
    fn server_closed(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.stream.read(&mut byte), Ok(0))
    }
}

/// Pull `"key":[…]` out of a JSON body as a vector of indices.
fn json_index_array(body: &str, key: &str) -> Vec<usize> {
    let marker = format!("\"{key}\":[");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + marker.len();
    let end = start + body[start..].find(']').expect("closing bracket");
    body[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().expect("index"))
        .collect()
}

/// Pull a numeric `"key":value` out of a JSON body.
fn json_number(body: &str, key: &str) -> f64 {
    let marker = format!("\"{key}\":");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + marker.len();
    let end = body[start..]
        .find([',', '}'])
        .map(|i| start + i)
        .expect("value terminator");
    body[start..end].trim().parse().expect("number")
}

#[test]
fn pipeline_over_http_matches_library_call() {
    let server = start_server();
    let seed = 11u64;
    let (status, body) = http_post(
        server.addr(),
        "/pipeline",
        &format!(
            r#"{{"votes":[[0,1,2,3,4,5],[0,1,2,3,5,4],[1,0,2,3,4,5],[0,2,1,3,4,5]],"groups":[0,0,0,1,1,1],"method":"borda","post":"mallows","theta":0.7,"samples":15,"tolerance":0.2,"seed":{seed}}}"#
        ),
    );
    assert_eq!(status, 200, "{body}");

    // the same computation, straight through the library
    let votes: Vec<Permutation> = [
        vec![0, 1, 2, 3, 4, 5],
        vec![0, 1, 2, 3, 5, 4],
        vec![1, 0, 2, 3, 4, 5],
        vec![0, 2, 1, 3, 4, 5],
    ]
    .into_iter()
    .map(|v| Permutation::from_order(v).unwrap())
    .collect();
    let groups = GroupAssignment::new(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
    let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.2);
    let mut rng = StdRng::seed_from_u64(seed);
    let lib = FairAggregationPipeline::new(
        Aggregator::Borda,
        PostProcessor::Mallows {
            theta: 0.7,
            samples: 15,
        },
    )
    .run(&votes, &groups, &bounds, &mut rng)
    .unwrap();

    assert_eq!(
        json_index_array(&body, "consensus"),
        lib.consensus.as_order()
    );
    assert_eq!(
        json_index_array(&body, "fair_ranking"),
        lib.fair_ranking.as_order()
    );
    assert_eq!(
        json_number(&body, "consensus_total_kt"),
        lib.consensus_total_kt as f64
    );
    assert_eq!(
        json_number(&body, "fair_total_kt"),
        lib.fair_total_kt as f64
    );
    assert_eq!(
        json_number(&body, "consensus_infeasible"),
        lib.consensus_infeasible as f64
    );
    assert_eq!(
        json_number(&body, "fair_infeasible"),
        lib.fair_infeasible as f64
    );
    server.shutdown();
}

#[test]
fn repeated_requests_hit_the_cache_and_stats_report_it() {
    let server = start_server();
    let body = r#"{"algorithm":"mallows","scores":[0.9,0.8,0.7,0.4,0.3,0.2],"groups":[0,0,0,1,1,1],"theta":1.0,"samples":10,"seed":5}"#;
    let (s1, r1) = http_post(server.addr(), "/rank", body);
    let (s2, r2) = http_post(server.addr(), "/rank", body);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(r1, r2, "cached response must be byte-identical");
    let (status, stats) = http_get(server.addr(), "/stats");
    assert_eq!(status, 200);
    assert_eq!(json_number(&stats, "cache_hits"), 1.0, "{stats}");
    assert_eq!(json_number(&stats, "cache_misses"), 1.0, "{stats}");
    server.shutdown();
}

#[test]
fn healthz_and_aggregate_work_over_http() {
    let server = start_server();
    let (status, body) = http_get(server.addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = http_post(
        server.addr(),
        "/aggregate",
        r#"{"method":"kemeny","votes":[[0,1,2],[0,1,2],[2,0,1]],"seed":3}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_index_array(&body, "ranking"), vec![0, 1, 2]);
    server.shutdown();
}

#[test]
fn concurrent_http_clients_get_consistent_answers() {
    let server = start_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                http_post(
                    addr,
                    "/pipeline",
                    r#"{"votes":[[0,1,2,3],[1,0,2,3],[0,1,3,2]],"groups":[0,0,1,1],"method":"borda","post":"none","seed":9}"#,
                )
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(
            body, &responses[0].1,
            "all clients must see the same result"
        );
    }
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_sequential_requests_on_one_connection() {
    let server = start_server();
    let mut client = KeepAliveClient::connect(server.addr());

    // 30 mixed requests on a single connection: good /rank bodies of
    // two different sizes, malformed JSON, and unknown algorithms —
    // every response must match its own request (status, ranking
    // length) with no state leaking between them
    for i in 0..30usize {
        match i % 5 {
            // small pool: 2 items
            0 | 3 => {
                let body = format!(
                    r#"{{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":{i}}}"#
                );
                let response = client.request("POST", "/rank", &body, false);
                assert_eq!(response.status, 200, "request {i}: {}", response.body);
                let ranking = json_index_array(&response.body, "ranking");
                assert_eq!(ranking.len(), 2, "request {i}: {}", response.body);
            }
            // larger pool: 4 items
            1 => {
                let body = format!(
                    r#"{{"algorithm":"weakly-fair","scores":[0.9,0.8,0.4,0.3],"groups":[0,0,1,1],"seed":{i}}}"#
                );
                let response = client.request("POST", "/rank", &body, false);
                assert_eq!(response.status, 200, "request {i}: {}", response.body);
                let ranking = json_index_array(&response.body, "ranking");
                assert_eq!(ranking.len(), 4, "request {i}: {}", response.body);
            }
            // malformed JSON → 400, connection survives
            2 => {
                let response = client.request("POST", "/rank", "{nope", false);
                assert_eq!(response.status, 400, "request {i}: {}", response.body);
                assert!(response.body.contains("error"), "{}", response.body);
            }
            // unknown algorithm → 404, connection survives
            _ => {
                let response = client.request(
                    "POST",
                    "/rank",
                    r#"{"algorithm":"psychic","scores":[1.0]}"#,
                    false,
                );
                assert_eq!(response.status, 404, "request {i}: {}", response.body);
            }
        }
    }

    // keep-alive responses advertise it; an explicit close is honored
    let response = client.request("GET", "/healthz", "", false);
    assert!(
        response.head.contains("connection: keep-alive"),
        "{}",
        response.head
    );
    let response = client.request("GET", "/healthz", "", true);
    assert!(
        response.head.contains("connection: close"),
        "{}",
        response.head
    );
    assert!(
        client.server_closed(),
        "server must close after `Connection: close`"
    );
    server.shutdown();
}

#[test]
fn http_1_0_defaults_to_connection_close() {
    let server = start_server();
    // legacy HTTP/1.0 client, no keep-alive opt-in: the server must
    // close so EOF-framed clients terminate
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nhost: localhost\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("connection: close"), "{response}");

    // ... but an explicit HTTP/1.0 keep-alive opt-in is honored
    let mut client = KeepAliveClient::connect(server.addr());
    client
        .stream
        .write_all(b"GET /healthz HTTP/1.0\r\nhost: localhost\r\nconnection: keep-alive\r\n\r\n")
        .unwrap();
    let response = client.read_response();
    assert_eq!(response.status, 200);
    assert!(
        response.head.contains("connection: keep-alive"),
        "{}",
        response.head
    );
    let response = client.request("GET", "/healthz", "", false);
    assert_eq!(response.status, 200, "connection must still be usable");
    server.shutdown();
}

#[test]
fn chunked_transfer_encoding_is_rejected_and_closes() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // a chunked body would desync keep-alive framing, so the server
    // must refuse it outright and close the connection
    stream
        .write_all(
            b"POST /rank HTTP/1.1\r\nhost: localhost\r\ntransfer-encoding: chunked\r\n\r\n5\r\n{\"a\":\r\n0\r\n\r\n",
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("transfer-encoding"), "{response}");
    assert!(response.contains("connection: close"), "{response}");
    server.shutdown();
}

#[test]
fn keep_alive_responses_match_fresh_connection_responses() {
    let server = start_server();
    let body = r#"{"algorithm":"mallows","scores":[0.9,0.7,0.5,0.3],"groups":[0,0,1,1],"samples":10,"seed":21}"#;
    let (status, fresh) = http_post(server.addr(), "/rank", body);
    assert_eq!(status, 200, "{fresh}");

    let mut client = KeepAliveClient::connect(server.addr());
    for i in 0..5 {
        let response = client.request("POST", "/rank", body, false);
        assert_eq!(response.status, 200, "request {i}");
        assert_eq!(
            response.body, fresh,
            "keep-alive request {i} must be byte-identical to a fresh-connection request"
        );
    }
    server.shutdown();
}

#[test]
fn max_requests_per_connection_cap_closes_the_connection() {
    let (server, _engine) = start_server_with(ServerConfig {
        max_requests_per_conn: 3,
        ..ServerConfig::default()
    });
    let mut client = KeepAliveClient::connect(server.addr());
    for i in 0..3 {
        let response = client.request("GET", "/healthz", "", false);
        assert_eq!(response.status, 200);
        let expected = if i < 2 {
            "connection: keep-alive"
        } else {
            "connection: close"
        };
        assert!(
            response.head.contains(expected),
            "request {i}: {}",
            response.head
        );
    }
    assert!(
        client.server_closed(),
        "server must close after the per-connection request cap"
    );
    server.shutdown();
}

#[test]
fn idle_keep_alive_connection_is_closed_by_the_read_timeout() {
    let (server, _engine) = start_server_with(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut client = KeepAliveClient::connect(server.addr());
    let response = client.request("GET", "/healthz", "", false);
    assert_eq!(response.status, 200);
    // no next request: the server must hang up on its own
    std::thread::sleep(Duration::from_millis(900));
    assert!(client.server_closed(), "idle connection must be closed");
    server.shutdown();
}

#[test]
fn overloaded_reactor_sheds_connections_with_503_retry_after() {
    let (server, engine) = start_server_with(ServerConfig {
        io_threads: 1,
        pending_connections: 1,
        ..ServerConfig::default()
    });

    // occupy the single I/O worker: a keep-alive connection whose
    // response proves the worker has dequeued it and is now parked
    // reading the (never-sent) next request
    let mut occupant = KeepAliveClient::connect(server.addr());
    let response = occupant.request("GET", "/healthz", "", false);
    assert_eq!(response.status, 200);

    // fill the pending queue with a second connection (wait until the
    // accept loop has actually taken it)
    let _queued = TcpStream::connect(server.addr()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while engine
        .stats()
        .connections
        .load(std::sync::atomic::Ordering::Relaxed)
        < 2
    {
        assert!(std::time::Instant::now() < deadline, "accept loop stalled");
        std::thread::yield_now();
    }

    // the third connection must be shed loudly, not silently dropped
    let mut shed = TcpStream::connect(server.addr()).unwrap();
    let mut response = String::new();
    shed.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
    assert!(response.contains("retry-after:"), "{response}");
    assert!(response.contains("overloaded"), "{response}");
    assert_eq!(
        engine
            .stats()
            .rejected_connections
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    drop(occupant);
    drop(_queued);
    server.shutdown();
}

fn http_delete(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "DELETE {path} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Poll `GET /jobs/{id}` until its `status` is one of `terminal`,
/// with a generous deadline.
fn poll_job_until(addr: SocketAddr, id: u64, terminal: &[&str]) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http_get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "{body}");
        if terminal
            .iter()
            .any(|t| body.contains(&format!("\"status\":\"{t}\"")))
        {
            return body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} never reached {terminal:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn job_round_trip_matches_sync_endpoints_byte_for_byte() {
    let server = start_server();
    let addr = server.addr();

    // the three sync answers the job's chunks must reproduce exactly
    let rank_body = r#"{"algorithm":"mallows","scores":[0.9,0.7,0.5,0.3],"groups":[0,0,1,1],"samples":10,"seed":77}"#;
    let (status, sync_rank) = http_post(addr, "/rank", rank_body);
    assert_eq!(status, 200, "{sync_rank}");
    let aggregate_body = r#"{"method":"kemeny","votes":[[0,1,2],[0,1,2],[2,0,1]],"seed":3}"#;
    let (status, sync_aggregate) = http_post(addr, "/aggregate", aggregate_body);
    assert_eq!(status, 200, "{sync_aggregate}");
    let pipeline_body = r#"{"votes":[[0,1,2,3],[0,1,3,2],[1,0,2,3]],"groups":[0,0,1,1],"method":"borda","post":"mallows","theta":0.7,"samples":15,"tolerance":0.2,"seed":11}"#;
    let (status, sync_pipeline) = http_post(addr, "/pipeline", pipeline_body);
    assert_eq!(status, 200, "{sync_pipeline}");

    // one batch job covering all three routes
    let rank_chunk = format!(r#"{{"route":"rank",{}"#, &rank_body[1..]);
    let aggregate_chunk = format!(r#"{{"route":"aggregate",{}"#, &aggregate_body[1..]);
    let pipeline_chunk = format!(r#"{{"route":"pipeline",{}"#, &pipeline_body[1..]);
    let job_body = format!(r#"{{"chunks":[{rank_chunk},{aggregate_chunk},{pipeline_chunk}]}}"#);
    let (status, accepted) = http_post(addr, "/jobs", &job_body);
    assert_eq!(status, 202, "{accepted}");
    assert!(accepted.contains("\"chunks_total\":3"), "{accepted}");
    let id = json_number(&accepted, "id") as u64;

    let done = poll_job_until(addr, id, &["done", "failed", "cancelled"]);
    assert!(done.contains("\"status\":\"done\""), "{done}");
    assert!(done.contains("\"chunks_done\":3"), "{done}");
    // per-chunk results are byte-identical substrings of the status
    for sync in [&sync_rank, &sync_aggregate, &sync_pipeline] {
        assert!(
            done.contains(sync.as_str()),
            "job results must embed the sync body `{sync}`:\n{done}"
        );
    }

    // queue health surfaced in /stats
    let (status, stats) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert_eq!(json_number(&stats, "jobs_completed"), 1.0, "{stats}");
    assert_eq!(json_number(&stats, "jobs_running"), 0.0, "{stats}");
    assert_eq!(json_number(&stats, "jobs_queued"), 0.0, "{stats}");
    assert!(
        json_number(&stats, "jobs_queue_high_water") >= 1.0,
        "{stats}"
    );
    server.shutdown();
}

#[test]
fn job_with_failing_chunk_reports_failure_and_keeps_prefix() {
    let server = start_server();
    let addr = server.addr();
    // chunk 0 succeeds; chunk 1 fails (gr-binary rejects 3 groups)
    let (status, accepted) = http_post(
        addr,
        "/jobs",
        r#"{"chunks":[
            {"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":1},
            {"algorithm":"gr-binary","scores":[1.0,0.5,0.2],"groups":[0,1,2],"seed":2},
            {"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":3}]}"#,
    );
    assert_eq!(status, 202, "{accepted}");
    let id = json_number(&accepted, "id") as u64;
    let done = poll_job_until(addr, id, &["done", "failed", "cancelled"]);
    assert!(done.contains("\"status\":\"failed\""), "{done}");
    assert!(done.contains("\"failed_chunk\":1"), "{done}");
    assert!(done.contains("\"chunks_done\":1"), "{done}");
    assert!(done.contains("algorithm failed"), "{done}");
    server.shutdown();
}

#[test]
fn job_cancellation_mid_run_stops_between_chunks() {
    use fairrank_engine::job::RankResult;
    use fairrank_engine::registry::{Algorithm, AlgorithmKind, Registry};
    use fairrank_engine::tables::ExecContext;

    /// A deliberately slow algorithm so the batch is mid-run when the
    /// DELETE lands.
    struct Sleepy;
    impl Algorithm for Sleepy {
        fn name(&self) -> &str {
            "sleepy"
        }
        fn kind(&self) -> AlgorithmKind {
            AlgorithmKind::PostProcessor
        }
        fn run(
            &self,
            job: &fairrank_engine::job::RankJob,
            _ctx: &ExecContext,
            _rng: &mut StdRng,
        ) -> Result<RankResult, fairrank_engine::EngineError> {
            std::thread::sleep(Duration::from_millis(20));
            Ok(RankResult {
                algorithm: job.algorithm.clone(),
                ranking: vec![0],
                consensus: None,
                metrics: vec![],
            })
        }
    }

    let mut registry = Registry::standard();
    registry.register(Arc::new(Sleepy));
    let engine = Engine::with_registry(EngineConfig::default(), registry);
    let server = Server::bind_with("127.0.0.1:0", engine, ServerConfig::default())
        .expect("binding an ephemeral port")
        .spawn()
        .expect("starting the server");
    let addr = server.addr();

    // 200 slow chunks with distinct seeds (no cache short-circuits)
    let chunks: Vec<String> = (0..200)
        .map(|i| format!(r#"{{"algorithm":"sleepy","scores":[1.0],"seed":{i}}}"#))
        .collect();
    let (status, accepted) = http_post(
        addr,
        "/jobs",
        &format!(r#"{{"chunks":[{}]}}"#, chunks.join(",")),
    );
    assert_eq!(status, 202, "{accepted}");
    let id = json_number(&accepted, "id") as u64;

    // wait until it is genuinely mid-run (some chunk finished)...
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = http_get(addr, &format!("/jobs/{id}"));
        if body.contains("\"status\":\"running\"") && json_number(&body, "chunks_done") >= 1.0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "{body}");
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...then cancel and watch it stop at a chunk boundary
    let (status, cancelled) = http_delete(addr, &format!("/jobs/{id}"));
    assert_eq!(status, 200, "{cancelled}");
    let done = poll_job_until(addr, id, &["done", "failed", "cancelled"]);
    assert!(done.contains("\"status\":\"cancelled\""), "{done}");
    let partial = json_number(&done, "chunks_done");
    assert!(
        (1.0..200.0).contains(&partial),
        "cancelled mid-run, finished {partial} of 200:\n{done}"
    );

    let (_, stats) = http_get(addr, "/stats");
    assert_eq!(json_number(&stats, "jobs_cancelled"), 1.0, "{stats}");
    server.shutdown();
}

#[test]
fn unknown_and_malformed_job_ids_are_404() {
    let server = start_server();
    let addr = server.addr();
    let (status, body) = http_get(addr, "/jobs/424242");
    assert_eq!(status, 404, "{body}");
    let (status, _) = http_delete(addr, "/jobs/424242");
    assert_eq!(status, 404);
    let (status, _) = http_get(addr, "/jobs/not-a-number");
    assert_eq!(status, 404);
    // DELETE on a non-jobs route is an unknown route, not a 405
    let (status, _) = http_delete(addr, "/rank");
    assert_eq!(status, 404);
    // malformed batch bodies are 400s
    let (status, _) = http_post(addr, "/jobs", r#"{"chunks":"nope"}"#);
    assert_eq!(status, 400);
    let (status, _) = http_post(addr, "/jobs", r#"{"chunks":[]}"#);
    assert_eq!(status, 400);
    let (status, body) = http_post(
        addr,
        "/jobs",
        r#"{"chunks":[{"route":"warp","algorithm":"weakly-fair","scores":[1.0]}]}"#,
    );
    assert_eq!(status, 400, "{body}");
    // unknown algorithm anywhere in the batch → 404, nothing queued
    let (status, _) = http_post(
        addr,
        "/jobs",
        r#"{"chunks":[{"algorithm":"psychic","scores":[1.0]}]}"#,
    );
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let server = start_server();
    let addr = server.addr();
    // traffic so the histograms and counters are non-trivial
    let (status, _) = http_post(
        addr,
        "/rank",
        r#"{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":1}"#,
    );
    assert_eq!(status, 200);
    let (status, _) = http_post(addr, "/rank", "{nope");
    assert_eq!(status, 400);

    // raw request so the content-type header is visible
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
    assert!(
        head.contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );

    // the strict checker: HELP/TYPE lines, monotone cumulative
    // buckets, +Inf == _count for every histogram series
    fairrank_engine::stats::validate_prometheus_text(body).expect(body);
    for needle in [
        "# TYPE fairrank_http_requests_total counter",
        "# TYPE fairrank_http_request_duration_us histogram",
        "fairrank_http_request_duration_us_bucket{route=\"rank\",le=\"+Inf\"} 2",
        "fairrank_http_request_duration_us_count{route=\"rank\"} 2",
        "# TYPE fairrank_algorithm_duration_us histogram",
        "fairrank_algorithm_duration_us_count{algorithm=\"weakly-fair\"} 1",
        "fairrank_cache_misses_total 1",
        "fairrank_ready 1",
        "fairrank_workers 4",
    ] {
        assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
    }
    server.shutdown();
}

#[test]
fn counters_above_2_pow_53_render_exactly_in_stats_and_metrics() {
    let (server, engine) = start_server_with(ServerConfig::default());
    let addr = server.addr();
    let big = (1u64 << 53) + 5; // 9007199254740997: unrepresentable as f64
    engine
        .stats()
        .queue_rejections
        .store(big, std::sync::atomic::Ordering::Relaxed);
    let (status, stats) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(
        stats.contains("\"queue_rejections\":9007199254740997"),
        "f64 would round to ...996: {stats}"
    );
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("fairrank_queue_rejections_total 9007199254740997\n"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn surrogate_pair_json_round_trips_byte_exactly_through_rank() {
    let server = start_server();
    // the algorithm name carries an escaped astral-plane char; the 404
    // error echoes the *decoded* name, proving the surrogate pair was
    // decoded and re-emitted as raw UTF-8 — byte-exact round trip
    let (status, body) = http_post(
        server.addr(),
        "/rank",
        r#"{"algorithm":"go-\uD83D\uDE00-rank","scores":[1.0]}"#,
    );
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("go-😀-rank"), "{body}");
    // unpaired surrogates are a 400 with the parser's precise offset
    let (status, body) = http_post(
        server.addr(),
        "/rank",
        r#"{"algorithm":"\uD83D","scores":[1.0]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unpaired high surrogate"), "{body}");
    server.shutdown();
}

#[test]
fn conflicting_duplicate_content_length_is_rejected() {
    let server = start_server();
    // conflicting values: ambiguous framing, must 400 + close
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(
            b"POST /rank HTTP/1.1\r\nhost: localhost\r\ncontent-length: 5\r\ncontent-length: 6\r\n\r\n{nope}",
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("conflicting duplicate"), "{response}");
    assert!(response.contains("connection: close"), "{response}");

    // identical duplicates are unambiguous and tolerated
    let body = r#"{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1]}"#;
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let request = format!(
        "POST /rank HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\ncontent-length: {len}\r\ncontent-length: {len}\r\n\r\n{body}",
        len = body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    server.shutdown();
}

#[test]
fn header_count_cap_rejects_header_bombs() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut request = String::from("GET /healthz HTTP/1.1\r\nhost: localhost\r\n");
    for i in 0..200 {
        use std::fmt::Write as _;
        let _ = write!(request, "x-pad-{i}: y\r\n");
    }
    request.push_str("\r\n");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("headers"), "{response}");
    server.shutdown();
}

/// `Write` sink capturing access-log lines for inspection.
#[derive(Clone)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn access_log_writes_one_json_line_per_request() {
    use fairrank_engine::server::AccessLog;
    let sink = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
    let (server, _engine) = start_server_with(ServerConfig {
        access_log: Some(AccessLog::to_writer(Box::new(sink.clone()))),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let mut client = KeepAliveClient::connect(addr);
    let ok = client.request(
        "POST",
        "/rank",
        r#"{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":3}"#,
        false,
    );
    assert_eq!(ok.status, 200);
    let bad = client.request("POST", "/nope", "{}", true);
    assert_eq!(bad.status, 404);
    server.shutdown();

    let raw = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(raw).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    // every line is one structured JSON record
    for line in &lines {
        let record = fairrank_engine::json::Json::parse(line).unwrap_or_else(|e| {
            panic!("access-log line is not JSON ({e}): {line}");
        });
        for key in [
            "conn", "seq", "method", "path", "route", "status", "bytes", "us",
        ] {
            assert!(record.get(key).is_some(), "missing {key} in {line}");
        }
    }
    assert!(lines[0].contains("\"path\":\"/rank\""), "{}", lines[0]);
    assert!(lines[0].contains("\"route\":\"rank\""), "{}", lines[0]);
    assert!(lines[0].contains("\"status\":200"), "{}", lines[0]);
    assert!(lines[1].contains("\"status\":404"), "{}", lines[1]);
    assert!(lines[1].contains("\"seq\":2"), "{}", lines[1]);
    // both requests rode the same connection
    let conn = json_number(lines[0], "conn");
    assert_eq!(json_number(lines[1], "conn"), conn);
}

#[test]
fn graceful_drain_finishes_in_flight_work_and_sheds_new_connections() {
    use fairrank_engine::job::RankResult;
    use fairrank_engine::registry::{Algorithm, AlgorithmKind, Registry};
    use fairrank_engine::tables::ExecContext;
    use std::sync::mpsc::{channel, Sender};
    use std::sync::Mutex;

    /// Blocks mid-request until released, so the drain demonstrably
    /// begins while a request is in flight.
    struct Gated {
        release: Mutex<Option<std::sync::mpsc::Receiver<()>>>,
        started: Sender<()>,
    }
    impl Algorithm for Gated {
        fn name(&self) -> &str {
            "gated"
        }
        fn kind(&self) -> AlgorithmKind {
            AlgorithmKind::PostProcessor
        }
        fn run(
            &self,
            job: &fairrank_engine::job::RankJob,
            _ctx: &ExecContext,
            _rng: &mut StdRng,
        ) -> Result<RankResult, fairrank_engine::EngineError> {
            let _ = self.started.send(());
            if let Some(gate) = self.release.lock().unwrap().take() {
                let _ = gate.recv();
            }
            Ok(RankResult {
                algorithm: job.algorithm.clone(),
                ranking: vec![0],
                consensus: None,
                metrics: vec![],
            })
        }
    }

    let (release_tx, release_rx) = channel();
    let (started_tx, started_rx) = channel();
    let mut registry = Registry::standard();
    registry.register(Arc::new(Gated {
        release: Mutex::new(Some(release_rx)),
        started: started_tx,
    }));
    let engine = Engine::with_registry(EngineConfig::default(), registry);
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            io_threads: 4,
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port")
    .spawn()
    .expect("starting the server");
    let addr = server.addr();

    // readiness says ready pre-drain
    let mut ready_client = KeepAliveClient::connect(addr);
    let response = ready_client.request("GET", "/readyz", "", false);
    assert_eq!(response.status, 200);
    assert!(response.body.contains("\"ready\""), "{}", response.body);

    // an in-flight request: sent, executing, response not yet read
    let mut gated_client = KeepAliveClient::connect(addr);
    gated_client.send(
        "POST",
        "/rank",
        r#"{"algorithm":"gated","scores":[1.0],"seed":1}"#,
        false,
    );
    started_rx.recv_timeout(Duration::from_secs(10)).unwrap();

    server.begin_drain();

    // new connections are shed with an explicit 503 "draining" (poll:
    // the accept loop needs a moment to observe the stop flag)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = TcpStream::connect(addr).expect("listener still bound during drain");
        let mut response = String::new();
        let _ = probe.read_to_string(&mut response);
        if response.starts_with("HTTP/1.1 503") && response.contains("draining") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "drain shedding never engaged; last response: {response:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // an established keep-alive connection still gets its request
    // served — readiness now 503 — and is then closed
    let response = ready_client.request("GET", "/readyz", "", false);
    assert_eq!(response.status, 503);
    assert!(response.body.contains("draining"), "{}", response.body);
    assert!(
        response.head.contains("connection: close"),
        "{}",
        response.head
    );
    assert!(ready_client.server_closed());

    // the in-flight request completes (zero dropped requests) and the
    // connection closes afterwards
    release_tx.send(()).unwrap();
    let response = gated_client.read_response();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("\"gated\""), "{}", response.body);
    assert!(
        response.head.contains("connection: close"),
        "{}",
        response.head
    );
    assert!(gated_client.server_closed());

    server.shutdown();
    // post-drain the engine reports not-ready
    assert!(engine.is_draining());
}

#[test]
fn hammer_stats_counters_add_up() {
    let server = start_server();
    let addr = server.addr();
    const THREADS: usize = 4;
    const REQUESTS: usize = 40;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = KeepAliveClient::connect(addr);
                for i in 0..REQUESTS {
                    // every 5th request is malformed (400); the rest
                    // are unique good jobs (each a cache miss)
                    if i % 5 == 4 {
                        let response = client.request("POST", "/rank", "{nope", false);
                        assert_eq!(response.status, 400);
                    } else {
                        let body = format!(
                            r#"{{"algorithm":"weakly-fair","scores":[0.9,0.1],"groups":[0,1],"seed":{}}}"#,
                            t * REQUESTS + i
                        );
                        let response = client.request("POST", "/rank", &body, false);
                        assert_eq!(response.status, 200, "{}", response.body);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let (status, stats) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    let bad = THREADS * (REQUESTS / 5);
    let good = THREADS * REQUESTS - bad;
    // + 1: the /stats request itself is counted before it is served
    assert_eq!(
        json_number(&stats, "http_requests"),
        (THREADS * REQUESTS + 1) as f64,
        "{stats}"
    );
    assert_eq!(json_number(&stats, "http_errors"), bad as f64, "{stats}");
    // every good job is unique → all misses, none coalesced or cached
    assert_eq!(json_number(&stats, "cache_misses"), good as f64, "{stats}");
    assert_eq!(json_number(&stats, "cache_hits"), 0.0, "{stats}");
    assert_eq!(
        json_number(&stats, "chunks_executed") + json_number(&stats, "chunks_failed"),
        good as f64,
        "{stats}"
    );
    // 4 hammer connections + this stats connection (the shutdown kick
    // may or may not land before the snapshot, so allow it)
    let connections = json_number(&stats, "connections");
    assert!(
        connections >= (THREADS + 1) as f64,
        "connections = {connections}: {stats}"
    );
    assert_eq!(json_number(&stats, "rejected_connections"), 0.0, "{stats}");
    // latency quantiles are live once requests have been served
    assert!(json_number(&stats, "latency_p99_us") >= json_number(&stats, "latency_p50_us"));
    assert!(json_number(&stats, "latency_p50_us") > 0.0, "{stats}");
    server.shutdown();
}
