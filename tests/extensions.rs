//! Cross-crate integration tests for the extension modules: top-k
//! lists, soft group assignments, significance tests, the Cayley model
//! and the fair-aggregation pipeline working together.

use fairness_ranking::eval::hypothesis::mann_whitney_u;
use fairness_ranking::fairness::{FairnessBounds, GroupAssignment, SoftGroupAssignment};
use fairness_ranking::mallows::{CayleyMallows, MallowsModel, TopKMallows};
use fairness_ranking::mallows_ranker::{Criterion, MallowsFairRanker};
use fairness_ranking::pipeline::{Aggregator, FairAggregationPipeline, PostProcessor};
use fairness_ranking::ranking::toplist::TopKList;
use fairness_ranking::ranking::{quality, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn truncated_sampler_prefix_agrees_with_full_sampler_in_distribution() {
    // The Fagin K^(0) distance between the sampled top-k and the centre's
    // top-k has the same expectation whichever exact sampler produced it.
    let n = 12;
    let k = 4;
    let center = Permutation::identity(n);
    let theta = 0.8;
    let truncated = TopKMallows::new(center.clone(), theta, k).unwrap();
    let full = MallowsModel::new(center.clone(), theta).unwrap();
    let center_top = TopKList::from_permutation(&center, k);
    let mut rng = StdRng::seed_from_u64(5);
    let draws = 4000;
    let mut d_trunc = 0.0;
    let mut d_full = 0.0;
    for _ in 0..draws {
        let a = TopKList::new(truncated.sample(&mut rng), n).unwrap();
        d_trunc += a.kendall_with_penalty(&center_top, 0.0).unwrap();
        let b = TopKList::from_permutation(&full.sample(&mut rng), k);
        d_full += b.kendall_with_penalty(&center_top, 0.0).unwrap();
    }
    let (m1, m2) = (d_trunc / draws as f64, d_full / draws as f64);
    assert!(
        (m1 - m2).abs() < 0.15 * m1.max(1.0),
        "truncated {m1:.3} vs full {m2:.3}"
    );
}

#[test]
fn toplist_distance_decreases_with_theta() {
    let n = 20;
    let k = 5;
    let center = Permutation::identity(n);
    let center_top = TopKList::from_permutation(&center, k);
    let mut rng = StdRng::seed_from_u64(9);
    let draws = 1500;
    let mut means = Vec::new();
    for theta in [0.1, 0.5, 2.0] {
        let sampler = TopKMallows::new(center.clone(), theta, k).unwrap();
        let total: f64 = (0..draws)
            .map(|_| {
                TopKList::new(sampler.sample(&mut rng), n)
                    .unwrap()
                    .kendall_with_penalty(&center_top, 0.5)
                    .unwrap()
            })
            .sum();
        means.push(total / draws as f64);
    }
    assert!(means[0] > means[1] && means[1] > means[2], "{means:?}");
}

#[test]
fn mann_whitney_separates_mallows_sample_counts() {
    // NDCG of Algorithm 1 with m = 15 stochastically dominates m = 1;
    // the rank-sum test must detect this across repetitions.
    let scores: Vec<f64> = (0..20).map(|i| 1.0 - i as f64 / 20.0).collect();
    let center = Permutation::sorted_by_scores_desc(&scores);
    let single = MallowsFairRanker::new(0.5, 1, Criterion::FirstSample).unwrap();
    let best = MallowsFairRanker::new(0.5, 15, Criterion::MaxNdcg(scores.clone())).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let reps = 60;
    let nd_single: Vec<f64> = (0..reps)
        .map(|_| {
            let out = single.rank(&center, &mut rng).unwrap();
            quality::ndcg(&out.ranking, &scores).unwrap()
        })
        .collect();
    let nd_best: Vec<f64> = (0..reps)
        .map(|_| {
            let out = best.rank(&center, &mut rng).unwrap();
            quality::ndcg(&out.ranking, &scores).unwrap()
        })
        .collect();
    let r = mann_whitney_u(&nd_single, &nd_best).unwrap();
    assert!(
        r.significant_at(0.01),
        "p = {} should detect m=1 vs m=15",
        r.p_value
    );
    // sanity: identical samples are not flagged
    let same = mann_whitney_u(&nd_single, &nd_single).unwrap();
    assert!(!same.significant_at(0.05));
}

#[test]
fn cayley_noise_reduces_infeasible_index_of_segregated_ranking() {
    use fairness_ranking::fairness::infeasible;
    let n = 12;
    let groups = GroupAssignment::binary_split(n, n / 2);
    let bounds = FairnessBounds::from_assignment(&groups);
    let center = Permutation::identity(n); // fully segregated
    let base = infeasible::two_sided_infeasible_index(&center, &groups, &bounds).unwrap() as f64;
    let model = CayleyMallows::new(center, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let draws = 400;
    let mean: f64 = (0..draws)
        .map(|_| {
            let s = model.sample(&mut rng);
            infeasible::two_sided_infeasible_index(&s, &groups, &bounds).unwrap() as f64
        })
        .sum::<f64>()
        / draws as f64;
    assert!(
        mean < base,
        "Cayley noise must reduce mean II: {mean:.2} vs {base:.2}"
    );
}

#[test]
fn soft_expected_index_interpolates_between_hard_and_uninformative() {
    let n = 10;
    let groups = GroupAssignment::binary_split(n, n / 2);
    let bounds = FairnessBounds::from_assignment(&groups);
    let pi = Permutation::identity(n);
    use fairness_ranking::fairness::infeasible;
    let hard = infeasible::two_sided_infeasible_index(&pi, &groups, &bounds).unwrap() as f64;
    let soft0 = SoftGroupAssignment::from_noisy_labels(&groups, 0.0).unwrap();
    assert!(
        (soft0.expected_infeasible_index(&pi, &bounds).unwrap() - hard).abs() < 1e-9,
        "ε = 0 must equal the hard index"
    );
    // at ε = 0.5 the labels are pure noise: the ranking identity is
    // irrelevant, so any two rankings get (almost) the same expectation.
    let soft_max = SoftGroupAssignment::from_noisy_labels(&groups, 0.5).unwrap();
    let a = soft_max.expected_infeasible_index(&pi, &bounds).unwrap();
    let other = Permutation::from_order((0..n).rev().collect::<Vec<_>>()).unwrap();
    let b = soft_max.expected_infeasible_index(&other, &bounds).unwrap();
    assert!(
        (a - b).abs() < 1e-9,
        "uninformative labels must erase ranking identity"
    );
}

#[test]
fn pipeline_end_to_end_with_every_stage_combination() {
    let n = 10;
    let groups = GroupAssignment::binary_split(n, n / 2);
    let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.1);
    let mut rng = StdRng::seed_from_u64(17);
    let votes: Vec<Permutation> = {
        let model = MallowsModel::new(Permutation::identity(n), 1.0).unwrap();
        model.sample_many(7, &mut rng)
    };
    for agg in [
        Aggregator::Borda,
        Aggregator::Copeland,
        Aggregator::Footrule,
        Aggregator::Kemeny,
        Aggregator::MarkovMc4,
    ] {
        for post in [
            PostProcessor::None,
            PostProcessor::Mallows {
                theta: 1.0,
                samples: 5,
            },
            PostProcessor::GrBinaryIpf,
            PostProcessor::ApproxIpf,
        ] {
            let out = FairAggregationPipeline::new(agg, post.clone())
                .run(&votes, &groups, &bounds, &mut rng)
                .unwrap_or_else(|e| panic!("{agg:?}/{post:?}: {e}"));
            assert_eq!(out.fair_ranking.len(), n);
            assert!(
                out.fair_total_kt >= out.consensus_total_kt || !matches!(post, PostProcessor::None),
                "consensus minimizes distance among these stages"
            );
            if matches!(post, PostProcessor::GrBinaryIpf) {
                assert_eq!(out.fair_infeasible, 0, "{agg:?}: GrBinaryIPF must be exact");
            }
        }
    }
}
