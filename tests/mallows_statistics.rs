//! Statistical integration tests of the Mallows machinery through the
//! umbrella crate's public API.

use fairness_ranking::mallows::{dispersion, mle, MallowsModel};
use fairness_ranking::ranking::{distance, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sampling_estimation_round_trip() {
    // sample from a known model, re-estimate centre and dispersion
    let center = Permutation::from_order(vec![5, 2, 7, 0, 4, 1, 6, 3]).unwrap();
    let true_theta = 1.2;
    let model = MallowsModel::new(center.clone(), true_theta).unwrap();
    let mut rng = StdRng::seed_from_u64(0x57A7);
    let samples = model.sample_many(4000, &mut rng);

    let est_center = mle::estimate_center_borda(&samples).unwrap();
    assert_eq!(
        est_center, center,
        "Borda must recover the centre at θ = 1.2"
    );

    let est_theta = mle::estimate_theta(&est_center, &samples).unwrap();
    assert!(
        (est_theta - true_theta).abs() < 0.12,
        "estimated θ = {est_theta}"
    );
}

#[test]
fn dispersion_tuning_controls_observed_displacement() {
    let n = 30;
    let target_fraction = 0.08;
    let theta = dispersion::theta_for_normalized_distance(n, target_fraction);
    let model = MallowsModel::new(Permutation::identity(n), theta).unwrap();
    let mut rng = StdRng::seed_from_u64(0xD15);
    let draws = 3000;
    let max_d = (n * (n - 1) / 2) as f64;
    let mean_fraction: f64 = (0..draws)
        .map(|_| {
            distance::kendall_tau(&model.sample(&mut rng), model.center()).unwrap() as f64 / max_d
        })
        .sum::<f64>()
        / draws as f64;
    assert!(
        (mean_fraction - target_fraction).abs() < 0.01,
        "observed displacement fraction {mean_fraction:.4} vs target {target_fraction}"
    );
}

#[test]
fn pmf_is_exchangeable_in_the_center() {
    // relabelling items must not change the distribution's shape:
    // pmf_M(π₀,θ)(π) depends only on d(π, π₀)
    let theta = 0.9;
    let a = MallowsModel::new(Permutation::identity(5), theta).unwrap();
    let b =
        MallowsModel::new(Permutation::from_order(vec![4, 1, 3, 0, 2]).unwrap(), theta).unwrap();
    for pi in Permutation::enumerate_all(5) {
        let da = distance::kendall_tau(&pi, a.center()).unwrap();
        // find a permutation at the same distance from b's centre
        for rho in Permutation::enumerate_all(5) {
            if distance::kendall_tau(&rho, b.center()).unwrap() == da {
                let pa = a.pmf(&pi).unwrap();
                let pb = b.pmf(&rho).unwrap();
                assert!((pa - pb).abs() < 1e-12);
                break;
            }
        }
    }
}

#[test]
fn distance_distribution_matches_theory_at_theta_zero() {
    // at θ = 0 the expected KT distance is n(n−1)/4 and the distribution
    // is the uniform inversion-number law
    let n = 8;
    let model = MallowsModel::new(Permutation::identity(n), 0.0).unwrap();
    let mut rng = StdRng::seed_from_u64(0x0);
    let draws = 5000;
    let mean: f64 = (0..draws)
        .map(|_| distance::kendall_tau(&model.sample(&mut rng), model.center()).unwrap() as f64)
        .sum::<f64>()
        / draws as f64;
    let expect = n as f64 * (n as f64 - 1.0) / 4.0;
    assert!((mean - expect).abs() < 0.35, "mean {mean} vs {expect}");
}
