//! Cross-solver agreement on randomized instances: every polynomial
//! algorithm must match its exhaustive oracle, and the independent exact
//! solvers must agree with each other.

use fairness_ranking::baselines::{self, brute, IpfConfig};
use fairness_ranking::fairness::{FairnessBounds, GroupAssignment};
use fairness_ranking::ranking::quality::Discount;
use fairness_ranking::ranking::{distance, quality, Permutation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_groups(n: usize, g: usize, rng: &mut StdRng) -> GroupAssignment {
    // ensure every group is non-empty so proportional bounds are sane
    loop {
        let v: Vec<usize> = (0..n).map(|_| rng.random_range(0..g)).collect();
        let ga = GroupAssignment::new(v, g).unwrap();
        if ga.group_sizes().iter().all(|&s| s > 0) {
            return ga;
        }
    }
}

#[test]
fn ipf_always_matches_footrule_oracle() {
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..25 {
        let n = 6 + trial % 2;
        let g = 2 + trial % 2;
        let sigma = Permutation::random(n, &mut rng);
        let groups = random_groups(n, g, &mut rng);
        let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.05);
        let out = baselines::approx_multi_valued_ipf(
            &sigma,
            &groups,
            &bounds,
            &IpfConfig::default(),
            &mut rng,
        )
        .unwrap();
        match brute::min_footrule_fair(&sigma, &groups, &bounds) {
            Some((_, best)) => {
                assert!(
                    out.feasible,
                    "trial {trial}: oracle feasible but IPF flagged infeasible"
                );
                assert_eq!(out.footrule, best, "trial {trial}: footrule mismatch");
            }
            None => assert!(
                !out.feasible,
                "trial {trial}: oracle infeasible but IPF claims fair"
            ),
        }
    }
}

#[test]
fn gr_binary_always_matches_kendall_oracle() {
    let mut rng = StdRng::seed_from_u64(2);
    for trial in 0..25 {
        let n = 7;
        let sigma = Permutation::random(n, &mut rng);
        let groups = random_groups(n, 2, &mut rng);
        let bounds = FairnessBounds::from_assignment(&groups);
        let oracle = brute::min_kendall_fair(&sigma, &groups, &bounds);
        let out = baselines::gr_binary_ipf(&sigma, &groups, &bounds);
        match (oracle, out) {
            (Some((_, best)), Ok(pi)) => {
                let got = distance::kendall_tau(&pi, &sigma).unwrap();
                assert_eq!(got, best, "trial {trial}");
            }
            (None, Err(_)) => {}
            (oracle, out) => panic!("trial {trial}: oracle {oracle:?} vs algorithm {out:?}"),
        }
    }
}

#[test]
fn dp_ilp_and_oracle_agree_on_dcg() {
    let mut rng = StdRng::seed_from_u64(3);
    for trial in 0..10 {
        let n = 6;
        let scores: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let groups = random_groups(n, 2, &mut rng);
        let bounds = FairnessBounds::from_assignment_with_tolerance(&groups, 0.1);
        let tables = bounds.tables(n);
        let dcg = |pi: &Permutation| quality::dcg_at(pi, &scores, n, Discount::Log2).unwrap();

        let oracle = brute::max_dcg_fair(&scores, &groups, &tables, Discount::Log2);
        let dp = baselines::optimal_fair_ranking_dp(&scores, &groups, &tables, Discount::Log2);
        let ilp = baselines::optimal_fair_ranking_ilp(&scores, &groups, &tables, Discount::Log2);
        match oracle {
            Some((_, best)) => {
                let dp = dp.expect("oracle feasible");
                let ilp = ilp.expect("oracle feasible");
                assert!(
                    (dcg(&dp) - best).abs() < 1e-9,
                    "trial {trial}: DP vs oracle"
                );
                assert!(
                    (dcg(&ilp) - best).abs() < 1e-6,
                    "trial {trial}: ILP vs oracle"
                );
                assert!(brute::is_fair_tables(&dp, &groups, &tables));
                assert!(brute::is_fair_tables(&ilp, &groups, &tables));
            }
            None => {
                assert!(dp.is_err(), "trial {trial}: DP should be infeasible");
                assert!(ilp.is_err(), "trial {trial}: ILP should be infeasible");
            }
        }
    }
}

#[test]
fn hungarian_agrees_with_ilp_on_assignment_instances() {
    // the assignment solver and the generic ILP must find the same
    // optimum on pure assignment problems
    use fairness_ranking::assignment::{solve, CostMatrix};
    use fairness_ranking::lp::{solve_ilp, Problem, Relation};
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..5 {
        let n = 4;
        let m = CostMatrix::from_fn(n, |_, _| rng.random_range(0.0..9.0)).unwrap();
        let hung = solve(&m).unwrap();

        let var = |i: usize, j: usize| i * n + j;
        let mut obj = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                obj[var(i, j)] = m.at(i, j);
            }
        }
        let mut p = Problem::minimize(obj);
        for i in 0..n {
            p.add_constraint(
                (0..n).map(|j| (var(i, j), 1.0)).collect(),
                Relation::Eq,
                1.0,
            )
            .unwrap();
            p.add_constraint(
                (0..n).map(|j| (var(j, i), 1.0)).collect(),
                Relation::Eq,
                1.0,
            )
            .unwrap();
        }
        for v in 0..n * n {
            p.set_integer(v, true);
            p.set_upper_bound(v, 1.0).unwrap();
        }
        let ilp = solve_ilp(&p).unwrap();
        assert!((hung.total_cost - ilp.objective).abs() < 1e-6);
    }
}
